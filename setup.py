"""Build script: metadata lives in pyproject.toml; this shim exists so
`pip install -e . --no-use-pep517` works on offline machines that lack
the `wheel` package, and to build the *optional* compiled hot-path
backend (``repro.sim._ckernel``, see ``repro.sim.backend``).

The extension is best-effort by default: any compiler/toolchain failure
degrades the install to the pure-Python backend with a warning instead
of failing it. Set ``TLT_REQUIRE_COMPILED=1`` to turn a failed
extension build into a hard error (used by the CI compiled-backend
job), or ``TLT_SKIP_COMPILED=1`` to skip the extension entirely.

Build in place with::

    python setup.py build_ext --inplace
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """build_ext that degrades to the pure backend on toolchain failure."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            self._handle(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._handle(exc)

    def _handle(self, exc):
        if os.environ.get("TLT_REQUIRE_COMPILED") == "1":
            raise
        sys.stderr.write(
            "warning: building repro.sim._ckernel failed (%s); "
            "falling back to the pure-Python backend\n" % (exc,)
        )


ext_modules = []
if os.environ.get("TLT_SKIP_COMPILED") != "1":
    ext_modules.append(
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernelmodule.c"],
            extra_compile_args=["-O2"],
            optional=os.environ.get("TLT_REQUIRE_COMPILED") != "1",
        )
    )

setup(ext_modules=ext_modules, cmdclass={"build_ext": OptionalBuildExt})
