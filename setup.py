"""Thin shim so `pip install -e . --no-use-pep517` works on offline
machines that lack the `wheel` package; all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
