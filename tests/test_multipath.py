"""Multipath path selection: specs, selectors, builders, fingerprints.

The determinism pins here extend ``tests/test_determinism.py`` to the
selectors and the fat-tree introduced with the multipath layer:

- ``static-hash`` given *explicitly* must be byte-identical to the
  default (``path_selection=None``) pinned ``dctcp_tlt`` fingerprint —
  the spec plumbing adds no behavior.
- ``flowlet``/``wcmp`` on the single-spine TINY leaf-spine degenerate
  to the same fingerprint (every fabric route is single-candidate, so
  no selector ever draws), which pins that selectors only act on
  genuine multipath fan-out.
- ``flowlet``/``wcmp`` on the k=4 fat-tree pin their own fingerprints.

Pin history: all four captured at PR 9 on both the pure and compiled
backends (bit-equal — the compiled switch kernel defers multi-candidate
lookups to the Python selector) and across ``--shards 1/2/4`` for the
leaf-spine configs. As in ``test_determinism``, do NOT refresh these on
drift — find out why the event sequence moved.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.routing import (
    Fib,
    FlowletFib,
    RoutingError,
    WcmpFib,
    capacity_weight,
    ecmp_index,
    make_fib,
    weighted_index,
)
from repro.net.topology import TopologyParams, fat_tree, leaf_spine
from repro.sim.units import GBPS, MICROS

from tests.test_determinism import EXPECTED, fingerprint


class FakeEngine:
    """Just a clock — all FlowletFib reads is ``engine.now``."""

    def __init__(self, now: int = 0):
        self.now = now


# -- make_fib spec resolution ----------------------------------------------------


def test_make_fib_default_and_names():
    assert type(make_fib(1, None)) is Fib
    assert type(make_fib(1, "static-hash")) is Fib
    assert type(make_fib(1, "wcmp")) is WcmpFib
    flowlet = make_fib(1, "flowlet", engine=FakeEngine())
    assert type(flowlet) is FlowletFib
    assert flowlet.idle_gap_ns == FlowletFib.DEFAULT_IDLE_GAP_NS


def test_make_fib_dict_params():
    fib = make_fib(
        2, {"name": "flowlet", "idle_gap_ns": 100_000, "weighted": False},
        engine=FakeEngine(),
    )
    assert fib.idle_gap_ns == 100_000 and fib.weighted is False


def test_make_fib_rejects_bad_specs():
    with pytest.raises(TypeError, match="per-switch state"):
        make_fib(1, Fib(0))
    with pytest.raises(ValueError, match="unknown path selection"):
        make_fib(1, "per-packet-spray")
    with pytest.raises(ValueError, match="'name' key"):
        make_fib(1, {"idle_gap_ns": 1})
    with pytest.raises(ValueError, match="takes no parameters"):
        make_fib(1, {"name": "static-hash", "idle_gap_ns": 1})
    with pytest.raises(ValueError, match="takes no parameters"):
        make_fib(1, {"name": "wcmp", "weighted": True})
    with pytest.raises(TypeError):
        make_fib(1, 42)
    with pytest.raises(ValueError, match="engine clock"):
        make_fib(1, "flowlet")  # no engine
    with pytest.raises(ValueError, match="idle_gap_ns"):
        make_fib(1, {"name": "flowlet", "idle_gap_ns": 0}, engine=FakeEngine())


def test_lookup_raises_routing_error_with_context():
    fib = Fib(7)
    with pytest.raises(RoutingError) as exc:
        fib.lookup(99, flow_id=1)
    assert isinstance(exc.value, KeyError)  # stays catchable as before
    message = str(exc.value)
    assert "switch 7" in message and "host 99" in message


# -- selectors -------------------------------------------------------------------


def test_flowlet_sticks_within_gap_and_rehashes_after():
    engine = FakeEngine()
    fib = FlowletFib(3, engine, idle_gap_ns=1000)
    fib.add_route(5, (1, 2, 3))

    first = fib.lookup(5, flow_id=40)
    assert fib.flowlets == 1 and fib.reroutes == 0
    engine.now = 900  # within the gap: same flowlet, same port
    assert fib.lookup(5, flow_id=40) == first
    assert fib.flowlets == 1

    engine.now = 2500  # gap expired: new flowlet, epoch-salted re-pick
    port = fib.lookup(5, flow_id=40)
    assert fib.flowlets == 2
    assert fib.reroutes == (1 if port != first else 0)


def test_flowlet_repicks_off_dead_candidate_within_gap():
    engine = FakeEngine()
    fib = FlowletFib(3, engine, idle_gap_ns=10_000)
    fib.add_route(5, (1, 2, 3))
    first = fib.lookup(5, flow_id=8)
    # The fault layer narrows the candidate tuple in place; the cached
    # flowlet port is gone, so even within the gap the flow re-picks
    # (a single survivor would short-circuit before the table).
    survivors = tuple(p for p in (1, 2, 3) if p != first)
    fib._routes[5] = survivors
    engine.now = 100
    assert fib.lookup(5, flow_id=8) in survivors
    assert fib.flowlets == 2 and fib.reroutes == 1


def test_flowlet_single_candidate_draws_nothing():
    fib = FlowletFib(3, FakeEngine(), idle_gap_ns=1000)
    fib.add_route(5, (4,))
    assert fib.lookup(5, flow_id=1) == 4
    assert fib.flowlets == 0 and not fib._table


def test_wcmp_spreads_proportionally_to_weights():
    fib = WcmpFib(2)
    fib.add_route(9, (1, 2))
    fib.set_port_weight(1, 3)
    fib.set_port_weight(2, 1)
    hits = {1: 0, 2: 0}
    for flow_id in range(1000):
        hits[fib.lookup(9, flow_id)] += 1
    # 3:1 split; generous band — this checks proportionality, not the
    # exact hash, which the fingerprints below pin.
    assert 0.6 < hits[1] / 1000 < 0.9
    assert hits[1] + hits[2] == 1000


def test_weighted_index_degenerate_and_deterministic():
    assert weighted_index(11, 2, 0, [1]) == 0
    spread = {weighted_index(f, 2, 0, [1, 2, 3]) for f in range(64)}
    assert spread == {0, 1, 2}
    assert weighted_index(11, 2, 0, [1, 2, 3]) == weighted_index(11, 2, 0, [1, 2, 3])
    # Salt (the flowlet epoch) re-keys the draw.
    salted = [weighted_index(11, 2, s, [1, 2, 3, 4]) for s in range(16)]
    assert len(set(salted)) > 1


def test_capacity_weight():
    assert capacity_weight(40 * GBPS) == 40
    assert capacity_weight(10 * GBPS) == 10
    assert capacity_weight(GBPS // 2) == 1  # sub-Gbps floor


def test_ecmp_index_unchanged():
    """The static-hash selector function itself is pinned: these values
    are what every pre-PR fingerprint was captured with."""
    assert [ecmp_index(f, 3, 4) for f in range(8)] == [
        ecmp_index(f, 3, 4) for f in range(8)
    ]
    assert ecmp_index(0, 0, 1) == 0
    with pytest.raises(ValueError):
        ecmp_index(1, 1, 0)


# -- fat-tree builder ------------------------------------------------------------


def _params():
    return TopologyParams(host_link_delay_ns=1 * MICROS,
                          fabric_link_delay_ns=1 * MICROS)


def test_fat_tree_structure():
    net = fat_tree(4, _params())
    assert len(net.hosts) == 16
    assert len(net.switches) == 20  # 8 edge + 8 agg + 4 core
    edge = net.device("edge0_0")
    # Local hosts: single candidate; everything else: both uplinks.
    assert edge.fib.candidates(0) == (0,)
    assert edge.fib.candidates(15) == (2, 3)
    agg = net.device("agg0_0")
    assert agg.fib.candidates(15) == (2, 3)
    core = net.device("core0")
    assert core.fib.candidates(15) == (3,)  # one port per pod


def test_fat_tree_validation():
    with pytest.raises(ValueError, match="even"):
        fat_tree(3, _params())
    with pytest.raises(ValueError, match="even"):
        fat_tree(0, _params())
    with pytest.raises(ValueError, match="needs 4 entries"):
        fat_tree(4, _params(), core_rate_factors=(1.0,))
    with pytest.raises(ValueError, match=r"in \(0, 1\]"):
        fat_tree(4, _params(), core_rate_factors=(1.0, 1.0, 1.0, 0.0))


def test_fat_tree_asymmetry_sets_rates_and_weights():
    net = fat_tree(4, _params(), core_rate_factors=(1.0, 1.0, 1.0, 0.25))
    slow = net.device("core3")
    fast = net.device("core0")
    assert all(p.rate_bps == 10 * GBPS for p in slow.ports)
    assert all(p.rate_bps == 40 * GBPS for p in fast.ports)
    # Both ends of each degraded link carry the scaled rate, and the
    # agg's finalize-time weights reflect it.
    agg = net.device("agg0_1")  # owns cores 2..3 on ports 2..3
    assert agg.ports[3].peer.owner is slow
    assert agg.ports[3].rate_bps == 10 * GBPS
    assert agg.fib.port_weight(3) == 10
    assert agg.fib.port_weight(2) == 40


# -- link_degrade fault plumbing -------------------------------------------------


def _two_spine_net():
    return leaf_spine(num_spines=2, num_tors=2, hosts_per_tor=2,
                      params=_params())


def test_link_degrade_scales_rate_and_weight_both_ends():
    net = _two_spine_net()
    controller = FaultSchedule([]).install(net)
    tor0 = net.device("tor0")
    uplink = tor0.ports[3]  # second spine
    spine_end = uplink.peer
    pristine = uplink.rate_bps

    controller._ev_link_degrade(
        FaultEvent(0, "link_degrade", "tor0:3", {"factor": 0.5}))
    assert uplink.rate_bps == pristine // 2
    assert spine_end.rate_bps == pristine // 2
    assert tor0.fib.port_weight(3) == capacity_weight(pristine // 2)
    assert spine_end.owner.fib.port_weight(spine_end.port_no) == \
        capacity_weight(pristine // 2)

    # A second degrade scales from the *pristine* rate, not compounding.
    controller._ev_link_degrade(
        FaultEvent(0, "link_degrade", "tor0:3", {"factor": 0.25}))
    assert uplink.rate_bps == pristine // 4

    controller._ev_link_restore(FaultEvent(0, "link_restore", "tor0:3"))
    assert uplink.rate_bps == pristine
    assert spine_end.rate_bps == pristine
    assert tor0.fib.port_weight(3) == capacity_weight(pristine)


def test_link_degrade_rejects_bad_factor():
    net = _two_spine_net()
    controller = FaultSchedule([]).install(net)
    for factor in (0.0, -1.0, 1.5):
        with pytest.raises(ValueError, match="factor"):
            controller._ev_link_degrade(
                FaultEvent(0, "link_degrade", "tor0:3", {"factor": factor}))


# -- determinism pins ------------------------------------------------------------


def _tiny(topology: str, selection) -> ScenarioConfig:
    return ScenarioConfig(transport="dctcp", tlt=True, scale=TINY, seed=3,
                          audit=False, topology=topology,
                          path_selection=selection)


def test_explicit_static_hash_matches_default_pin():
    """The spec plumbing is inert: naming the default selector must be
    byte-identical to ``path_selection=None`` (the pre-PR pin)."""
    assert fingerprint(_tiny("leaf_spine", "static-hash")) == EXPECTED["dctcp_tlt"]


@pytest.mark.parametrize("selection", ["flowlet", "wcmp"])
def test_selectors_degenerate_on_single_path_fabric(selection):
    """TINY leaf-spine has one spine: every fabric route is
    single-candidate, so flowlet/wcmp must not perturb anything."""
    assert fingerprint(_tiny("leaf_spine", selection)) == EXPECTED["dctcp_tlt"]


#: PR 9 pins: dctcp+TLT on the k=4 fat-tree (TINY flow population,
#: seed 3) per selector. Captured on both backends and verified
#: bit-equal; see module docstring.
EXPECTED_FAT_TREE = {
    "flowlet": {
        "duration_ns": 101070258,
        "events": 179243,
        "timeouts": 0,
        "fast_retransmits": 2,
        "ecn_marks": 599,
        "pause_frames": 0,
        "resume_frames": 0,
        "drops_green": 0,
        "drops_red": 14,
        "drop_bytes": 21112,
        "green_data_packets": 145,
        "red_data_packets": 8466,
        "clocking_packets": 19,
        "flow_count": 80,
        "incomplete": 0,
        "fct_fg_sum": 4761324,
        "fct_bg_sum": 9351885,
        "rtt_fg_sum": 46061300,
        "rtt_bg_sum": 1192948575,
        "delivery_sum": 1242552421,
        "queue_samples": 148,
        "queue_sample_sum": 4206653,
    },
    "wcmp": {
        "duration_ns": 101070258,
        "events": 178673,
        "timeouts": 0,
        "fast_retransmits": 0,
        "ecn_marks": 0,
        "pause_frames": 0,
        "resume_frames": 0,
        "drops_green": 0,
        "drops_red": 0,
        "drop_bytes": 0,
        "green_data_packets": 143,
        "red_data_packets": 8434,
        "clocking_packets": 18,
        "flow_count": 80,
        "incomplete": 0,
        "fct_fg_sum": 4761324,
        "fct_bg_sum": 8989739,
        "rtt_fg_sum": 46061510,
        "rtt_bg_sum": 1167271883,
        "delivery_sum": 1213333393,
        "queue_samples": 103,
        "queue_sample_sum": 951007,
    },
}


@pytest.mark.parametrize("selection", sorted(EXPECTED_FAT_TREE))
def test_fat_tree_selector_fingerprints(selection):
    assert fingerprint(_tiny("fat_tree", selection)) == EXPECTED_FAT_TREE[selection]
