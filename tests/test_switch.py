"""Tests for the switch: admission, color-aware dropping, ECN, INT."""

from repro.net.packet import Color, Packet, PacketKind
from repro.net.topology import star, TopologyParams
from repro.sim.units import GBPS
from repro.switchsim.ecn import StepEcn
from repro.switchsim.switch import SwitchConfig


def make_star(num_hosts=3, **cfg_kwargs):
    config = SwitchConfig(**cfg_kwargs)
    params = TopologyParams(switch_config=config, host_link_delay_ns=1000)
    return star(num_hosts=num_hosts, params=params)


class Collector:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


def _data(flow, src, dst, payload=1452, color=Color.GREEN, seq=0):
    pkt = Packet(flow, src, dst, PacketKind.DATA, seq=seq, payload=payload)
    pkt.color = color
    return pkt


def test_forwarding_between_hosts():
    net = make_star()
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    net.host(0).send(_data(9, 0, 2))
    net.engine.run()
    assert len(sink.packets) == 1


def test_red_packets_dropped_beyond_color_threshold():
    # Two senders into one egress build a queue; color threshold of
    # 3 kB allows only two 1.5 kB red packets to occupy it.
    net = make_star(buffer_bytes=100_000, color_threshold_bytes=3_000)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    net.host(2).register_endpoint(8, sink)
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, color=Color.RED, seq=i))
        net.host(1).send(_data(8, 1, 2, color=Color.RED, seq=i))
    net.engine.run()
    assert net.stats.drops_red > 0
    assert len(sink.packets) + net.stats.drops_red == 20


def test_green_packets_queue_beyond_color_threshold():
    net = make_star(buffer_bytes=100_000, color_threshold_bytes=3_000)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, color=Color.GREEN, seq=i))
    net.engine.run()
    assert net.stats.drops_green == 0
    assert len(sink.packets) == 10


def test_red_occupancy_never_exceeds_threshold():
    threshold = 6_000
    net = make_star(buffer_bytes=100_000, color_threshold_bytes=threshold)
    for i in range(50):
        net.host(0).send(_data(9, 0, 2, color=Color.RED, seq=i))
    net.engine.run()
    assert net.switches[0].max_red_occupancy() <= threshold


def test_dynamic_threshold_drops_when_pool_pressured():
    # Tiny pool: a burst from two hosts to one egress must drop.
    net = make_star(buffer_bytes=20_000)
    for i in range(20):
        net.host(0).send(_data(9, 0, 2, seq=i))
        net.host(1).send(_data(8, 1, 2, seq=i))
    net.engine.run()
    assert net.stats.drops_green > 0


def test_buffer_accounting_returns_to_zero():
    net = make_star(buffer_bytes=100_000)
    for i in range(20):
        net.host(0).send(_data(9, 0, 2, seq=i))
    net.engine.run()
    assert net.switches[0].buffer.used == 0


def test_ecn_marking_applied_to_capable_packets():
    net = make_star(buffer_bytes=200_000, ecn=StepEcn(2_000))
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    for i in range(10):
        for src in (0, 1):
            pkt = _data(9, src, 2, seq=i)
            pkt.ecn_capable = True
            net.host(src).send(pkt)
    net.engine.run()
    assert any(p.ce for p in sink.packets)
    assert net.stats.ecn_marks > 0


def test_ecn_not_applied_to_non_capable_packets():
    net = make_star(buffer_bytes=200_000, ecn=StepEcn(2_000))
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, seq=i))
    net.engine.run()
    assert not any(p.ce for p in sink.packets)


def test_int_records_appended_when_enabled():
    net = make_star(buffer_bytes=200_000, int_enabled=True)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    pkt = _data(9, 0, 2)
    pkt.int_records = []  # request INT
    net.host(0).send(pkt)
    net.engine.run()
    records = sink.packets[0].int_records
    assert len(records) == 1
    assert records[0].rate_bps == 40 * GBPS


def test_int_skipped_when_not_requested():
    net = make_star(buffer_bytes=200_000, int_enabled=True)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    net.host(0).send(_data(9, 0, 2))
    net.engine.run()
    assert sink.packets[0].int_records is None


def test_max_queue_occupancy_tracked():
    net = make_star(buffer_bytes=200_000)
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, seq=i))
    net.engine.run()
    assert net.switches[0].max_queue_occupancy() > 0
