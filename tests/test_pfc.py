"""Tests for PFC: losslessness, pause frames, HoL blocking."""

from repro.net.topology import TopologyParams, dumbbell
from repro.switchsim.pfc import PfcConfig, max_pause_ns
from repro.switchsim.switch import SwitchConfig
from repro.sim.units import GBPS
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import small_star


def pfc_star(num_hosts=4, **kw):
    kw.setdefault("pfc", PfcConfig(enabled=True))
    return small_star(num_hosts=num_hosts, **kw)


def test_max_pause_duration():
    # 65535 quanta x 512 bit-times at 40 Gb/s ~ 838.8 us.
    assert abs(max_pause_ns(40 * GBPS) - 838_848) < 1000


def test_pfc_prevents_drops_under_incast():
    net = pfc_star(num_hosts=9, buffer_bytes=300_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=200_000)
        create_flow("tcp", net, spec, config)
    net.engine.run(until=5_000_000_000)
    assert net.stats.drops_green + net.stats.drops_red == 0
    assert net.stats.pause_frames > 0
    assert net.stats.incomplete_flows() == 0


def test_no_pfc_same_incast_drops():
    net = small_star(num_hosts=9, buffer_bytes=300_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=200_000)
        create_flow("tcp", net, spec, config)
    net.engine.run(until=5_000_000_000)
    assert net.stats.drops_green + net.stats.drops_red > 0


def test_pause_time_accounted_on_host_ports():
    net = pfc_star(num_hosts=9, buffer_bytes=300_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=200_000)
        create_flow("tcp", net, spec, config)
    net.engine.run(until=5_000_000_000)
    assert net.total_paused_ns() > 0


def test_resume_sent_when_ingress_drains():
    net = pfc_star(num_hosts=9, buffer_bytes=300_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=100_000)
        create_flow("tcp", net, spec, config)
    net.engine.run(until=5_000_000_000)
    assert net.stats.resume_frames > 0
    # After the run no port may remain paused.
    for device in list(net.switches) + list(net.hosts):
        for port in device.ports:
            assert not port.paused


def test_hol_blocking_victim_flow():
    """The PFC pathology the paper measures: an incast toward one host
    pauses a sender's ingress, stalling its unrelated flow to an idle
    destination (congestion spreading through HoL blocking)."""
    params = TopologyParams(
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
        switch_config=SwitchConfig(buffer_bytes=150_000, pfc=PfcConfig(enabled=True)),
    )
    net = dumbbell(left_hosts=5, right_hosts=2, params=params)
    config = TransportConfig(base_rtt_ns=8_000)
    # Incast: left hosts 0-3 -> right host 5 (via the trunk).
    for src in range(4):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=5, size=400_000)
        create_flow("tcp", net, spec, config)
    # Victim: left host 4 -> right host 6 (shares the trunk ingress).
    victim = FlowSpec(flow_id=net.new_flow_id(), src=4, dst=6, size=50_000, group="bg")
    create_flow("tcp", net, victim, config)
    net.engine.run(until=5_000_000_000)
    record = net.stats.flows[victim.flow_id]
    assert record.completed

    # Baseline: the same victim with an idle network.
    net2 = dumbbell(left_hosts=5, right_hosts=2, params=params)
    victim2 = FlowSpec(flow_id=net2.new_flow_id(), src=4, dst=6, size=50_000, group="bg")
    create_flow("tcp", net2, victim2, config)
    net2.engine.run(until=5_000_000_000)
    solo = net2.stats.flows[victim2.flow_id]
    assert record.fct_ns > 2 * solo.fct_ns  # HoL blocking slowed it down


def test_tlt_reduces_pause_frames():
    """Color-aware dropping sheds red packets before PFC triggers."""
    from repro.core.config import TltConfig

    def run(tlt):
        kw = dict(buffer_bytes=300_000, pfc=PfcConfig(enabled=True))
        if tlt:
            kw["color_threshold_bytes"] = 60_000
        net = pfc_star(num_hosts=9, **kw)
        config = TransportConfig(base_rtt_ns=4_000)
        for src in range(1, 9):
            spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=200_000)
            create_flow("tcp", net, spec, config, TltConfig() if tlt else None)
        net.engine.run(until=5_000_000_000)
        return net.stats.pause_frames

    assert run(tlt=True) < run(tlt=False)


def test_green_packets_never_dropped_with_pfc_plus_tlt():
    from repro.core.config import TltConfig

    net = pfc_star(num_hosts=9, buffer_bytes=300_000, color_threshold_bytes=60_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=200_000)
        create_flow("tcp", net, spec, config, TltConfig())
    net.engine.run(until=5_000_000_000)
    assert net.stats.drops_green == 0
    assert net.stats.incomplete_flows() == 0
