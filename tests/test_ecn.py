"""Tests for ECN marking schemes."""

import random

import pytest

from repro.switchsim.ecn import RedEcn, StepEcn


def test_step_marks_above_threshold_only():
    ecn = StepEcn(200_000)
    assert not ecn.should_mark(200_000)
    assert ecn.should_mark(200_001)
    assert not ecn.should_mark(0)


def test_step_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        StepEcn(0)


def test_red_never_marks_below_kmin():
    ecn = RedEcn(5_000, 200_000, 0.01, random.Random(1))
    assert not any(ecn.should_mark(4_999) for _ in range(1000))


def test_red_always_marks_above_kmax():
    ecn = RedEcn(5_000, 200_000, 0.01, random.Random(1))
    assert all(ecn.should_mark(200_000) for _ in range(100))


def test_red_boundaries_consume_no_rng_draw():
    # Pinned boundary semantics: no-mark at exactly k_min and the
    # force-mark at exactly k_max are deterministic — neither touches
    # the RNG, so boundary traffic cannot shift the marking stream.
    rng = random.Random(7)
    ecn = RedEcn(5_000, 200_000, 0.01, rng)
    state = rng.getstate()
    assert not ecn.should_mark(5_000)
    assert ecn.should_mark(200_000)
    assert rng.getstate() == state
    # Strictly between the thresholds a draw does happen.
    ecn.should_mark(5_001)
    assert rng.getstate() != state


def test_red_probability_scales_linearly():
    ecn = RedEcn(0, 100_000, 1.0, random.Random(42))
    n = 20_000
    marks = sum(ecn.should_mark(50_000) for _ in range(n))
    assert abs(marks / n - 0.5) < 0.02  # P should be ~0.5 at midpoint


def test_red_param_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        RedEcn(10, 5, 0.01, rng)
    with pytest.raises(ValueError):
        RedEcn(0, 10, 0.0, rng)
    with pytest.raises(ValueError):
        RedEcn(0, 10, 1.5, rng)
