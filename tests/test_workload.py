"""Tests for workload generation."""

import random

import pytest

from repro.net.topology import star
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import DISTRIBUTIONS, EmpiricalCdf, WEB_SEARCH
from repro.workload.incast import IncastTraffic


def test_web_search_mean_close_to_paper():
    # The paper quotes a 1.72 MB average for the web-search workload.
    mean = WEB_SEARCH.mean(samples=50_000)
    assert 1_300_000 < mean < 2_200_000


def test_all_distributions_sample_valid_sizes():
    rng = random.Random(1)
    for cdf in DISTRIBUTIONS.values():
        for _ in range(1000):
            size = cdf.sample(rng)
            assert 1 <= size <= cdf.points[-1][0]


def test_cdf_validation():
    with pytest.raises(ValueError):
        EmpiricalCdf("bad", [])
    with pytest.raises(ValueError):
        EmpiricalCdf("bad", [(100, 0.5), (50, 1.0)])  # non-increasing size
    with pytest.raises(ValueError):
        EmpiricalCdf("bad", [(100, 0.5)])  # doesn't reach 1.0


def test_cdf_sampling_is_deterministic_per_seed():
    a = [WEB_SEARCH.sample(random.Random(7)) for _ in range(10)]
    b = [WEB_SEARCH.sample(random.Random(7)) for _ in range(10)]
    assert a == b


def test_background_schedules_requested_flows():
    net = star(num_hosts=6)
    created = []
    bg = BackgroundTraffic(net, WEB_SEARCH, created.append, load=0.4, num_flows=50)
    specs = bg.schedule()
    assert len(specs) == 50
    assert all(s.src != s.dst for s in specs)
    assert all(s.group == "bg" for s in specs)
    starts = [s.start_ns for s in specs]
    assert starts == sorted(starts)
    net.engine.run(until=specs[-1].start_ns + 1)
    assert len(created) == 50  # lazily created at start times


def test_background_load_scales_arrival_rate():
    net = star(num_hosts=6)
    low = BackgroundTraffic(net, WEB_SEARCH, lambda s: None, load=0.1, num_flows=10)
    high = BackgroundTraffic(net, WEB_SEARCH, lambda s: None, load=0.6, num_flows=10)
    assert high.lambda_per_ns > 5 * low.lambda_per_ns


def test_background_rejects_bad_load():
    net = star(num_hosts=6)
    with pytest.raises(ValueError):
        BackgroundTraffic(net, WEB_SEARCH, lambda s: None, load=0.0)


def test_incast_event_structure():
    net = star(num_hosts=6)
    created = []
    inc = IncastTraffic(
        net, created.append, flow_size=8000, flows_per_sender=3,
        num_events=2, interval_ns=1_000_000, receiver=0, start_ns=0,
    )
    specs = inc.schedule()
    # 5 senders x 3 flows x 2 events.
    assert len(specs) == 30
    assert all(s.dst == 0 for s in specs)
    assert all(s.group == "fg" for s in specs)
    assert all(s.size == 8000 for s in specs)
    first_event = [s for s in specs if s.start_ns == 0]
    assert len(first_event) == 15  # synchronized burst


def test_incast_interval_for_share():
    interval = IncastTraffic.interval_for_share(
        fg_share=0.05, bg_load=0.4, num_hosts=16,
        link_rate_bps=40_000_000_000, flow_size=8000,
        flows_per_sender=8, num_senders=15,
    )
    # fg rate = 32 B/ns * 0.05/0.95; event = 960 kB.
    assert 500_000 < interval < 600_000


def test_incast_share_validation():
    with pytest.raises(ValueError):
        IncastTraffic.interval_for_share(0.0, 0.4, 16, 40e9, 8000, 8, 15)


def test_incast_random_receiver_varies():
    net = star(num_hosts=8)
    inc = IncastTraffic(net, lambda s: None, num_events=10, interval_ns=1000)
    specs = inc.schedule()
    receivers = {s.dst for s in specs}
    assert len(receivers) > 1
