"""Tests for the profiling harness (repro.sim.profiler)."""

import json
import os
import pstats

from repro.sim import engine as engine_mod
from repro.sim.engine import Engine
from repro.sim.profiler import Profiler


def tick(counter):
    counter["n"] += 1


def run_small_sim():
    engine = Engine()
    counter = {"n": 0}
    for i in range(500):
        engine.schedule(i, tick, counter)
    engine.run()
    assert counter["n"] == 500
    return engine


def test_profiler_writes_pstats_and_json(tmp_path):
    with Profiler(tag="unit", out_dir=str(tmp_path)) as prof:
        run_small_sim()

    assert prof.pstats_path == str(tmp_path / "profile_unit.pstats")
    assert prof.json_path == str(tmp_path / "profile_unit.json")
    assert os.path.exists(prof.pstats_path)
    assert os.path.exists(prof.json_path)

    # The pstats dump loads and contains the engine's run loop.
    stats = pstats.Stats(prof.pstats_path)
    assert any(name == "run" for (_f, _l, name) in stats.stats)

    with open(prof.json_path) as fh:
        summary = json.load(fh)
    assert summary["schema"] == 2
    assert summary["tag"] == "unit"
    assert summary["wall_s"] > 0
    assert summary["events_attributed"] == 500
    assert summary["hotspots"], "cProfile hotspots missing"
    callbacks = {row["callback"]: row for row in summary["callbacks"]}
    assert callbacks["tick"]["calls"] == 500
    assert callbacks["tick"]["total_ms"] >= 0


def test_attribution_cleared_after_exit(tmp_path):
    with Profiler(tag="cleanup", out_dir=str(tmp_path)):
        run_small_sim()
    assert engine_mod._ATTRIBUTION is None
    # Runs after the profiler exits are not attributed anywhere.
    before = dict()
    run_small_sim()
    assert engine_mod._ATTRIBUTION is None
    assert before == {}


def test_attribution_cleared_on_exception(tmp_path):
    class Boom(RuntimeError):
        pass

    try:
        with Profiler(tag="boom", out_dir=str(tmp_path)):
            raise Boom()
    except Boom:
        pass
    assert engine_mod._ATTRIBUTION is None
    # No files written for a failed block.
    assert not os.path.exists(tmp_path / "profile_boom.json")


def test_summary_available_without_write(tmp_path):
    prof = Profiler(tag="mem", out_dir=str(tmp_path), top=5)
    with prof:
        run_small_sim()
    summary = prof.summary()
    assert len(summary["hotspots"]) <= 5
    assert summary["events_attributed"] == 500


def test_summary_reports_backend(tmp_path):
    # A saved profile must say which hot-path backend produced it.
    from repro.sim import backend as backend_mod

    prof = Profiler(tag="backend", out_dir=str(tmp_path))
    with prof:
        run_small_sim()
    section = prof.summary()["backend"]
    assert section["name"] == backend_mod.current_backend()
    assert isinstance(section["compiled_available"], bool)
    assert section["note"]  # every known backend has an explanation


def test_link_delivery_attribution(tmp_path):
    # Batched-drain time is broken out of the callback table: a run
    # with real link traffic attributes Port._drain under link_delivery.
    from repro.net.link import Port, connect

    class _Sink:
        def poll(self, port):
            return None

        def receive(self, packet, port):
            pass

        def receive_pause(self, duration_ns, port):
            pass

    class _Frame:
        size = 1500

    prof = Profiler(tag="drain", out_dir=str(tmp_path))
    with prof:
        engine = Engine()
        a = Port(engine, _Sink(), 0, 100_000_000_000, 1_000)
        b = Port(engine, _Sink(), 0, 100_000_000_000, 1_000)
        connect(a, b)
        for i in range(50):
            engine.schedule_anon(i * 10, a._tx_cb, _Frame())
        engine.run()
    section = prof.summary()["link_delivery"]
    assert section["drain_calls"] == 50
    assert section["drain_ms"] >= 0
    assert 0.0 <= section["share_of_attributed"] <= 1.0
    assert any(row["callback"].endswith("_drain") for row in section["callbacks"])
