"""Protocol tests for rate-based TLT (§5.2, Fig 4)."""

from repro.core.config import TltConfig
from repro.net.packet import Color, PacketKind, TltMark
from repro.sim.units import MILLIS
from repro.transport.base import TransportConfig

from tests.util import DropFilter, PacketTap, run_flow, small_star

import pytest

# Taps in this module retain Packet objects across the run.
pytestmark = pytest.mark.usefixtures("no_packet_pool")



class Tap:
    def __init__(self, switch):
        self.packets = []
        PacketTap(switch, self.packets.append)

    def data(self):
        return [p for p in self.packets if p.kind == PacketKind.DATA]


def cfg():
    return TransportConfig(base_rtt_ns=4_000)


def test_last_packet_of_message_marked_important():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(), config=cfg())
    data = tap.data()
    last = [p for p in data if p.seq == 19]
    assert last and last[0].mark == TltMark.IMPORTANT_DATA
    # All other first-transmission packets unimportant.
    assert all(
        p.mark == TltMark.NONE for p in data if p.seq < 19 and not p.is_retx
    )


def test_periodic_marking_every_n():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(
        net, "dcqcn", size=100_000,
        tlt=TltConfig(periodic_n=10), config=cfg(),
    )
    marked = {p.seq for p in tap.data() if p.mark == TltMark.IMPORTANT_DATA}
    # PSNs 9, 19, ..., 99 periodic plus the tail.
    assert {9, 19, 29}.issubset(marked)


def test_periodic_marking_disabled_with_none():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(
        net, "dcqcn", size=100_000,
        tlt=TltConfig(periodic_n=None), config=cfg(),
    )
    marked = {p.seq for p in tap.data() if p.mark == TltMark.IMPORTANT_DATA}
    assert marked == {99}


def test_retransmission_round_marks_first_and_last():
    """Fig 4: when a retransmission round starts, both its first and
    last packets are important."""
    net = small_star()
    tap = Tap(net.switches[0])
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(3)
    drop.drop_seq_once(4)
    run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(periodic_n=None), config=cfg())
    retx = [p for p in tap.data() if p.is_retx]
    assert retx
    # The go-back-N round restarts from 3; its first packet is marked.
    assert any(p.seq == 3 and p.mark == TltMark.IMPORTANT_DATA for p in retx)


def test_lost_first_retransmission_recovers_without_timeout():
    """The Fig 4 pathology: packet 3 lost, its retransmission lost too.
    With TLT the (green) retransmission cannot be congestion-dropped by
    the switch; here we emulate a surviving green mark by checking the
    round edges are green so the scenario cannot recur."""
    net = small_star()
    tap = Tap(net.switches[0])
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(3)
    run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(periodic_n=None), config=cfg())
    retx = [p for p in tap.data() if p.is_retx and p.seq == 3]
    assert retx and retx[0].color == Color.GREEN


def test_rate_tlt_control_packets_green():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(), config=cfg())
    control = [p for p in tap.packets if p.kind != PacketKind.DATA]
    assert control
    assert all(p.color == Color.GREEN for p in control)


def test_unimportant_data_red():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(), config=cfg())
    reds = [p for p in tap.data() if p.color == Color.RED]
    greens = [p for p in tap.data() if p.color == Color.GREEN]
    assert reds and greens
    assert len(greens) < len(reds)


def test_stats_count_marked_packets():
    net = small_star()
    run_flow(net, "dcqcn", size=100_000, tlt=TltConfig(periodic_n=None), config=cfg())
    assert net.stats.green_data_packets >= 1
    assert net.stats.red_data_packets == 99
    assert 0 < net.stats.important_fraction_bytes() < 0.05


def test_vanilla_dcqcn_tail_loss_with_tlt_uses_nack_not_timeout():
    """With the last packet green, a mid-flow red loss is detected by
    the receiver's NACK as soon as the important tail arrives."""
    net = small_star(color_threshold_bytes=5_000, buffer_bytes=1_000_000)
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(18)
    _, _, record = run_flow(net, "dcqcn", size=20_000, tlt=TltConfig(), config=cfg())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 4 * MILLIS
