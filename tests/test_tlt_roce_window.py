"""Window-based TLT on the RoCE transports (IRN, HPCC)."""

from repro.core.config import TltConfig
from repro.net.packet import Color, PacketKind, TltMark
from repro.sim.units import MILLIS
from repro.transport.base import TransportConfig

from tests.util import DropFilter, PacketTap, run_flow, small_star

import pytest

# Taps in this module retain Packet objects across the run.
pytestmark = pytest.mark.usefixtures("no_packet_pool")



class Tap:
    def __init__(self, switch):
        self.packets = []
        PacketTap(switch, self.packets.append)

    def data(self):
        return [p for p in self.packets if p.kind == PacketKind.DATA]


def cfg():
    return TransportConfig(base_rtt_ns=4_000)


def test_irn_marks_window_tail_important():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "irn", size=10_000, tlt=TltConfig(), config=cfg())
    marks = [p.mark for p in tap.data()]
    assert TltMark.IMPORTANT_DATA in marks
    greens = [p for p in tap.data() if p.color == Color.GREEN]
    reds = [p for p in tap.data() if p.color == Color.RED]
    assert greens and reds


def test_irn_echo_comes_back():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "irn", size=10_000, tlt=TltConfig(), config=cfg())
    acks = [p for p in tap.packets if p.kind == PacketKind.ACK]
    assert any(p.mark == TltMark.IMPORTANT_ECHO for p in acks)


def test_irn_tail_loss_no_timeout_with_tlt():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_once(
        lambda p: p.kind == PacketKind.DATA and p.seq == 8 and p.color == Color.RED
    )
    _, _, record = run_flow(net, "irn", size=10_000, tlt=TltConfig(), config=cfg())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 1 * MILLIS


def test_hpcc_tlt_window_blocked_clocking():
    """With a 2-packet HPCC window, clocking keeps the flow alive when
    red packets are dropped."""
    net = small_star(int_enabled=True, color_threshold_bytes=2_500,
                     buffer_bytes=1_000_000)
    _, _, record = run_flow(net, "hpcc", size=30_000, tlt=TltConfig(), config=cfg())
    assert record.completed
    assert record.timeouts == 0


def test_hpcc_tlt_repeated_red_loss_recovers():
    net = small_star(int_enabled=True)
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(5)
    drop.drop_seq_once(5)  # retransmission lost too
    _, _, record = run_flow(net, "hpcc", size=20_000, tlt=TltConfig(), config=cfg())
    assert record.completed
    assert record.timeouts == 0


def test_roce_clocking_is_full_packet():
    """RoCE cannot segment a PSN: clock packets carry a full payload
    (the documented substitution for 1-byte clocking)."""
    net = small_star()
    tap = Tap(net.switches[0])
    config = TransportConfig(base_rtt_ns=4_000)
    run_flow(net, "irn", size=50_000, tlt=TltConfig(), config=config)
    clock = [p for p in tap.data() if p.mark == TltMark.IMPORTANT_CLOCK_DATA]
    assert all(p.payload >= 1000 for p in clock)
