"""Property-based robustness tests (hypothesis).

The central liveness invariant of a reliable transport: *any* finite
pattern of congestion losses must still end with the flow completing
(via SACK recovery, TLT clocking or, in the worst case, the RTO).
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import TltConfig
from repro.net.packet import Color, PacketKind
from repro.sim.engine import Engine
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from repro.net.node import Interceptor
from tests.util import small_star

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class RandomLoss(Interceptor):
    """Drop data packets by index according to a fixed pattern."""

    def __init__(self, switch, drop_indices, red_only=False):
        self.drop_indices = set(drop_indices)
        self.red_only = red_only
        self.count = 0
        self.dropped = 0
        switch.add_interceptor(self)

    def on_packet(self, packet, in_port, forward):
        if packet.kind == PacketKind.DATA:
            index = self.count
            self.count += 1
            if index in self.drop_indices and (
                not self.red_only or packet.color == Color.RED
            ):
                self.dropped += 1
                return
        forward(packet, in_port)


@SLOW
@given(
    drops=st.sets(st.integers(0, 40), max_size=12),
    size=st.integers(1, 60_000),
)
def test_tcp_completes_under_any_loss_pattern(drops, size):
    net = small_star()
    RandomLoss(net.switches[0], drops)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=size)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run(until=60_000_000_000)
    record = net.stats.flows[spec.flow_id]
    assert record.completed
    assert record.end_rx_ns is not None


@SLOW
@given(
    drops=st.sets(st.integers(0, 40), max_size=12),
    size=st.integers(1, 60_000),
)
def test_tlt_dctcp_completes_and_red_losses_cause_no_timeout(drops, size):
    """Red-only losses must never trigger a timeout under TLT."""
    net = small_star()
    RandomLoss(net.switches[0], drops, red_only=True)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=size)
    create_flow("dctcp", net, spec, TransportConfig(base_rtt_ns=4_000), TltConfig())
    net.engine.run(until=60_000_000_000)
    record = net.stats.flows[spec.flow_id]
    assert record.completed
    assert record.timeouts == 0


@SLOW
@given(
    drops=st.sets(st.integers(0, 40), max_size=10),
    variant=st.sampled_from(["dcqcn", "dcqcn-sack", "irn"]),
)
def test_roce_completes_under_any_loss_pattern(drops, variant):
    net = small_star()
    RandomLoss(net.switches[0], drops)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=30_000)
    create_flow(variant, net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run(until=60_000_000_000)
    record = net.stats.flows[spec.flow_id]
    assert record.completed


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 100)), max_size=50))
@settings(max_examples=50, deadline=None)
def test_engine_never_runs_backwards(events):
    engine = Engine()
    seen = []
    for delay, _tag in events:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)


@SLOW
@given(seed=st.integers(0, 2**16))
def test_random_bidirectional_flows_all_complete(seed):
    """A random mesh of flows (both families' worth of sizes) completes."""
    rng = random.Random(seed)
    net = small_star(num_hosts=5)
    specs = []
    for _ in range(6):
        src, dst = rng.sample(range(5), 2)
        spec = FlowSpec(
            flow_id=net.new_flow_id(), src=src, dst=dst,
            size=rng.randint(1, 80_000), start_ns=rng.randint(0, 100_000),
        )
        create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
        specs.append(spec)
    net.engine.run(until=30_000_000_000)
    assert all(net.stats.flows[s.flow_id].completed for s in specs)
