"""Object-level unit tests for the TLT window controller (no network).

These pin the Algorithm-1 state machine against a scripted fake sender,
independent of transport/queueing behavior."""

from repro.core.config import ClockingPolicy, TltConfig
from repro.core.window import TltWindowReceiver, TltWindowSender, _SendState
from repro.net.packet import Color, Packet, PacketKind, TltMark
from repro.stats.collector import NetStats


class FakeSender:
    """Minimal duck-typed sender for the controller."""

    def __init__(self):
        self.tlt = None
        self.snd_una = 0
        self.completed = False
        self.spec = type("S", (), {"size": 10_000})()
        self.calls = []
        self._loss = False

    def is_all_acked(self):
        return self.snd_una >= self.spec.size

    def has_unrepaired_loss(self):
        return self._loss

    def mark_lost_sent_before(self, ts):
        self.calls.append(("mark_lost_before", ts))
        return 0

    def try_send(self):
        self.calls.append(("try_send",))

    def clock_retransmit(self):
        self.calls.append(("clock_retransmit",))
        return 1460

    def clock_one_byte(self):
        self.calls.append(("clock_one_byte",))


def data_packet(mark=TltMark.NONE):
    pkt = Packet(1, 0, 1, PacketKind.DATA, seq=0, payload=1460)
    pkt.mark = mark
    return pkt


def ack_packet(mark, ack=0, ts_echo=123):
    pkt = Packet(1, 1, 0, PacketKind.ACK, ack=ack)
    pkt.mark = mark
    pkt.ts_echo = ts_echo
    return pkt


def make_controller(policy=ClockingPolicy.ADAPTIVE):
    sender = FakeSender()
    controller = TltWindowSender(sender, TltConfig(clocking=policy), NetStats())
    return sender, controller


def test_initial_state_is_important():
    _, controller = make_controller()
    assert controller.state is _SendState.IMPORTANT


def test_mark_data_consumes_state_only_on_last_allowed():
    _, controller = make_controller()
    pkt = data_packet()
    controller.mark_data(pkt, last_allowed=False)
    assert pkt.mark == TltMark.NONE and pkt.color == Color.RED
    assert controller.state is _SendState.IMPORTANT
    pkt2 = data_packet()
    controller.mark_data(pkt2, last_allowed=True)
    assert pkt2.mark == TltMark.IMPORTANT_DATA and pkt2.color == Color.GREEN
    assert controller.state is _SendState.IDLE


def test_echo_rearms_and_schedules_loss_detection():
    sender, controller = make_controller()
    controller.state = _SendState.IDLE
    assert controller.on_ack(ack_packet(TltMark.IMPORTANT_ECHO, ts_echo=777))
    assert controller.state is _SendState.IMPORTANT
    controller.on_ack_post(ack_packet(TltMark.IMPORTANT_ECHO, ts_echo=777))
    assert ("mark_lost_before", 777) in sender.calls


def test_clock_echo_below_una_suppressed_but_detected():
    sender, controller = make_controller()
    sender.snd_una = 100
    keep = controller.on_ack(ack_packet(TltMark.IMPORTANT_CLOCK_ECHO, ack=100, ts_echo=9))
    assert keep is False
    assert ("mark_lost_before", 9) in sender.calls
    assert controller.state is _SendState.IMPORTANT


def test_clock_echo_above_una_passes():
    sender, controller = make_controller()
    sender.snd_una = 100
    assert controller.on_ack(ack_packet(TltMark.IMPORTANT_CLOCK_ECHO, ack=101))


def test_after_ack_clocks_one_byte_without_loss():
    sender, controller = make_controller()
    controller.after_ack()
    assert ("clock_one_byte",) in sender.calls
    assert controller.state is _SendState.IMPORTANT or True  # consumed by clock mark


def test_after_ack_clocks_full_mss_on_loss():
    sender, controller = make_controller()
    sender._loss = True
    controller.after_ack()
    assert ("clock_retransmit",) in sender.calls


def test_after_ack_noop_when_idle_or_done():
    sender, controller = make_controller()
    controller.state = _SendState.IDLE
    controller.after_ack()
    assert sender.calls == []
    controller.state = _SendState.IMPORTANT
    sender.snd_una = sender.spec.size
    controller.after_ack()
    assert sender.calls == []


def test_policy_always_mtu():
    sender, controller = make_controller(ClockingPolicy.ALWAYS_MTU)
    controller.after_ack()
    assert ("clock_retransmit",) in sender.calls


def test_policy_always_1b_even_with_loss():
    sender, controller = make_controller(ClockingPolicy.ALWAYS_1B)
    sender._loss = True
    controller.after_ack()
    assert ("clock_one_byte",) in sender.calls


def test_mark_clock_data_counts_stats():
    sender, controller = make_controller()
    pkt = data_packet()
    pkt.payload = 1
    controller.mark_clock_data(pkt)
    assert pkt.mark == TltMark.IMPORTANT_CLOCK_DATA
    assert controller.stats.clocking_packets == 1
    assert controller.stats.clocking_bytes == 1


class FakeReceiver:
    def __init__(self):
        self.tlt_rx = None


def test_receiver_echo_state_machine():
    stats = NetStats()
    receiver = TltWindowReceiver(FakeReceiver(), stats)
    receiver.on_data(data_packet(TltMark.IMPORTANT_DATA))
    ack = ack_packet(TltMark.CONTROL)
    receiver.mark_ack(ack)
    assert ack.mark == TltMark.IMPORTANT_ECHO
    # The state was consumed: the next ack is plain.
    ack2 = ack_packet(TltMark.CONTROL)
    receiver.mark_ack(ack2)
    assert ack2.mark == TltMark.CONTROL


def test_receiver_clock_echo_state_machine():
    receiver = TltWindowReceiver(FakeReceiver(), NetStats())
    receiver.on_data(data_packet(TltMark.IMPORTANT_CLOCK_DATA))
    ack = ack_packet(TltMark.CONTROL)
    receiver.mark_ack(ack)
    assert ack.mark == TltMark.IMPORTANT_CLOCK_ECHO
