"""Service emulator: open-loop arrivals, tier graph, SLO report."""

import json
import os

import pytest

from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.service import ServiceSpec, slo_report
from repro.service.arrivals import OpenLoopArrivals
from repro.service.run import service_fingerprint
from repro.service.slo import render_slo_report
from repro.sim.backend import create_engine


SERVICE_SPEC = {
    "requests": 80,
    "rate_rps": 20_000.0,
    "tiers": [
        {"name": "cache", "servers": 3, "fanout": 2, "service_ns": 2_000},
        {"name": "storage", "servers": 2, "fanout": 1,
         "workload": "web_server", "max_bytes": 8_000, "service_ns": 5_000},
    ],
}


def _config(**overrides) -> ScenarioConfig:
    base = dict(transport="dctcp", scale=TINY, service=SERVICE_SPEC,
                enable_background=False, enable_incast=False, seed=1)
    base.update(overrides)
    return ScenarioConfig(**base)


# -- spec ------------------------------------------------------------------------


def test_spec_round_trip():
    spec = ServiceSpec.from_spec(SERVICE_SPEC)
    assert spec.total_fanout == 3
    again = ServiceSpec.from_spec(spec.to_spec())
    assert again == spec
    assert json.dumps(spec.to_spec())  # JSON-able for cache keys


def test_spec_validation():
    with pytest.raises(ValueError, match="tier"):
        ServiceSpec.from_spec({"requests": 10, "tiers": []})
    with pytest.raises(ValueError, match="fanout"):
        ServiceSpec.from_spec({"tiers": [
            {"name": "t", "servers": 2, "fanout": 3}]})
    with pytest.raises(ValueError, match="workload"):
        ServiceSpec.from_spec({"tiers": [{"name": "t", "workload": "nope"}]})
    with pytest.raises(ValueError, match="unique"):
        ServiceSpec.from_spec({"tiers": [{"name": "lb"}]})
    with pytest.raises(ValueError, match="process"):
        ServiceSpec.from_spec({"process": "uniform",
                               "tiers": [{"name": "t"}]})


# -- open-loop arrivals ----------------------------------------------------------


def _arrival_times(sink_extra_events: bool) -> list:
    """Fire times of 50 arrivals; optionally the sink floods the engine
    with extra work, which must not move a single arrival."""
    engine = create_engine()
    times = []

    def sink():
        times.append(engine.now)
        if sink_extra_events:
            for delay in (1, 2, 3):
                engine.schedule_timer(delay, lambda: None)

    arrivals = OpenLoopArrivals(engine, sink, total=50, rate_rps=1e6, seed=3)
    arrivals.schedule()
    engine.run(until=10**9)
    assert arrivals.exhausted
    return times


def test_open_loop_schedule_independent_of_request_processing():
    assert _arrival_times(False) == _arrival_times(True)


def test_arrival_processes_differ_but_share_mean():
    def times(process):
        engine = create_engine()
        out = []
        arrivals = OpenLoopArrivals(engine, lambda: out.append(engine.now),
                                    total=2_000, rate_rps=1e6,
                                    process=process, sigma=1.0, seed=5)
        arrivals.schedule()
        engine.run(until=10**10)
        return out

    poisson, lognormal = times("poisson"), times("lognormal")
    assert poisson != lognormal
    # Both target a 1 us mean gap; lognormal's heavy tail widens the
    # confidence band but the mean is the same by construction.
    for seq in (poisson, lognormal):
        mean_gap = seq[-1] / len(seq)
        assert 800 < mean_gap < 1_300


def test_arrivals_schedule_idempotent():
    engine = create_engine()
    fired = []
    arrivals = OpenLoopArrivals(engine, lambda: fired.append(engine.now),
                                total=5, rate_rps=1e6, seed=1)
    arrivals.schedule()
    arrivals.schedule()  # second arm must be a no-op
    engine.run(until=10**9)
    assert len(fired) == 5


# -- emulator through run_scenario ----------------------------------------------


def test_service_run_completes_and_is_deterministic():
    first = run_scenario(_config())
    second = run_scenario(_config())
    assert first.service is not None
    assert first.service.finished
    assert first.service.completed == SERVICE_SPEC["requests"]
    assert service_fingerprint(first) == service_fingerprint(second)
    # Different seed: different microstructure.
    other = run_scenario(_config(seed=2))
    assert service_fingerprint(other) != service_fingerprint(first)


def test_per_tier_latency_sketches_populated():
    result = run_scenario(_config())
    emulator = result.service
    summaries = emulator.tier_summaries()
    assert set(summaries) == {"cache", "storage"}
    # fanout 2 over the cache tier, 1 over storage, 80 requests.
    assert summaries["cache"]["count"] == 160
    assert summaries["storage"]["count"] == 80
    assert summaries["cache"]["p99"] > 0
    assert len(emulator.request_sketch) == 80


def test_hedging_issues_duplicate_ops():
    spec = dict(SERVICE_SPEC)
    spec["tiers"] = [
        {"name": "cache", "servers": 3, "fanout": 1, "service_ns": 200_000,
         "hedge_ns": 50_000},
    ]
    result = run_scenario(_config(service=spec))
    emulator = result.service
    assert emulator.finished
    assert emulator.hedges > 0
    # Hedge losers land in the tier sketch too (per-op latency), so the
    # tier op count exceeds fanout * requests.
    assert emulator.tier_summaries()["cache"]["count"] >= 80


def test_flow_retirement_keeps_stats_consistent():
    result = run_scenario(_config())
    stats = result.stats
    retired = sum(stats.retired_flows.values())
    assert retired > 0
    # Retired records leave the dict but stay in every aggregate.
    assert len(stats.flows) + retired == stats.flow_count()
    assert stats.flow_count() >= 80 * 3  # one flow per shard op + replies
    assert stats.goodput_bps("fg", result.duration_ns) > 0


def test_slo_report_schema_and_render():
    result = run_scenario(_config())
    report = slo_report(result.service, result.stats, result.duration_ns)
    assert report["schema"] == 1
    assert report["requests"]["completed"] == 80
    assert report["response_time_ms"]["count"] == 80
    assert report["slo"]["met"] in (True, False)
    assert set(report["tiers"]) == {"cache", "storage"}
    assert json.dumps(report)  # JSON-able as written to disk
    text = render_slo_report(report)
    assert "Service SLO report" in text
    assert "cache" in text and "storage" in text


def test_service_telemetry_stream(tmp_path):
    out_dir = str(tmp_path / "tele")
    result = run_scenario(_config(telemetry=out_dir))
    run_id = result.telemetry.run_id
    path = os.path.join(out_dir, f"run_{run_id}.jsonl")
    rows = [json.loads(line) for line in open(path, encoding="utf-8")]
    service_rows = [r for r in rows if r["stream"] == "service"]
    assert service_rows, "service stream missing from telemetry"
    tiers = {r["tier"] for r in service_rows}
    assert {"request", "cache", "storage"} <= tiers
    for row in service_rows:
        for field in ("tier", "count", "p50_ns", "p99_ns", "p999_ns"):
            assert field in row
    # SLO artifacts ride the same out_dir.
    assert os.path.exists(os.path.join(out_dir, f"slo_{run_id}.json"))
    assert os.path.exists(os.path.join(out_dir, f"slo_{run_id}.txt"))
    assert os.path.exists(os.path.join(out_dir, f"slo_{run_id}.html"))


def test_telemetry_does_not_change_service_results(tmp_path):
    plain = run_scenario(_config())
    observed = run_scenario(_config(telemetry=str(tmp_path / "tele")))
    fp_plain = service_fingerprint(plain)
    fp_observed = service_fingerprint(observed)
    # Sampler timer events inflate the raw event count; every
    # simulation observable must be identical.
    fp_plain.pop("events")
    fp_observed.pop("events")
    assert fp_plain == fp_observed


def test_service_row_reducer_keys():
    from repro.experiments.service_slo import service_row

    row = service_row(run_scenario(_config()))
    assert set(row) == {"p50_ms", "p99_ms", "p999_ms", "timeouts_per_1k",
                        "req_per_s", "completed", "hedges", "slo_met"}
    assert all(isinstance(v, float) for v in row.values())
    assert row["completed"] == 80.0
