"""Stub experiment module for CLI tests (registered via monkeypatch).

Mirrors the contract of a real figure module — ``run(scale, seeds)``
returning rows, ``main(scale)`` printing them, a ``COLUMNS`` constant —
without running any simulation, so CLI plumbing tests stay fast.
"""

from typing import Dict, List, Sequence

COLUMNS = ["scheme", "value"]

#: Arguments of the last run() call, for assertions.
LAST_CALL: Dict = {}


def run(scale="small", seeds: Sequence[int] = (1,)) -> List[Dict]:
    LAST_CALL.clear()
    LAST_CALL.update({"scale": scale, "seeds": tuple(seeds)})
    return [{"scheme": "stub", "value": 1.0 * len(tuple(seeds))}]


def main(scale="small") -> None:
    from repro.experiments.common import print_table

    print_table(run(scale), COLUMNS, "stub experiment")
