"""Tests for unit helpers and seeded RNG streams."""

import pytest

from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.units import GBPS, KB, MB, bdp_bytes, bytes_per_ns, tx_time_ns


def test_tx_time_40g_1500b():
    # 1500 B at 40 Gb/s = 300 ns exactly.
    assert tx_time_ns(1500, 40 * GBPS) == 300


def test_tx_time_rounds_up():
    # 1 B at 40 Gb/s is 0.2 ns -> must round to 1 ns.
    assert tx_time_ns(1, 40 * GBPS) == 1


def test_tx_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        tx_time_ns(100, 0)


def test_bdp_paper_value():
    # The paper: 80 us x 40 Gbps = 400 kB.
    assert bdp_bytes(40 * GBPS, 80_000) == 400 * KB


def test_bytes_per_ns():
    assert bytes_per_ns(40 * GBPS) == pytest.approx(5.0)


def test_decimal_units():
    assert KB == 1_000
    assert MB == 1_000_000


def test_rng_streams_are_independent():
    reg = RngRegistry(42)
    a1 = [reg.stream("a").random() for _ in range(5)]
    reg2 = RngRegistry(42)
    reg2.stream("b").random()  # touching another stream first
    a2 = [reg2.stream("a").random() for _ in range(5)]
    assert a1 == a2


def test_rng_streams_differ_by_name():
    reg = RngRegistry(42)
    assert reg.stream("x").random() != reg.stream("y").random()


def test_rng_same_stream_is_cached():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_derive_seed_depends_on_master():
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
