"""Tests for topologies and ECMP routing."""

import pytest

from repro.net.packet import Packet, PacketKind
from repro.net.routing import Fib, ecmp_index
from repro.net.topology import TopologyParams, dumbbell, leaf_spine, star
from repro.switchsim.switch import SwitchConfig


def test_leaf_spine_shape():
    net = leaf_spine(num_spines=2, num_tors=4, hosts_per_tor=4)
    assert len(net.hosts) == 16
    assert len(net.switches) == 6  # 4 ToRs + 2 spines
    tor = net.switches[0]
    assert len(tor.ports) == 4 + 2  # hosts + uplinks
    spine = net.switches[4]
    assert len(spine.ports) == 4  # one per ToR


def test_all_pairs_reachable_in_leaf_spine():
    net = leaf_spine(num_spines=2, num_tors=3, hosts_per_tor=2)
    received = []

    class Sink:
        def on_packet(self, p):
            received.append(p)

    sink = Sink()
    flow = 1
    for src in net.hosts:
        for dst in net.hosts:
            if src is dst:
                continue
            dst.register_endpoint(flow, sink)
            src.send(Packet(flow, src.host_id, dst.host_id, PacketKind.DATA, payload=100))
            flow += 1
    net.engine.run()
    assert len(received) == 6 * 5


def test_ecmp_is_deterministic_per_flow():
    fib = Fib(switch_id=3)
    fib.add_route(7, [0, 1, 2, 3])
    first = fib.lookup(7, flow_id=42)
    assert all(fib.lookup(7, flow_id=42) == first for _ in range(100))


def test_ecmp_spreads_flows():
    fib = Fib(switch_id=3)
    fib.add_route(7, [0, 1, 2, 3])
    chosen = {fib.lookup(7, flow_id=f) for f in range(200)}
    assert chosen == {0, 1, 2, 3}


def test_ecmp_differs_between_switches():
    picks_a = [ecmp_index(f, 1, 4) for f in range(100)]
    picks_b = [ecmp_index(f, 2, 4) for f in range(100)]
    assert picks_a != picks_b


def test_ecmp_validates_fanout():
    with pytest.raises(ValueError):
        ecmp_index(1, 1, 0)


def test_fib_requires_ports():
    fib = Fib(0)
    with pytest.raises(ValueError):
        fib.add_route(1, [])


def test_star_all_hosts_on_one_switch():
    net = star(num_hosts=5)
    assert len(net.switches) == 1
    assert len(net.switches[0].ports) == 5


def test_dumbbell_cross_traffic_uses_trunk():
    net = dumbbell(left_hosts=3, right_hosts=2)
    received = []

    class Sink:
        def on_packet(self, p):
            received.append(p)

    net.host(4).register_endpoint(1, Sink())
    net.host(0).send(Packet(1, 0, 4, PacketKind.DATA, payload=100))
    net.engine.run()
    assert len(received) == 1
    trunk_port = net.switches[0].ports[3]  # after 3 host ports
    assert trunk_port.tx_packets == 1


def test_flow_id_allocation_unique():
    net = star(num_hosts=2)
    ids = {net.new_flow_id() for _ in range(100)}
    assert len(ids) == 100


def test_per_switch_buffer_and_config_shared():
    cfg = SwitchConfig(buffer_bytes=123_456)
    net = leaf_spine(params=TopologyParams(switch_config=cfg))
    assert all(s.buffer.capacity == 123_456 for s in net.switches)
    # Buffers are per-switch instances, not shared.
    net.switches[0].buffer.reserve(100)
    assert net.switches[1].buffer.used == 0
