"""Micro-scale smoke tests for the experiment modules.

Each module's ``run()`` must produce structurally valid rows at a
minimal scale (the benchmarks exercise them at full scale)."""


from repro.experiments.scale import Scale

#: Smallest meaningful scale: single-digit seconds per scenario.
MICRO = Scale("micro", num_spines=1, num_tors=2, hosts_per_tor=2,
              bg_flows=6, incast_events=1, incast_flows_per_sender=2)


def test_fig01_rows():
    from repro.experiments import fig01_rto_cdf as exp

    rows = exp.run(MICRO)
    assert len(rows) == 4
    assert {r["metric"] for r in rows} == {"rtt_us", "rto_us"}
    assert all(r["p50"] <= r["p99"] for r in rows)


def test_fig02_rows():
    from repro.experiments import fig02_fixed_rto as exp

    rows = exp.run(MICRO)
    assert [r["scheme"] for r in rows] == ["baseline_4ms", "fixed_160us"]


def test_fig08_rows():
    from repro.experiments import fig08_threshold_sweep as exp

    rows = exp.run(MICRO, thresholds=(200_000, 400_000))
    assert len(rows) == 4
    assert {r["threshold_kB"] for r in rows} == {200, 400}


def test_fig09_rows():
    from repro.experiments import fig09_load_sweep as exp

    rows = exp.run(MICRO, loads=(0.2,), transports=("dctcp",))
    assert len(rows) == 2  # ±TLT
    assert all(r["load"] == 0.2 for r in rows)


def test_fig10_rows():
    from repro.experiments import fig10_fg_share as exp

    rows = exp.run(MICRO, shares=(0.0, 0.1))
    assert len(rows) == 2
    assert rows[0]["important_fraction"] >= 0


def test_fig11_rows():
    from repro.experiments import fig11_queue_behavior as exp

    result = exp.run(MICRO)
    assert set(result) == {"fraction", "queues"}
    assert {r["scheme"] for r in result["queues"]} == {"dctcp", "dctcp+tlt"}


def test_fig13_rows():
    from repro.experiments import fig13_mixed_traffic as exp

    rows = exp.run(MICRO)
    assert len(rows) == 2
    assert all(r["answered"] == 152 for r in rows)


def test_fig16_rows():
    from repro.experiments import fig16_delivery_cdf as exp

    rows = exp.run(MICRO)
    assert {r["scheme"] for r in rows} == {"dctcp", "dctcp+tlt"}
    assert all(r["p50_us"] > 0 for r in rows)


def test_fig18_rows():
    from repro.experiments import fig18_incast_degree as exp

    rows = exp.run(MICRO, degrees=(2,), transports=("tcp",))
    assert len(rows) == 2


def test_table1_rows():
    from repro.experiments import table1_important_loss as exp

    rows = exp.run(MICRO, thresholds=(400_000,), shares=(0.05,),
                   transports=("dctcp",), include_stress=False)
    assert len(rows) == 1
    assert rows[0]["important_loss_rate"] >= 0


def test_ext_periodic_n_rows():
    from repro.experiments import ext_periodic_n as exp

    rows = exp.run(MICRO, ns=(None, 96))
    assert [r["periodic_n"] for r in rows] == ["off", 96]


def test_ext_corruption_rows():
    from repro.experiments import ext_corruption as exp

    rows = exp.run(MICRO, rates=(0.0, 1e-3))
    assert len(rows) == 2
    assert rows[0]["corrupted_green"] == 0


def test_fig12_single_point():
    from repro.experiments import fig12_redis_incast as exp

    row = exp.run_one("dctcp", tlt=True, requests=8, bursts=1)
    assert row["answered"] == 8
    assert row["timeouts"] == 0


def test_fig14_single_point():
    from repro.experiments import fig14_incast_microbench as exp

    row = exp.run_one("dctcp", "tlt", flows=8, runs=1)
    assert row["answered"] == 8
    assert row["p99_ms"] > 0
