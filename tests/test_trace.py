"""Tests for the packet tracer and CSV export utilities."""

import os

from repro.experiments.export import rows_to_csv
from repro.sim.trace import PacketTracer
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import small_star


def run_two_flows(net):
    for src, dst in ((0, 1), (2, 3)):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=dst, size=5_000)
        create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run()


def test_tracer_records_events():
    net = small_star()
    tracer = PacketTracer(net)
    run_two_flows(net)
    assert len(tracer) > 0
    assert tracer.flows_seen() == {1, 2}
    text = tracer.to_text()
    assert "DATA" in text and "ACK" in text


def test_tracer_flow_filter():
    net = small_star()
    tracer = PacketTracer(net, flow_ids={1})
    run_two_flows(net)
    assert tracer.flows_seen() == {1}


def test_tracer_event_cap():
    net = small_star()
    tracer = PacketTracer(net, max_events=3)
    run_two_flows(net)
    assert len(tracer) == 3


def test_tracer_detach_stops_recording():
    net = small_star()
    tracer = PacketTracer(net)
    tracer.detach()
    run_two_flows(net)
    assert len(tracer) == 0


def test_trace_events_are_time_ordered_per_device():
    net = small_star()
    tracer = PacketTracer(net)
    run_two_flows(net)
    times = [e.time_ns for e in tracer.events]
    assert times == sorted(times)


def test_rows_to_csv_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2.5, "c": "y"}]
    path = rows_to_csv(rows, str(tmp_path / "sub" / "out.csv"))
    assert os.path.exists(path)
    with open(path) as handle:
        lines = handle.read().splitlines()
    assert lines[0] == "a,b,c"
    assert lines[1] == "1,x,"
    assert lines[2] == "2.5,,y"


def test_rows_to_csv_explicit_columns(tmp_path):
    rows = [{"a": 1, "b": 2}]
    path = rows_to_csv(rows, str(tmp_path / "out.csv"), columns=("b",))
    with open(path) as handle:
        assert handle.read().splitlines() == ["b", "2"]
