"""Tests for optional connection setup/teardown (SYN/FIN modeling)."""

from repro.core.config import TltConfig
from repro.net.packet import Color, PacketKind, TltMark
from repro.sim.units import MILLIS
from repro.transport.base import TransportConfig

from tests.util import DropFilter, PacketTap, run_flow, small_star

import pytest

# Taps in this module retain Packet objects across the run.
pytestmark = pytest.mark.usefixtures("no_packet_pool")



class Tap:
    def __init__(self, switch):
        self.packets = []
        PacketTap(switch, self.packets.append)

    def kinds(self):
        return [p.kind for p in self.packets]


def hs_config(**kw):
    kw.setdefault("handshake", True)
    kw.setdefault("base_rtt_ns", 4_000)
    return TransportConfig(**kw)


def test_handshake_flow_completes_with_syn_and_fin():
    net = small_star()
    tap = Tap(net.switches[0])
    _, _, record = run_flow(net, "tcp", size=10_000, config=hs_config())
    assert record.completed
    kinds = tap.kinds()
    assert kinds[0] == PacketKind.SYN
    assert kinds[1] == PacketKind.SYN_ACK
    assert PacketKind.FIN in kinds
    # Data only flows after the handshake.
    assert kinds.index(PacketKind.SYN_ACK) < kinds.index(PacketKind.DATA)


def test_handshake_adds_one_rtt():
    net_a = small_star()
    _, _, plain = run_flow(net_a, "tcp", size=10_000,
                           config=TransportConfig(base_rtt_ns=4_000))
    net_b = small_star()
    _, _, with_hs = run_flow(net_b, "tcp", size=10_000, config=hs_config())
    assert with_hs.fct_ns > plain.fct_ns
    assert with_hs.fct_ns - plain.fct_ns < 100_000  # ~1 RTT, not more


def test_control_packets_are_green():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=5_000, config=hs_config(), tlt=TltConfig())
    control = [p for p in tap.packets
               if p.kind in (PacketKind.SYN, PacketKind.SYN_ACK, PacketKind.FIN)]
    assert control
    assert all(p.color == Color.GREEN for p in control)
    assert all(p.mark == TltMark.CONTROL for p in control)


def test_syn_loss_retransmitted():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_once(lambda p: p.kind == PacketKind.SYN)
    config = hs_config(rto_min_ns=1 * MILLIS)
    _, _, record = run_flow(net, "tcp", size=5_000, config=config)
    assert record.completed
    assert record.timeouts == 1
    assert record.fct_ns > 1 * MILLIS


def test_syn_ack_loss_retransmitted():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_once(lambda p: p.kind == PacketKind.SYN_ACK)
    config = hs_config(rto_min_ns=1 * MILLIS)
    _, _, record = run_flow(net, "tcp", size=5_000, config=config)
    assert record.completed
    assert record.timeouts >= 1


def test_duplicate_syn_ack_harmless():
    net = small_star()
    drop = DropFilter(net.switches[0])
    # Drop the first SYN *after* the switch: receiver never sees it.
    # Instead exercise the idempotent path: let both a retransmitted
    # SYN and its duplicate SYN-ACK arrive.
    config = hs_config(rto_min_ns=1 * MILLIS)
    sender, receiver, record = run_flow(net, "tcp", size=5_000, config=config)
    # Manually inject an extra (stale) SYN at the receiver.
    from repro.net.packet import Packet

    stale = Packet(record.flow_id, record.src, record.dst, PacketKind.SYN)
    receiver.on_packet(stale)
    net.engine.run()
    assert record.completed


def test_handshake_with_dctcp_and_tlt():
    net = small_star()
    _, _, record = run_flow(net, "dctcp", size=20_000, config=hs_config(ecn=True),
                            tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0
