"""Tests for the experiment harness (tables, averaging, CLI, registry)."""

import importlib
import sys

import pytest

from repro.experiments.common import format_table, resolve_scale, run_averaged
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.scale import SCALES, Scale
from repro.experiments.scenarios import ScenarioConfig


def test_format_table_alignment_and_rounding():
    rows = [{"a": 1.23456789, "b": "x"}, {"a": 10.0, "b": "longer"}]
    text = format_table(rows, ["a", "b"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.235" in text  # 4 significant digits
    assert "longer" in text


def test_format_table_missing_keys_blank():
    text = format_table([{"a": 1}], ["a", "b"])
    assert "b" in text  # header present even when values missing


def test_resolve_scale_accepts_names_and_objects():
    assert resolve_scale("tiny") is SCALES["tiny"]
    custom = Scale("x", 1, 2, 2, 5, 1, 1)
    assert resolve_scale(custom) is custom
    with pytest.raises(KeyError):
        resolve_scale("gigantic")


def test_run_averaged_reports_mean_and_std():
    fast = Scale("fast", 1, 2, 2, 6, 1, 2)
    config = ScenarioConfig(transport="dctcp", scale=fast)
    row = run_averaged(config, seeds=(1, 2))
    assert "fg_p99_ms" in row
    assert "fg_p99_ms_std" in row


def test_registry_covers_every_figure_and_table():
    figs = {f"fig{n:02d}" for n in (1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)}
    assert figs.issubset(EXPERIMENTS)
    assert "table1" in EXPERIMENTS


def test_every_experiment_module_importable_with_run_and_main():
    for module_name in EXPERIMENTS.values():
        module = importlib.import_module(module_name)
        assert hasattr(module, "run")
        assert hasattr(module, "main")


def test_cli_list():
    assert main(["list"]) == 0


def test_cli_unknown_experiment():
    assert main(["fig99"]) == 2


def test_cli_rejects_bad_seed_count():
    assert main(["fig05", "--seeds", "0"]) == 2


def test_cli_flags_configure_execution_context(monkeypatch):
    from repro.experiments.parallel import get_context
    from tests import stub_experiment

    monkeypatch.setitem(EXPERIMENTS, "stub", "tests.stub_experiment")
    assert main(["stub", "--scale", "tiny", "--jobs", "3", "--no-cache",
                 "--timeout", "7.5"]) == 0
    context = get_context()
    assert context.jobs == 3
    assert context.use_cache is False
    assert context.timeout_s == 7.5
    assert stub_experiment.LAST_CALL["scale"] == "tiny"


def test_cli_seeds_passed_to_module_run(monkeypatch, capsys):
    from tests import stub_experiment

    monkeypatch.setitem(EXPERIMENTS, "stub", "tests.stub_experiment")
    assert main(["stub", "--scale", "tiny", "--seeds", "4"]) == 0
    assert stub_experiment.LAST_CALL["seeds"] == (1, 2, 3, 4)
    out = capsys.readouterr().out
    assert "stub" in out and "4" in out  # value column = seed count


def test_cli_seeds_ignored_on_single_seed_modules(monkeypatch, capsys):
    import types

    module = types.ModuleType("tests._single_seed_stub")

    def run(scale="small", seed: int = 1):
        return [{"v": 1.0}]

    module.run = run
    module.main = lambda scale="small": None
    monkeypatch.setitem(sys.modules, "tests._single_seed_stub", module)
    monkeypatch.setitem(EXPERIMENTS, "sstub", "tests._single_seed_stub")
    assert main(["sstub", "--seeds", "3"]) == 0
    assert "single-seed" in capsys.readouterr().err


def test_cli_bench_report_writes_json(monkeypatch, tmp_path):
    import json

    monkeypatch.setitem(EXPERIMENTS, "stub", "tests.stub_experiment")
    out = tmp_path / "BENCH_stub.json"
    assert main(["bench-report", "--scale", "tiny", "--only", "stub",
                 "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["scale"] == "tiny"
    assert "stub" in report["experiments"]
    entry = report["experiments"]["stub"]
    assert entry["wall_s"] >= 0
    assert "events_per_sec" in entry
    assert report["total_wall_s"] >= 0


def test_cli_bench_report_unknown_subset():
    assert main(["bench-report", "--only", "nope"]) == 2
