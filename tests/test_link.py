"""Tests for ports/links: serialization, propagation, FIFO, pause."""

from repro.net.link import connect
from repro.net.node import Device
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.sim.units import GBPS


class Source(Device):
    """Device with a scripted packet list."""

    def __init__(self, engine):
        super().__init__(engine, "src")
        self.queue = []

    def poll(self, port):
        return self.queue.pop(0) if self.queue else None

    def receive(self, packet, in_port):
        pass

    def push(self, packet):
        self.queue.append(packet)
        self.ports[0].kick()


class Sink(Device):
    def __init__(self, engine):
        super().__init__(engine, "sink")
        self.received = []

    def poll(self, port):
        return None

    def receive(self, packet, in_port):
        self.received.append((self.engine.now, packet))


def make_pair(rate=40 * GBPS, delay=1000):
    engine = Engine()
    src = Source(engine)
    sink = Sink(engine)
    connect(src.add_port(rate, delay), sink.add_port(rate, delay))
    return engine, src, sink


def _pkt(seq=0, payload=1452):
    return Packet(1, 0, 1, PacketKind.DATA, seq=seq, payload=payload)


def test_delivery_time_is_serialization_plus_propagation():
    engine, src, sink = make_pair()
    src.push(_pkt())  # 1500 B wire size -> 300 ns at 40G, +1000 ns prop
    engine.run()
    assert [t for t, _ in sink.received] == [1300]


def test_back_to_back_packets_serialize_sequentially():
    engine, src, sink = make_pair()
    src.push(_pkt(seq=0))
    src.push(_pkt(seq=1))
    engine.run()
    times = [t for t, _ in sink.received]
    assert times == [1300, 1600]  # second waits one serialization time


def test_fifo_order_preserved():
    engine, src, sink = make_pair()
    for seq in range(5):
        src.push(_pkt(seq=seq))
    engine.run()
    assert [p.seq for _, p in sink.received] == list(range(5))


def test_tx_counters():
    engine, src, sink = make_pair()
    src.push(_pkt())
    engine.run()
    port = src.ports[0]
    assert port.tx_packets == 1
    assert port.tx_bytes == 1500


def test_pause_blocks_transmission():
    engine, src, sink = make_pair()
    port = src.ports[0]
    port.apply_pause(10_000)
    src.push(_pkt())
    engine.run(until=5_000)
    assert sink.received == []
    engine.run()
    # Released at t=10_000, arrives 1300 ns later.
    assert [t for t, _ in sink.received] == [11_300]


def test_resume_frame_unpauses_early():
    engine, src, sink = make_pair()
    port = src.ports[0]
    port.apply_pause(1_000_000)
    src.push(_pkt())
    engine.schedule(2_000, port.apply_pause, 0)  # explicit RESUME
    engine.run()
    assert [t for t, _ in sink.received] == [3_300]


def test_paused_time_accounted():
    engine, src, sink = make_pair()
    port = src.ports[0]
    port.apply_pause(5_000)
    engine.run()
    assert port.paused_ns == 5_000
    assert not port.paused


def test_pause_extension_replaces_timer():
    engine, src, sink = make_pair()
    port = src.ports[0]
    port.apply_pause(1_000)
    engine.schedule(500, port.apply_pause, 2_000)  # re-pause extends
    src.push(_pkt())
    engine.run()
    assert [t for t, _ in sink.received] == [2_500 + 1300]


def test_send_pause_reaches_peer_port():
    engine = Engine()
    a = Source(engine)
    b = Sink(engine)
    pa = a.add_port(40 * GBPS, 1000)
    pb = b.add_port(40 * GBPS, 1000)
    connect(pa, pb)
    pa.send_pause(7_000)
    engine.run()
    assert pb.pause_frames_rx == 1
    # b's port was paused for 7 us.
    assert pb.paused_ns == 7_000


def test_in_flight_packet_not_recalled_by_pause():
    engine, src, sink = make_pair()
    src.push(_pkt())
    engine.run(until=100)  # serialization started
    src.ports[0].apply_pause(50_000)
    engine.run()
    assert len(sink.received) == 1  # the packet still arrives
