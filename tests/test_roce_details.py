"""Finer-grained RoCE behaviors: CNP rate limiting, IRN RTO value,
INT on multi-hop paths, DCQCN+TLT+PFC combination."""

import random

from repro.core.config import TltConfig
from repro.net.packet import PacketKind
from repro.net.topology import TopologyParams, leaf_spine
from repro.switchsim.ecn import RedEcn
from repro.switchsim.pfc import PfcConfig
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import PacketTap, run_flow, small_star


def cfg(**kw):
    kw.setdefault("base_rtt_ns", 4_000)
    return TransportConfig(**kw)


def test_cnp_rate_limited_to_one_per_interval():
    """CE on every packet, but at most one CNP per 50 us per flow."""
    net = small_star(ecn=RedEcn(0, 1, 1.0, random.Random(1)))  # mark everything
    cnps = []
    switch = net.switches[0]
    def tap(packet):
        if packet.kind == PacketKind.CNP:
            cnps.append(net.engine.now)

    PacketTap(switch, tap)
    _, _, record = run_flow(net, "dcqcn", size=400_000, config=cfg())
    assert record.completed
    assert cnps, "expected CNPs under universal marking"
    gaps = [b - a for a, b in zip(cnps, cnps[1:])]
    assert all(gap >= 50_000 for gap in gaps)


def test_irn_uses_rto_high():
    net = small_star()
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=10_000)
    sender, _ = create_flow("irn", net, spec, cfg())
    assert sender.rto.base_rto == 1_930_000  # IRN's recommended RTO_high


def test_dcqcn_uses_static_4ms_rto():
    net = small_star()
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=10_000)
    sender, _ = create_flow("dcqcn", net, spec, cfg())
    assert sender.rto.base_rto == 4_000_000


def test_hpcc_int_stack_has_one_record_per_switch_hop():
    params = TopologyParams(
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
        switch_config=SwitchConfig(buffer_bytes=1_000_000, int_enabled=True),
    )
    net = leaf_spine(num_spines=1, num_tors=2, hosts_per_tor=2, params=params)
    int_lengths = []
    receiver_host = net.host(3)
    def tap(packet):
        if packet.kind == PacketKind.DATA and packet.int_records is not None:
            int_lengths.append(len(packet.int_records))

    PacketTap(receiver_host, tap)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=3, size=20_000)
    create_flow("hpcc", net, spec, cfg())
    net.engine.run()
    assert int_lengths
    # Path host0 -> tor0 -> spine -> tor1 -> host3: three switch hops.
    assert all(n == 3 for n in int_lengths)


def test_dcqcn_tlt_pfc_combination_lossless_for_green():
    net = small_star(
        num_hosts=9,
        buffer_bytes=400_000,
        color_threshold_bytes=100_000,
        pfc=PfcConfig(enabled=True),
        ecn=RedEcn(5_000, 200_000, 0.01, random.Random(5)),
    )
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=100_000)
        create_flow("dcqcn", net, spec, cfg(), TltConfig())
    net.engine.run(until=5_000_000_000)
    assert net.stats.incomplete_flows() == 0
    assert net.stats.drops_green == 0
    assert net.stats.timeouts == 0


def test_roce_flows_over_leaf_spine_complete():
    params = TopologyParams(
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
        switch_config=SwitchConfig(buffer_bytes=1_000_000, int_enabled=True),
    )
    net = leaf_spine(num_spines=2, num_tors=2, hosts_per_tor=2, params=params)
    specs = []
    for variant, (src, dst) in zip(
        ("dcqcn", "dcqcn-sack", "irn", "hpcc"), ((0, 2), (1, 3), (2, 0), (3, 1))
    ):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=dst, size=50_000)
        create_flow(variant, net, spec, cfg())
        specs.append(spec)
    net.engine.run(until=5_000_000_000)
    assert all(net.stats.flows[s.flow_id].completed for s in specs)
