"""Sharded execution: bit-exactness contract and shard-boundary units.

The system-level tests assert the contract of ``repro.sim.sharding``
directly against the determinism suite's pinned single-core
fingerprints: running the fabric across N shard workers is an
execution strategy, not an approximation. The unit tests cover the
shard boundary itself — conservative-lookahead window size, cut-port
outbox emission, cross-shard batch tie ordering, and timer-wheel
events landing exactly on a window edge.
"""

from dataclasses import replace

import pytest

from repro.experiments.parallel import Job
from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.net.packet import Packet, PacketKind, packet_to_wire
from repro.sim.engine import Engine
from repro.sim.sharding import MSG_PACKET, CutPort, ShardPlan, _ShardWorker

from tests.test_determinism import CONFIGS, EXPECTED, fingerprint


def _config(**overrides) -> ScenarioConfig:
    base = dict(transport="dctcp", tlt=True, scale=TINY, seed=3, audit=False)
    base.update(overrides)
    return ScenarioConfig(**base)


# -- contract: sharded == single-core, bit for bit ---------------------------


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_fingerprint_matches_single_core(shards, monkeypatch):
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    assert fingerprint(_config(shards=shards)) == EXPECTED["dctcp_tlt"]


def test_sharded_fingerprint_matches_for_hpcc(monkeypatch):
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    config = replace(CONFIGS["hpcc_tlt"](), shards=2)
    assert fingerprint(config) == EXPECTED["hpcc_tlt"]


def test_shards_one_is_the_plain_single_core_path():
    # resolved_shards == 1 must not touch the sharding machinery at all.
    assert fingerprint(_config(shards=1)) == EXPECTED["dctcp_tlt"]


def test_flow_records_match_single_core_for_both_flow_kinds(monkeypatch):
    """Every merged FlowRecord — same-shard and cross-shard flows alike —
    is field-identical to the single-core run's record."""
    single = run_scenario(_config())
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    sharded = run_scenario(_config(shards=2))

    a, b = single.net.stats.flows, sharded.net.stats.flows
    assert set(a) == set(b)
    fields = ("src", "dst", "size", "start_ns", "group", "end_rx_ns",
              "end_ack_ns", "timeouts", "retx_bytes", "tx_bytes")
    for flow_id, record in a.items():
        mirror = b[flow_id]
        for field in fields:
            assert getattr(record, field) == getattr(mirror, field), (
                f"flow {flow_id} field {field}")

    # The TINY fabric split two ways must exercise both topological
    # cases, or this test proves less than it claims.
    plan = ShardPlan(2, TINY.num_spines, TINY.num_tors, TINY.hosts_per_tor)
    owners = {(plan.host_owner(r.src), plan.host_owner(r.dst)) for r in a.values()}
    assert any(src == dst for src, dst in owners), "no same-shard flow in workload"
    assert any(src != dst for src, dst in owners), "no cross-shard flow in workload"


def test_cache_key_ignores_shards():
    # Sharding is bit-identical by contract, so a sharded and a plain
    # run must share one result-cache entry.
    plain = Job(index=0, config=_config(), seed=3)
    sharded = Job(index=0, config=_config(shards=4), seed=3)
    assert plain.cache_key() == sharded.cache_key()


# -- shard plan and lookahead ------------------------------------------------


def test_shard_plan_round_robins_subtrees():
    plan = ShardPlan(2, num_spines=1, num_tors=2, hosts_per_tor=3)
    assert [plan.tor_owner(i) for i in range(2)] == [0, 1]
    # Spines are offset by num_tors so they don't pile onto shard 0.
    assert plan.spine_owner(0) == 0
    # Hosts follow their ToR.
    assert [plan.host_owner(h) for h in range(6)] == [0, 0, 0, 1, 1, 1]


def test_lookahead_is_min_cut_link_delay(monkeypatch):
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    config = _config()
    worker = _ShardWorker(config, 2, 0, manage_gc=False)
    meta = worker.setup()
    assert meta["lookahead"] == config.resolved_link_delay_ns
    # Owned ports with a remote peer became live CutPorts; the rest of
    # the registry stayed plain replicas.
    live = [p for p in worker.cut_ports if type(p) is CutPort]
    assert live and all(p.shard_out is worker.outbox for p in live)
    assert any(type(p) is not CutPort for p in worker.cut_ports)


# -- cross-shard batches -----------------------------------------------------


def test_cut_port_outbox_preserves_emission_order(monkeypatch):
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    config = _config()
    worker = _ShardWorker(config, 2, 0, manage_gc=False)
    worker.setup()
    port = next(p for p in worker.cut_ports if type(p) is CutPort)
    engine = worker.engine

    base = port.wire_seq
    for flow_id in (11, 12):
        pkt = Packet(flow_id, 0, 5, PacketKind.DATA, payload=1000)
        port._tx_done(pkt)

    batch = [entry for entry in worker.outbox if entry[3] == MSG_PACKET]
    assert [entry[4][0] for entry in batch] == [11, 12]
    # Arrival stamps are emission + exactly one link delay, and each
    # frame carries the port's own wire-sequence key (FIFO-increasing).
    assert all(entry[1] == engine.now + port.delay_ns for entry in batch)
    assert all(entry[0] == port.cut_id for entry in batch)
    assert [entry[2] for entry in batch] == [base, base + 1]


def test_same_nanosecond_batch_delivered_in_wire_seq_order(monkeypatch):
    """Remote packets arriving at the same nanosecond must be delivered
    in wire-sequence order — the emitting port's heap key, stamped at
    emission — not in staging or pipe-arrival order."""
    monkeypatch.setenv("TLT_SHARD_INLINE", "1")
    config = _config()
    worker = _ShardWorker(config, 2, 0, manage_gc=False)
    meta = worker.setup()
    # An inbound direction: the TX side lives in the other shard, so
    # its peer (our side) is a live local device.
    cut_id = next(i for i, dst in enumerate(meta["route"]) if dst == 0)
    port = worker.cut_ports[cut_id]
    receiver = port.peer.owner

    seen = []
    inner = receiver.receive

    def spy(packet, in_port):
        seen.append(packet.flow_id)
        return inner(packet, in_port)

    receiver.receive = spy
    arrival = worker.engine.now + port.delay_ns
    # The local replica of the remote TX port carries the same
    # construction rank the owning shard's live port has, so its
    # wire_seq is exactly the key the remote side would stamp.
    base = port.wire_seq
    messages = [
        (arrival, base + offset, cut_id, MSG_PACKET,
         packet_to_wire(Packet(flow_id, 0, 5, PacketKind.DATA, payload=1000)))
        for offset, flow_id in ((2, 23), (0, 21), (1, 22))
    ]
    worker.window(arrival, messages, False)
    assert seen == [21, 22, 23]


# -- run_window at the boundary ----------------------------------------------


def test_run_window_executes_inclusive_boundary_and_advances_clock():
    engine = Engine()
    fired = []
    engine.schedule_at(100, fired.append, "a")
    engine.schedule_at(250, fired.append, "b")
    engine.run_window(100)
    assert fired == ["a"] and engine.now == 100
    engine.run_window(249)
    assert fired == ["a"] and engine.now == 249
    engine.run_window(400)
    assert fired == ["a", "b"] and engine.now == 400


def test_run_window_fires_wheel_parked_rto_on_window_edge():
    """An RTO parked in the hierarchical timer wheel must fire in the
    window whose inclusive upper edge equals the timer's deadline —
    wheel flushing cannot defer it to the next window."""
    engine = Engine()
    fired = []
    deadline = 5_000_000  # far enough out to be wheel-parked
    engine.schedule_timer_at(deadline, fired.append, "rto")
    engine.run_window(deadline - 1)
    assert not fired and engine.now == deadline - 1
    engine.run_window(deadline)
    assert fired == ["rto"] and engine.now == deadline
