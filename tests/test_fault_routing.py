"""Routing/fault boundary: overlapping link-flap windows.

Two link-down windows that overlap on one switch are the regression
surface: healing the first link must not resurrect routes through the
second (still-down) link, and healing the second must not clobber the
candidates the first heal already restored.
"""

from __future__ import annotations

import pytest

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.topology import TopologyParams, leaf_spine
from repro.sim.units import MICROS


def _three_spine_net():
    """2 ToRs x 3 spines: tor0 uplinks are ports 2, 3, 4."""
    return leaf_spine(
        num_spines=3, num_tors=2, hosts_per_tor=2,
        params=TopologyParams(host_link_delay_ns=1 * MICROS,
                              fabric_link_delay_ns=1 * MICROS),
    )


def _controller(net):
    return FaultSchedule([]).install(net)


def _down(controller, target):
    controller._ev_link_down(FaultEvent(0, "link_down", target))


def _up(controller, target):
    controller._ev_link_up(FaultEvent(0, "link_up", target))


def test_overlapping_flaps_do_not_resurrect_dead_port():
    """A-down, B-down, A-up: the healed FIB must not contain B.

    The original bug: ``restore_routes`` reinstated the candidate tuple
    saved at A-down time — which still contains the meanwhile-died port
    B — so ECMP hashed flows into a dead egress until B healed.
    """
    net = _three_spine_net()
    controller = _controller(net)
    tor0 = net.device("tor0")
    remote = 2  # first host on tor1
    assert tor0.fib.candidates(remote) == (2, 3, 4)

    _down(controller, "tor0:2")   # A down
    assert tor0.fib.candidates(remote) == (3, 4)
    _down(controller, "tor0:3")   # B down, overlapping A's window
    assert tor0.fib.candidates(remote) == (4,)

    _up(controller, "tor0:2")     # A heals while B is still down
    assert tor0.fib.candidates(remote) == (2, 4), (
        "healing A resurrected still-down port 3"
    )

    _up(controller, "tor0:3")     # B heals last
    assert tor0.fib.candidates(remote) == (2, 3, 4)


def test_reverse_order_heal_restores_all_candidates():
    """A-down, B-down, B-up, A-up must end with the pristine FIB."""
    net = _three_spine_net()
    controller = _controller(net)
    tor0 = net.device("tor0")
    remote = 3

    _down(controller, "tor0:2")
    _down(controller, "tor0:3")
    _up(controller, "tor0:3")
    assert tor0.fib.candidates(remote) == (3, 4)
    _up(controller, "tor0:2")
    assert tor0.fib.candidates(remote) == (2, 3, 4)


def test_total_outage_heal_does_not_clobber_earlier_heal():
    """(A,B) both down, A-up, B-up: the last heal must not narrow the
    candidate set back to the tuple saved mid-outage."""
    net = leaf_spine(
        num_spines=2, num_tors=2, hosts_per_tor=2,
        params=TopologyParams(host_link_delay_ns=1 * MICROS,
                              fabric_link_delay_ns=1 * MICROS),
    )
    controller = _controller(net)
    tor0 = net.device("tor0")
    remote = 2
    assert tor0.fib.candidates(remote) == (2, 3)

    _down(controller, "tor0:2")
    _down(controller, "tor0:3")   # total uplink outage: remote unroutable
    bh = controller.blackholes["tor0"]
    assert remote in bh.unroutable

    _up(controller, "tor0:2")     # one path back: remote routable again
    assert tor0.fib.candidates(remote) == (2,)
    bh = controller.blackholes.get("tor0")
    if bh is not None:
        assert remote not in bh.unroutable, (
            "destination stayed blackholed although a live path exists"
        )

    _up(controller, "tor0:3")
    assert tor0.fib.candidates(remote) == (2, 3)


def test_switch_down_overlapping_link_flap():
    """switch_down on a spine overlapping a link flap on another spine
    heals back to the pristine FIB on every ToR."""
    net = _three_spine_net()
    controller = _controller(net)
    tor0 = net.device("tor0")
    remote = 2

    _down(controller, "tor0:2")
    controller._ev_switch_down(FaultEvent(0, "switch_down", "spine1"))
    assert tor0.fib.candidates(remote) == (4,)
    controller._ev_switch_up(FaultEvent(0, "switch_up", "spine1"))
    assert tor0.fib.candidates(remote) == (3, 4)
    _up(controller, "tor0:2")
    assert tor0.fib.candidates(remote) == (2, 3, 4)


@pytest.mark.parametrize("chaos_seed", [11, 23, 47])
def test_random_overlapping_flaps_never_enqueue_on_down_port(chaos_seed):
    """Property test: under arbitrary overlapping flap windows, no packet
    is ever enqueued on a down egress port (checked by the auditor's
    dead-egress invariant; conftest arms TLT_AUDIT=1 for every test),
    and the FIB converges back to pristine once every window closes.
    """
    import random

    from repro.experiments.scale import Scale
    from repro.experiments.scenarios import ScenarioConfig, run_scenario

    # TINY has a single spine (no route overlap possible); use a small
    # two-spine fabric so tor0's uplinks (ports 2, 3) share routes.
    scale = Scale("flap", num_spines=2, num_tors=2, hosts_per_tor=2,
                  bg_flows=12, incast_events=2, incast_flows_per_sender=2)
    rng = random.Random(chaos_seed)
    # 2-3 overlapping flap windows on tor0's two uplinks plus one
    # spine-side port, inside the first 2 ms of the run.
    targets = ["tor0:2", "tor0:3", "spine0:0"]
    events = []
    for target in rng.sample(targets, rng.randrange(2, 4)):
        start = rng.randrange(0, 1_000_000)
        duration = rng.randrange(200_000, 1_500_000)
        events.append({"time_ns": start, "kind": "link_down", "target": target})
        events.append({"time_ns": start + duration, "kind": "link_up", "target": target})

    config = ScenarioConfig(
        transport="dctcp", tlt=True, scale=scale, seed=chaos_seed,
        faults={"events": events}, audit=True,
    )
    result = run_scenario(config)

    # Every window closed: each switch's FIB must be pristine again.
    for switch in result.net.switches:
        fib = switch.fib
        assert not fib._down_ports, (switch.name, fib._down_ports)
        assert not fib._pristine, (switch.name, fib._pristine)
