"""Protocol tests for window-based TLT (§5.1, Algorithm 1, Fig 3)."""

from repro.core.config import ClockingPolicy, TltConfig
from repro.net.packet import Color, PacketKind, TltMark
from repro.sim.units import MILLIS
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import DropFilter, PacketTap, run_flow, small_star


class Tap:
    """Record every packet traversing the switch."""

    def __init__(self, switch):
        self.packets = []
        PacketTap(switch, lambda packet: self.packets.append((switch.engine.now, packet)))

    def data(self):
        return [p for _, p in self.packets if p.kind == PacketKind.DATA]

    def acks(self):
        return [p for _, p in self.packets if p.kind == PacketKind.ACK]


def test_last_packet_of_initial_window_marked_important():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=14_600, tlt=TltConfig())  # 10 segments = IW
    first_burst = tap.data()[:10]
    marks = [p.mark for p in first_burst]
    assert marks[-1] == TltMark.IMPORTANT_DATA
    assert all(m == TltMark.NONE for m in marks[:-1])


def test_short_flow_tail_packet_marked():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=3_000, tlt=TltConfig())  # 3 segments
    data = tap.data()
    assert data[len(data) - 1].mark == TltMark.IMPORTANT_DATA or (
        data[2].mark == TltMark.IMPORTANT_DATA
    )


def test_unimportant_data_is_red_important_is_green():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    for p in tap.data():
        if p.mark in (TltMark.IMPORTANT_DATA, TltMark.IMPORTANT_CLOCK_DATA):
            assert p.color == Color.GREEN
        else:
            assert p.color == Color.RED


def test_all_acks_are_green_control():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    assert tap.acks()
    assert all(p.color == Color.GREEN for p in tap.acks())


def test_important_echo_generated_for_important_data():
    net = small_star()
    tap = Tap(net.switches[0])
    run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    echo_marks = [p.mark for p in tap.acks()]
    assert TltMark.IMPORTANT_ECHO in echo_marks


def test_one_important_in_flight_invariant():
    """At any instant at most one important (data or echo) packet of a
    flow is in the network (§5.1)."""
    net = small_star()
    events = []
    switch = net.switches[0]
    def tapped(packet):
        if packet.mark in (
            TltMark.IMPORTANT_DATA,
            TltMark.IMPORTANT_ECHO,
            TltMark.IMPORTANT_CLOCK_DATA,
            TltMark.IMPORTANT_CLOCK_ECHO,
        ):
            events.append((net.engine.now, packet.mark, packet.kind))

    PacketTap(switch, tapped)
    run_flow(net, "tcp", size=300_000, tlt=TltConfig())
    # Data and echo important events must alternate: an important data
    # packet is only sent after the previous echo came back.
    kinds = [k for _, _, k in events]
    for a, b in zip(kinds, kinds[1:]):
        assert a != b, "two consecutive important packets of the same kind"


def test_tail_loss_recovered_without_timeout():
    """Fig 3(a): losing unimportant packets between two important ones
    is detected via the Important Echo, not the RTO."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 7)  # a late (but unimportant) segment
    _, _, record = run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 1 * MILLIS


def test_whole_window_loss_recovered_without_timeout():
    """Even losing every red packet of the initial window leaves the
    green important packet to clock recovery."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    for i in range(9):  # drop the 9 unimportant segments, keep the 10th
        drop.drop_seq_once(1460 * i)
    _, _, record = run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0


def test_repeated_retransmission_loss_recovered_by_clocking():
    """Fig 3(b): the retransmission is lost again; important
    ACK-clocking keeps recovery alive without the RTO."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460)  # original
    drop.drop_seq_once(1460)  # first retransmission too
    _, _, record = run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 2 * MILLIS


def test_clock_echo_below_una_suppressed():
    """Important Clock Echoes that do not advance snd_una must not feed
    duplicate ACKs to congestion control (Appendix A)."""
    net = small_star()
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=14_600)
    config = TransportConfig(base_rtt_ns=4_000)
    sender, receiver = create_flow("tcp", net, spec, config, TltConfig())
    suppressed = []
    original = sender.tlt.on_ack

    def spy(packet):
        keep = original(packet)
        if not keep:
            suppressed.append(packet)
        return keep

    sender.tlt.on_ack = spy
    drop = DropFilter(net.switches[0])
    for i in range(10):
        drop.drop_seq_once(1460 * i)
    # With everything dropped the first clocking rounds produce
    # duplicate clock echoes in some interleavings; the flow must
    # still complete and suppressed echoes must not be counted as
    # dupacks (no spurious recovery beyond the real loss).
    net.engine.run()
    assert net.stats.flows[spec.flow_id].completed
    for packet in suppressed:
        assert packet.mark == TltMark.IMPORTANT_CLOCK_ECHO


def test_adaptive_clocking_uses_one_byte_without_loss():
    """When no loss is indicated, clocking sends 1 byte (§5.1)."""
    net = small_star()
    tap = Tap(net.switches[0])
    # max_cwnd of 2 segments forces window-blocked clocking.
    config = TransportConfig(base_rtt_ns=4_000, max_cwnd_bytes=2 * 1460,
                             init_cwnd_segments=2)
    run_flow(net, "tcp", size=30_000, tlt=TltConfig(), config=config)
    clock_pkts = [p for p in tap.data() if p.mark == TltMark.IMPORTANT_CLOCK_DATA]
    assert clock_pkts
    assert any(p.payload == 1 for p in clock_pkts)


def test_always_mtu_policy_sends_full_segments():
    net = small_star()
    tap = Tap(net.switches[0])
    config = TransportConfig(base_rtt_ns=4_000, max_cwnd_bytes=2 * 1460,
                             init_cwnd_segments=2)
    run_flow(
        net, "tcp", size=30_000,
        tlt=TltConfig(clocking=ClockingPolicy.ALWAYS_MTU), config=config,
    )
    clock_pkts = [p for p in tap.data() if p.mark == TltMark.IMPORTANT_CLOCK_DATA]
    assert clock_pkts
    assert all(p.payload > 1 for p in clock_pkts)


def test_always_1b_policy_never_sends_full_segments():
    net = small_star()
    tap = Tap(net.switches[0])
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 5)
    config = TransportConfig(base_rtt_ns=4_000, max_cwnd_bytes=4 * 1460,
                             init_cwnd_segments=4)
    _, _, record = run_flow(
        net, "tcp", size=30_000,
        tlt=TltConfig(clocking=ClockingPolicy.ALWAYS_1B), config=config,
    )
    clock_pkts = [p for p in tap.data() if p.mark == TltMark.IMPORTANT_CLOCK_DATA]
    assert record.completed
    assert clock_pkts
    assert all(p.payload == 1 for p in clock_pkts)


def test_clocking_bytes_accounted():
    net = small_star()
    config = TransportConfig(base_rtt_ns=4_000, max_cwnd_bytes=2 * 1460,
                             init_cwnd_segments=2)
    run_flow(net, "tcp", size=30_000, tlt=TltConfig(), config=config)
    assert net.stats.clocking_packets > 0
    assert net.stats.clocking_bytes > 0


def test_important_fraction_small_for_long_flow():
    """Only ~1 packet per RTT is important: a long flow's important
    byte fraction must be small (§5 goal: mark as few as possible)."""
    net = small_star()
    run_flow(net, "tcp", size=2_000_000, tlt=TltConfig())
    assert 0 < net.stats.important_fraction_bytes() < 0.2


def test_dctcp_with_tlt_no_timeout_under_tail_loss():
    # Segment 9 is the Important Data tail; drop segment 8 (red).
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 8)
    _, _, record = run_flow(net, "dctcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0


def test_important_packet_loss_falls_back_to_rto():
    """TLT does not handle green losses (non-congestion events are out
    of scope, §5): dropping the Important Data itself costs an RTO."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 9)  # the marked tail of the initial window
    _, _, record = run_flow(net, "dctcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts >= 1
