"""Tests for the receive-path interceptor chain (repro.net.node).

The chain replaced the old ``device.receive = wrapper`` monkey-patch
idiom, whose wrappers were silently disconnected whenever the switch
rebound its data path (``set_auditor``). These tests pin the contract:
ordering, add/remove semantics, the zero-cost empty chain, survival
across audit toggling, and delivery-time dispatch for in-flight packets.
"""

import pytest

from repro.audit import Auditor
from repro.faults import FaultInjector
from repro.net.node import Interceptor
from repro.net.packet import PacketKind
from tests.util import PacketTap, run_flow, small_star


class Recorder(Interceptor):
    """Tags every packet it sees with its label, in chain order."""

    def __init__(self, label, log):
        self.label = label
        self.log = log

    def on_packet(self, packet, in_port, forward):
        self.log.append(self.label)
        forward(packet, in_port)


class Sink(Interceptor):
    """Consumes everything (without recycling: packets stay inspectable)."""

    def __init__(self):
        self.eaten = 0

    def on_packet(self, packet, in_port, forward):
        self.eaten += 1


# -- chain mechanics ----------------------------------------------------------


def test_empty_chain_is_the_base_implementation():
    """With no interceptors, receive IS the base method — the
    uninstrumented hot path pays zero indirection."""
    net = small_star()
    switch = net.switches[0]
    assert switch.receive == switch._receive_fast
    tap = PacketTap(switch, lambda p: None)
    assert switch.receive != switch._receive_fast
    switch.remove_interceptor(tap)
    assert switch.receive == switch._receive_fast


def test_interceptors_run_in_install_order():
    net = small_star()
    switch = net.switches[0]
    log = []
    switch.add_interceptor(Recorder("a", log))
    switch.add_interceptor(Recorder("b", log))
    run_flow(net, "tcp", size=1_000)
    assert log[:2] == ["a", "b"]


def test_index_zero_installs_closest_to_the_wire():
    net = small_star()
    switch = net.switches[0]
    log = []
    switch.add_interceptor(Recorder("late", log))
    switch.add_interceptor(Recorder("wire", log), index=0)
    run_flow(net, "tcp", size=1_000)
    assert log[:2] == ["wire", "late"]


def test_duplicate_install_rejected():
    net = small_star()
    switch = net.switches[0]
    tap = Recorder("a", [])
    switch.add_interceptor(tap)
    with pytest.raises(ValueError):
        switch.add_interceptor(tap)


def test_remove_unknown_interceptor_raises():
    net = small_star()
    with pytest.raises(ValueError):
        net.switches[0].remove_interceptor(Recorder("x", []))


def test_consuming_interceptor_stops_the_chain():
    net = small_star()
    switch = net.switches[0]
    sink = Sink()
    downstream = []
    switch.add_interceptor(sink)
    switch.add_interceptor(Recorder("after", downstream))
    spec_run = run_flow(net, "tcp", size=1_000, until=1_000_000)
    assert sink.eaten > 0
    assert downstream == []  # nothing got past the sink
    assert not spec_run[2].completed


def test_interceptors_on_hosts():
    net = small_star()
    seen = []
    PacketTap(net.hosts[1], seen.append)
    _, _, record = run_flow(net, "tcp", size=5_000)
    assert record.completed
    assert any(p.kind == PacketKind.DATA for p in seen)


# -- survival across audit toggling (the bug this PR fixes) -------------------


def test_audit_toggle_preserves_interceptors():
    """Attaching/detaching the auditor rebinds the switch data path;
    interceptors must survive both directions of the swap."""
    net = small_star()
    switch = net.switches[0]
    log = []
    recorder = Recorder("tap", log)
    switch.add_interceptor(recorder)

    auditor = Auditor(net).install()
    assert switch._base_receive == switch._receive_audited
    assert switch.interceptors == (recorder,)
    run_flow(net, "tcp", size=2_000)
    seen_audited = len(log)
    assert seen_audited > 0

    auditor.detach()
    assert switch._base_receive == switch._receive_fast
    from repro.net.packet import Packet

    net.hosts[0].send(Packet(net.new_flow_id(), 0, 1, PacketKind.DATA, seq=0,
                             payload=1000))
    net.engine.run(until=net.engine.now + 1_000_000)
    assert len(log) == seen_audited + 1  # still connected on the fast path


def test_injector_survives_audit_toggle():
    net = small_star()
    switch = net.switches[0]
    injector = FaultInjector(switch, 1.0)
    auditor = Auditor(net).install()
    auditor.detach()
    run_flow(net, "tcp", size=1_460, until=1_000_000)
    assert injector.corrupted > 0


def test_in_flight_packet_hits_interceptor_installed_after_send():
    """Links resolve the receive path at delivery time: an interceptor
    installed while a packet is on the wire still sees it land."""
    net = small_star()
    switch = net.switches[0]
    host = net.hosts[0]
    from repro.net.packet import Packet

    packet = Packet(net.new_flow_id(), 0, 1, PacketKind.DATA, seq=0, payload=1000)
    host.send(packet)  # serializes + schedules delivery
    sink = Sink()
    switch.add_interceptor(sink)  # installed AFTER the send
    net.engine.run(until=1_000_000)
    assert sink.eaten == 1
