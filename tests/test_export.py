"""Direct tests for repro.experiments.export (CSV/JSON writers)."""

import csv
import json
import os

from repro.experiments.export import rows_to_csv, write_json


def _read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_rows_to_csv_union_columns_first_seen_order(tmp_path):
    """With no explicit columns, the header is the union of row keys in
    first-seen order — later rows append their new keys at the end."""
    rows = [
        {"b": 1, "a": 2},
        {"a": 3, "c": 4},
    ]
    path = rows_to_csv(rows, str(tmp_path / "out.csv"))
    parsed = _read_csv(path)
    assert parsed[0] == ["b", "a", "c"]
    assert parsed[1] == ["1", "2", ""]  # missing keys render empty
    assert parsed[2] == ["", "3", "4"]


def test_rows_to_csv_explicit_columns_select_and_order(tmp_path):
    """Explicit columns pick order and drop extras (extrasaction=ignore)."""
    rows = [{"x": 1, "y": 2, "z": 3}]
    path = rows_to_csv(rows, str(tmp_path / "out.csv"), columns=("z", "x"))
    parsed = _read_csv(path)
    assert parsed == [["z", "x"], ["3", "1"]]


def test_rows_to_csv_escapes_delimiters_and_quotes(tmp_path):
    """Values with commas, quotes and newlines survive a round-trip."""
    nasty = 'a,"b"\nc'
    path = rows_to_csv([{"k": nasty, "n": 7}], str(tmp_path / "out.csv"))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["k"] == nasty
    assert rows[0]["n"] == "7"


def test_rows_to_csv_creates_directories_and_returns_path(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.csv"
    path = rows_to_csv([{"a": 1}], str(target))
    assert path == str(target)
    assert os.path.exists(path)


def test_rows_to_csv_empty_rows_writes_empty_header(tmp_path):
    path = rows_to_csv([], str(tmp_path / "empty.csv"))
    assert _read_csv(path) == [[]]


def test_write_json_round_trip_sorted_and_newline_terminated(tmp_path):
    payload = {"zeta": [1, 2, {"nested": True}], "alpha": None, "mid": 1.5}
    path = write_json(payload, str(tmp_path / "sub" / "doc.json"))
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    assert json.loads(text) == payload
    assert text.endswith("\n")
    # sort_keys=True: stable output for diffs/caching.
    assert text.index('"alpha"') < text.index('"mid"') < text.index('"zeta"')
