"""Tests for the receiver buffer / SACK block generation."""

import random

from hypothesis import given, strategies as st

from repro.transport.sack import ReceiverBuffer


def test_in_order_arrival_advances_cumulative():
    buf = ReceiverBuffer()
    assert buf.on_data(0, 100) == 100
    assert buf.on_data(100, 100) == 100
    assert buf.rcv_nxt == 200
    assert buf.sack_blocks() == ()


def test_out_of_order_creates_island():
    buf = ReceiverBuffer()
    buf.on_data(0, 100)
    buf.on_data(200, 100)
    assert buf.rcv_nxt == 100
    assert buf.sack_blocks() == ((200, 300),)


def test_hole_fill_merges_island():
    buf = ReceiverBuffer()
    buf.on_data(0, 100)
    buf.on_data(200, 100)
    assert buf.on_data(100, 100) == 200  # fills hole + merges island
    assert buf.rcv_nxt == 300
    assert buf.sack_blocks() == ()


def test_duplicate_data_advances_nothing():
    buf = ReceiverBuffer()
    buf.on_data(0, 100)
    assert buf.on_data(0, 100) == 0
    assert buf.on_data(50, 20) == 0


def test_partial_overlap_counts_new_bytes_only():
    buf = ReceiverBuffer()
    buf.on_data(0, 100)
    assert buf.on_data(50, 100) == 50
    assert buf.rcv_nxt == 150


def test_most_recent_island_reported_first():
    buf = ReceiverBuffer()
    buf.on_data(0, 10)
    buf.on_data(100, 10)
    buf.on_data(300, 10)
    buf.on_data(200, 10)  # most recent
    blocks = buf.sack_blocks()
    assert blocks[0] == (200, 210)
    assert set(blocks) == {(100, 110), (200, 210), (300, 310)}


def test_at_most_three_blocks():
    buf = ReceiverBuffer()
    for start in (100, 300, 500, 700, 900):
        buf.on_data(start, 10)
    assert len(buf.sack_blocks()) == 3
    assert len(buf.sack_blocks(max_blocks=2)) == 2


def test_adjacent_islands_merge():
    buf = ReceiverBuffer()
    buf.on_data(100, 50)
    buf.on_data(150, 50)
    assert buf.sack_blocks() == ((100, 200),)


def test_one_byte_fill():
    """TLT's 1-byte important ACK-clocking payload must advance the
    cumulative point by exactly one byte when it lands on the hole."""
    buf = ReceiverBuffer()
    buf.on_data(0, 100)
    buf.on_data(101, 100)
    # The 1 byte fills the hole and merges the 100-byte island.
    assert buf.on_data(100, 1) == 101
    assert buf.rcv_nxt == 201


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 10)),
        min_size=1,
        max_size=60,
    )
)
def test_property_matches_reference_set_model(chunks):
    """The interval implementation agrees with a naive byte-set model."""
    buf = ReceiverBuffer()
    model = set()
    for seq, length in chunks:
        buf.on_data(seq, length)
        model.update(range(seq, seq + length))
        # Cumulative point: first missing byte.
        expected_nxt = 0
        while expected_nxt in model:
            expected_nxt += 1
        assert buf.rcv_nxt == expected_nxt
        assert buf.received_total() == len(model | set(range(expected_nxt)))
        # Islands must be disjoint, sorted, above rcv_nxt, and match.
        covered = set()
        prev_hi = buf.rcv_nxt
        for lo, hi in sorted(buf.intervals):
            assert lo > prev_hi  # disjoint with a real gap
            assert lo < hi
            covered.update(range(lo, hi))
            prev_hi = hi
        assert covered == {b for b in model if b >= buf.rcv_nxt}


@given(st.lists(st.integers(0, 30), min_size=1, max_size=40), st.integers(0, 1000))
def test_property_random_permutation_completes(order, seed):
    """Any arrival order of all segments yields a complete stream."""
    rng = random.Random(seed)
    segs = sorted(set(order))
    full = list(range(max(segs) + 1))
    rng.shuffle(full)
    buf = ReceiverBuffer()
    for seg in full:
        buf.on_data(seg * 10, 10)
    assert buf.rcv_nxt == (max(full) + 1) * 10
    assert buf.sack_blocks() == ()
