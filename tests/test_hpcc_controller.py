"""Unit tests for the HPCC window controller math."""

from repro.net.packet import IntRecord, Packet, PacketKind
from repro.transport.base import TransportConfig
from repro.transport.hpcc import HpccController


def make_controller(**kw):
    kw.setdefault("base_rtt_ns", 8_000)
    kw.setdefault("link_rate_bps", 40_000_000_000)
    return HpccController(TransportConfig(**kw))


def ack_with_int(ack, qlen, tx_bytes, ts, rate=40_000_000_000):
    pkt = Packet(1, 1, 0, PacketKind.ACK, ack=ack)
    pkt.int_echo = [IntRecord(qlen, tx_bytes, ts, rate)]
    return pkt


def test_initial_window_is_bdp():
    ctl = make_controller()
    assert ctl.window == 40_000  # 8 us x 40 Gbps


def test_no_int_no_change():
    ctl = make_controller()
    pkt = Packet(1, 1, 0, PacketKind.ACK, ack=1)
    ctl.on_ack(pkt, snd_nxt=10)
    assert ctl.window == 40_000


def test_deep_queue_shrinks_window():
    ctl = make_controller()
    # Queue of 10x BDP, zero measured tx delta in the first sample.
    ctl.on_ack(ack_with_int(1, qlen=400_000, tx_bytes=0, ts=0), snd_nxt=10)
    ctl.on_ack(ack_with_int(2, qlen=400_000, tx_bytes=10_000, ts=8_000), snd_nxt=10)
    assert ctl.window < 40_000


def test_idle_link_grows_reference_slowly():
    ctl = make_controller()
    # Empty queue, low utilization: additive increase takes over.
    ts = 0
    for ack in range(1, 8):
        ctl.on_ack(ack_with_int(ack, qlen=0, tx_bytes=ack * 1_000, ts=ts), snd_nxt=ack)
        ts += 8_000
    assert ctl.window >= 40_000 - 1  # never collapses on an idle link


def test_window_never_below_wai():
    ctl = make_controller()
    ts = 0
    for ack in range(1, 30):
        ctl.on_ack(
            ack_with_int(ack, qlen=4_000_000, tx_bytes=ack * 40_000, ts=ts),
            snd_nxt=ack,
        )
        ts += 8_000
    assert ctl.window >= ctl.config.hpcc_wai_bytes


def test_window_capped_at_bdp():
    ctl = make_controller()
    ts = 0
    for ack in range(1, 30):
        ctl.on_ack(ack_with_int(ack, qlen=0, tx_bytes=0, ts=ts), snd_nxt=ack)
        ts += 8_000
    assert ctl.window <= ctl.max_window


def test_reference_window_updates_once_per_rtt():
    ctl = make_controller()
    ctl.on_ack(ack_with_int(1, qlen=0, tx_bytes=0, ts=0), snd_nxt=100)
    wc_after_first = ctl.reference_window
    # Subsequent acks below snd_nxt=100 must not move the reference.
    ctl.on_ack(ack_with_int(2, qlen=0, tx_bytes=1_000, ts=8_000), snd_nxt=100)
    ctl.on_ack(ack_with_int(50, qlen=0, tx_bytes=2_000, ts=16_000), snd_nxt=100)
    assert ctl.reference_window == wc_after_first
    # An ack beyond the recorded snd_nxt starts a new update round.
    ctl.on_ack(ack_with_int(101, qlen=0, tx_bytes=3_000, ts=24_000), snd_nxt=200)
    assert ctl.reference_window != wc_after_first or ctl.inc_stage > 0
