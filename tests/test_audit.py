"""Tests for the runtime invariant auditor (repro.audit).

Each corruption test mutates live simulation state in a way a checker
must catch, then asserts :class:`AuditError` is raised and carries a
structured trace. The clean-run tests assert the auditor rides along a
real scenario without violations and without keeping the engine alive.
"""

import json

import pytest

from repro.audit import (
    AuditConfig,
    AuditError,
    Auditor,
    EventRing,
    check_clock,
    check_flow_ledger,
)
from repro.experiments.scale import Scale
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.net.packet import Color, Packet, PacketKind
from repro.switchsim.pfc import PfcConfig
from tests.util import small_star

FAST = Scale("fast", num_spines=1, num_tors=2, hosts_per_tor=2,
             bg_flows=8, incast_events=1, incast_flows_per_sender=2)


def _audited(net, **config_kw):
    return Auditor(net, AuditConfig(**config_kw)).install()


def _data_packet(color=Color.RED, flow_id=7, seq=0, payload=1000):
    packet = Packet(flow_id, 0, 1, PacketKind.DATA, seq=seq, payload=payload)
    packet.color = color
    return packet


# -- EventRing ----------------------------------------------------------------


def test_ring_caps_and_counts():
    ring = EventRing(4)
    for i in range(10):
        ring.record("enqueue", time_ns=i, device="tor0", flow=i)
    assert len(ring) == 4
    assert ring.recorded == 10
    # Only the newest four survive.
    assert [e["time_ns"] for e in ring.to_list()] == [6, 7, 8, 9]


def test_ring_to_list_omits_empty_fields():
    ring = EventRing(8)
    ring.record("audit_tick", time_ns=5)
    ring.record("drop", time_ns=6, device="tor0", flow=1, seq=2, size=3,
                color="GREEN", port=0, info="pool")
    entries = ring.to_list()
    assert entries[0] == {"time_ns": 5, "kind": "audit_tick"}
    assert entries[1]["info"] == "pool"
    assert entries[1]["color"] == "GREEN"
    # Valid JSON end to end.
    assert json.loads(ring.to_json())[1]["device"] == "tor0"


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventRing(0)


def test_audit_error_report_roundtrip(tmp_path):
    error = AuditError(["v1", "v2", "v3", "v4"],
                       [{"time_ns": 1, "kind": "drop"}], time_ns=42)
    assert "v1" in str(error)
    assert "+1 more" in str(error)
    assert isinstance(error, AssertionError)
    path = tmp_path / "audit.json"
    error.dump(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == error.to_dict()
    assert loaded["time_ns"] == 42
    assert loaded["violations"] == ["v1", "v2", "v3", "v4"]
    assert loaded["trace"][0]["kind"] == "drop"


# -- corruption detection -----------------------------------------------------


def test_detects_buffer_conservation_violation():
    net = small_star()
    auditor = _audited(net)
    net.switches[0].buffer.used += 100  # no packet backs these bytes
    with pytest.raises(AuditError) as excinfo:
        auditor.check_now()
    assert "SharedBuffer.used" in str(excinfo.value)


def test_detects_color_accounting_violation():
    net = small_star()
    auditor = _audited(net)
    queue = net.switches[0].queues[0]
    queue.red_bytes = 10  # queue is empty — phantom red bytes
    with pytest.raises(AuditError) as excinfo:
        auditor.check_now()
    assert "red_bytes" in str(excinfo.value)


def test_detects_pfc_counter_violation():
    net = small_star(pfc=PfcConfig(enabled=True))
    switch = net.switches[0]
    assert switch.pfc is not None
    auditor = _audited(net)
    switch.pfc.ingress_bytes[0] = -60
    with pytest.raises(AuditError) as excinfo:
        auditor.check_now()
    assert "negative" in str(excinfo.value)


def test_detects_flow_ledger_violation():
    net = small_star()
    auditor = _audited(net)
    record = net.stats.new_flow(1, 0, 1, size=1000, start_ns=0, group="fg")
    record.tx_bytes = 500
    record.retx_bytes = 600  # retransmitted more than ever sent
    with pytest.raises(AuditError) as excinfo:
        auditor.check_now()
    assert "retx_bytes" in str(excinfo.value)


def test_detects_timeout_sum_mismatch():
    net = small_star()
    record = net.stats.new_flow(1, 0, 1, size=1000, start_ns=0, group="fg")
    record.timeouts = 3  # run-wide counter was never incremented
    assert any("timeouts" in v for v in check_flow_ledger(net))


def test_detects_clock_regression():
    net = small_star()
    assert check_clock(net, last_now=0) == []
    violations = check_clock(net, last_now=net.engine.now + 5)
    assert any("clock moved backwards" in v for v in violations)


def test_detects_green_color_drop():
    net = small_star()
    auditor = _audited(net)
    switch = net.switches[0]
    queue = switch.queues[0]
    with pytest.raises(AuditError) as excinfo:
        auditor.on_drop(switch, _data_packet(Color.GREEN), queue, "color")
    error = excinfo.value
    assert "green packet" in str(error)
    assert error.trace[-1]["kind"] == "drop"
    assert error.trace[-1]["color"] == "GREEN"


def test_red_color_drop_is_faithful():
    # Red occupancy already past K: dropping more red is exactly §4.
    net = small_star(color_threshold_bytes=500)
    auditor = _audited(net)
    switch = net.switches[0]
    auditor.on_drop(switch, _data_packet(Color.RED), switch.queues[0], "color")
    assert auditor.ring.to_list()[-1]["info"] == "color"


def test_detects_unjustified_red_color_drop():
    # A "color" drop whose red occupancy is still within K is a lie —
    # and so is any color drop on a switch with coloring disabled.
    net = small_star(color_threshold_bytes=1_000_000)
    auditor = _audited(net)
    switch = net.switches[0]
    with pytest.raises(AuditError) as excinfo:
        auditor.on_drop(switch, _data_packet(Color.RED), switch.queues[0], "color")
    assert "unjustified color drop" in str(excinfo.value)


def test_detects_phantom_pool_drop():
    # A "pool exhausted" drop while the pool still has room is a lie.
    net = small_star()
    auditor = _audited(net)
    switch = net.switches[0]
    with pytest.raises(AuditError) as excinfo:
        auditor.on_drop(switch, _data_packet(Color.GREEN), switch.queues[0], "pool")
    assert "bytes free" in str(excinfo.value)


def test_detects_dynamic_drop_on_lossless_switch():
    net = small_star(pfc=PfcConfig(enabled=True))
    auditor = _audited(net)
    switch = net.switches[0]
    with pytest.raises(AuditError) as excinfo:
        auditor.on_drop(switch, _data_packet(Color.RED), switch.queues[0],
                        "dynamic", port_occupancy=0)
    assert "lossless" in str(excinfo.value)


def test_detects_unjustified_dynamic_drop():
    net = small_star()
    auditor = _audited(net)
    switch = net.switches[0]
    # Occupancy far below the dynamic threshold on an empty pool.
    with pytest.raises(AuditError) as excinfo:
        auditor.on_drop(switch, _data_packet(Color.RED), switch.queues[0],
                        "dynamic", port_occupancy=0)
    assert "unjustified" in str(excinfo.value)


def test_audit_error_dump_path(tmp_path):
    path = tmp_path / "violation.json"
    net = small_star()
    auditor = _audited(net, dump_path=str(path))
    net.switches[0].buffer.used += 1
    with pytest.raises(AuditError):
        auditor.check_now()
    report = json.loads(path.read_text())
    assert report["violations"]


# -- attachment lifecycle -----------------------------------------------------


def test_install_is_idempotent_and_detach_unhooks():
    net = small_star()
    auditor = Auditor(net)
    assert auditor.install() is auditor
    auditor.install()
    switch = net.switches[0]
    assert switch.audit is auditor
    assert net.stats.audit_ring is auditor.ring
    auditor.detach()
    assert switch.audit is None
    assert net.stats.audit_ring is None
    # Detached: no ticks left to keep the engine busy.
    assert net.engine.peek_time() is None


def test_tick_does_not_keep_engine_alive():
    net = small_star()
    auditor = _audited(net, interval_ns=100)
    fired = []
    net.engine.schedule(1000, fired.append, 1)
    net.engine.run()
    assert fired == [1]
    # The engine drained: the audit tick stopped rescheduling itself.
    assert net.engine.peek_time() is None
    assert auditor.checks_run >= 2


# -- scenario integration -----------------------------------------------------


def test_clean_scenario_passes_audit():
    result = run_scenario(ScenarioConfig(transport="dctcp", scale=FAST, audit=True))
    assert result.auditor is not None
    assert result.auditor.checks_run >= 2
    assert result.auditor.ring.recorded > 0
    assert result.stats.incomplete_flows() == 0


def test_scenario_audit_disabled_explicitly():
    result = run_scenario(ScenarioConfig(
        transport="dctcp", scale=FAST, audit=False))
    assert result.auditor is None


def test_audit_env_default(monkeypatch):
    config = ScenarioConfig(transport="dctcp", scale=FAST)
    monkeypatch.setenv("TLT_AUDIT", "1")
    assert config.audit_enabled
    monkeypatch.setenv("TLT_AUDIT", "0")
    assert not config.audit_enabled
    monkeypatch.delenv("TLT_AUDIT")
    assert not config.audit_enabled
    # Explicit config beats the environment.
    monkeypatch.setenv("TLT_AUDIT", "1")
    assert not ScenarioConfig(audit=False).audit_enabled
    monkeypatch.delenv("TLT_AUDIT")
    assert ScenarioConfig(audit=True).audit_enabled


def test_fig08_micro_run_passes_audit(monkeypatch):
    # The threshold sweep exercises color-aware dropping, where the
    # green-drop faithfulness check has the most to say.
    monkeypatch.setenv("TLT_AUDIT", "1")
    from repro.experiments import fig08_threshold_sweep as exp

    rows = exp.run(FAST, thresholds=(400_000,))
    assert rows


def test_audited_scenario_with_pfc_and_tlt():
    # PFC + TLT exercises the lossless checkers and color accounting.
    result = run_scenario(ScenarioConfig(
        transport="dcqcn", tlt=True, pfc=True, scale=FAST, audit=True))
    assert result.auditor is not None
    assert result.auditor.checks_run >= 2
    assert result.stats.incomplete_flows() == 0


def test_audited_scenario_with_corruption_faults():
    """Fault drops are not congestion drops: a corrupting run under
    audit must leave every checker silent (the §4 green-drop check only
    fires on congestion loss) while fault counters fill up."""
    spec = {"events": [
        {"time_ns": 0, "kind": "corruption_on", "target": "tor0",
         "params": {"model": "bernoulli", "rate": 0.01}},
        {"time_ns": 0, "kind": "corruption_on", "target": "tor1",
         "params": {"model": "gilbert_elliott", "p_enter": 0.005,
                    "p_exit": 0.2, "loss_bad": 1.0}},
    ]}
    result = run_scenario(ScenarioConfig(
        transport="dctcp", tlt=True, scale=FAST, audit=True, faults=spec))
    assert result.auditor is not None
    assert result.auditor.checks_run >= 2
    stats = result.stats
    assert stats.drops_fault > 0
    assert stats.drops_green == 0
    # Fault drops land in the forensic ring, tagged as such.
    kinds = {e["kind"] for e in result.auditor.ring.to_list()}
    assert result.auditor.ring.recorded > 0
    fault_entries = [e for e in result.auditor.ring.to_list()
                     if e["kind"] == "fault_drop"]
    if fault_entries:  # ring is bounded; entries may have rotated out
        assert fault_entries[0]["info"] in ("corruption", "blackhole")
    assert "drop" not in kinds or stats.drops_red > 0
