"""Tests for the stats collector and percentile helpers."""

from repro.stats.collector import NetStats
from repro.stats.percentile import percentile, summarize


def test_percentile_basic():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50.5
    assert percentile(samples, 99) > 98
    assert percentile([], 99) == 0.0


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4
    assert s["mean"] == 2.5
    assert s["max"] == 4.0
    assert summarize([])["count"] == 0


def test_flow_lifecycle():
    stats = NetStats()
    rec = stats.new_flow(1, 0, 1, 1000, start_ns=100, group="fg")
    assert not rec.completed
    assert rec.fct_ns is None
    rec.end_rx_ns = 600
    assert rec.completed
    assert rec.fct_ns == 500


def test_fct_lists_by_group():
    stats = NetStats()
    a = stats.new_flow(1, 0, 1, 10, 0, "fg")
    b = stats.new_flow(2, 0, 1, 10, 0, "bg")
    a.end_rx_ns = 100
    b.end_rx_ns = 300
    assert stats.fct_list("fg") == [100]
    assert stats.fct_list("bg") == [300]
    assert stats.fct_summary("fg")["count"] == 1


def test_timeouts_per_1k():
    stats = NetStats()
    for i in range(10):
        rec = stats.new_flow(i, 0, 1, 10, 0, "fg")
        rec.end_rx_ns = 1
    stats.flows[0].timeouts = 2
    assert stats.timeouts_per_1k_flows() == 200.0


def test_timeouts_per_1k_empty():
    assert NetStats().timeouts_per_1k_flows() == 0.0


def test_important_loss_rate():
    stats = NetStats()
    assert stats.important_loss_rate() == 0.0
    stats.green_data_packets = 1000
    stats.drops_green = 1
    assert stats.important_loss_rate() == 0.001


def test_important_fraction():
    stats = NetStats()
    assert stats.important_fraction_bytes() == 0.0
    stats.green_data_bytes = 100
    stats.red_data_bytes = 900
    assert stats.important_fraction_bytes() == 0.1


def test_incomplete_flows():
    stats = NetStats()
    stats.new_flow(1, 0, 1, 10, 0, "fg")
    done = stats.new_flow(2, 0, 1, 10, 0, "bg")
    done.end_rx_ns = 5
    assert stats.incomplete_flows() == 1
    assert stats.incomplete_flows("bg") == 0


def test_sample_reservoir_caps():
    from repro.stats import collector

    stats = NetStats()
    original = collector.MAX_SAMPLES
    collector.MAX_SAMPLES = 10
    try:
        for i in range(100):
            stats.add_rtt_sample(i, "fg")
            stats.add_delivery_sample(i)
    finally:
        collector.MAX_SAMPLES = original
    assert len(stats.rtt_samples_fg) == 10
    assert len(stats.delivery_samples) == 10


def test_goodput():
    stats = NetStats()
    rec = stats.new_flow(1, 0, 1, 1_000_000, 0, "bg")
    rec.end_rx_ns = 1_000_000
    # 1 MB over 1 ms => 8 Gbps.
    assert stats.goodput_bps("bg", 1_000_000) == 8e9
    assert stats.goodput_bps("bg", 0) == 0.0
