"""Tests for the stats collector and percentile helpers."""

from repro.net.packet import Color, Packet, PacketKind
from repro.stats.collector import NetStats, Reservoir
from repro.stats.percentile import percentile, summarize


def _packet(color: Color, kind: PacketKind, size: int) -> Packet:
    packet = Packet(1, 0, 1, kind, seq=0, payload=max(0, size - 48), size=size)
    packet.color = color
    return packet


def test_percentile_basic():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50.5
    assert percentile(samples, 99) > 98
    assert percentile([], 99) == 0.0


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4
    assert s["mean"] == 2.5
    assert s["max"] == 4.0
    assert summarize([])["count"] == 0


def test_flow_lifecycle():
    stats = NetStats()
    rec = stats.new_flow(1, 0, 1, 1000, start_ns=100, group="fg")
    assert not rec.completed
    assert rec.fct_ns is None
    rec.end_rx_ns = 600
    assert rec.completed
    assert rec.fct_ns == 500


def test_fct_lists_by_group():
    stats = NetStats()
    a = stats.new_flow(1, 0, 1, 10, 0, "fg")
    b = stats.new_flow(2, 0, 1, 10, 0, "bg")
    a.end_rx_ns = 100
    b.end_rx_ns = 300
    assert stats.fct_list("fg") == [100]
    assert stats.fct_list("bg") == [300]
    assert stats.fct_summary("fg")["count"] == 1


def test_timeouts_per_1k():
    stats = NetStats()
    for i in range(10):
        rec = stats.new_flow(i, 0, 1, 10, 0, "fg")
        rec.end_rx_ns = 1
    stats.flows[0].timeouts = 2
    assert stats.timeouts_per_1k_flows() == 200.0


def test_timeouts_per_1k_empty():
    assert NetStats().timeouts_per_1k_flows() == 0.0


def test_important_loss_rate():
    stats = NetStats()
    assert stats.important_loss_rate() == 0.0
    stats.green_data_packets = 1000
    stats.drops_green_data = 1
    assert stats.important_loss_rate() == 0.001


def test_important_loss_rate_excludes_control_drops():
    # A dropped green *control* packet (ACKs are forced green) must not
    # count against the green *data* send volume: the pre-fix counter
    # lumped both into the numerator while the denominator only counted
    # data packets.
    stats = NetStats()
    stats.green_data_packets = 1000
    stats.count_drop(_packet(Color.GREEN, PacketKind.ACK, size=60))
    assert stats.drops_green == 1
    assert stats.drops_green_ctrl == 1
    assert stats.drops_green_data == 0
    assert stats.important_loss_rate() == 0.0
    stats.count_drop(_packet(Color.GREEN, PacketKind.DATA, size=1460))
    assert stats.drops_green_data == 1
    assert stats.important_loss_rate() == 0.001


def test_count_drop_splits_by_color_and_kind():
    stats = NetStats()
    stats.count_drop(_packet(Color.GREEN, PacketKind.DATA, size=1460))
    stats.count_drop(_packet(Color.RED, PacketKind.DATA, size=1460))
    stats.count_drop(_packet(Color.RED, PacketKind.DATA, size=1460))
    stats.count_drop(_packet(Color.GREEN, PacketKind.NACK, size=60))
    assert stats.drops_green == 2
    assert stats.drops_red == 2
    assert stats.drops_green_data == 1
    assert stats.drops_red_data == 2
    assert stats.drops_green_ctrl == 1
    assert stats.drops_red_ctrl == 0
    assert stats.drop_bytes == 1460 * 3 + 60


def test_important_fraction():
    stats = NetStats()
    assert stats.important_fraction_bytes() == 0.0
    stats.green_data_bytes = 100
    stats.red_data_bytes = 900
    assert stats.important_fraction_bytes() == 0.1


def test_incomplete_flows():
    stats = NetStats()
    stats.new_flow(1, 0, 1, 10, 0, "fg")
    done = stats.new_flow(2, 0, 1, 10, 0, "bg")
    done.end_rx_ns = 5
    assert stats.incomplete_flows() == 1
    assert stats.incomplete_flows("bg") == 0


def test_sample_reservoir_caps(monkeypatch):
    from repro.stats import collector

    # The reservoirs freeze their capacity at NetStats construction, so
    # the cap must be patched before building the collector.
    monkeypatch.setattr(collector, "MAX_SAMPLES", 10)
    stats = NetStats()
    for i in range(100):
        stats.add_rtt_sample(i, "fg")
        stats.add_delivery_sample(i)
    assert len(stats.rtt_samples_fg) == 10
    assert len(stats.delivery_samples) == 10
    assert stats.rtt_samples_fg.seen == 100


def test_reservoir_uniform_not_keep_first():
    # Keep-first-N truncation would retain exactly range(10); Algorithm R
    # keeps a uniform sample, so late elements must appear.
    res = Reservoir(10, seed="t")
    for i in range(1000):
        res.add(i)
    assert len(res) == 10
    assert res.seen == 1000
    assert any(v >= 10 for v in res), "reservoir degenerated to keep-first-N"
    assert all(0 <= v < 1000 for v in res)


def test_reservoir_deterministic_per_seed():
    def fill(seed):
        res = Reservoir(8, seed=seed)
        for i in range(500):
            res.add(i)
        return list(res)

    assert fill("a") == fill("a")
    assert fill("a") != fill("b")


def test_reservoir_sequence_protocol():
    res = Reservoir(16, seed=0)
    for i in range(5):
        res.add(i * 10)
    # Below capacity the reservoir holds the stream verbatim, in order.
    assert len(res) == 5
    assert list(res) == [0, 10, 20, 30, 40]
    assert res[2] == 20
    assert res[-1] == 40


def test_reservoir_rejects_bad_capacity():
    import pytest

    with pytest.raises(ValueError):
        Reservoir(0)


def test_goodput():
    stats = NetStats()
    rec = stats.new_flow(1, 0, 1, 1_000_000, 0, "bg")
    rec.end_rx_ns = 1_000_000
    # 1 MB over 1 ms => 8 Gbps.
    assert stats.goodput_bps("bg", 1_000_000) == 8e9
    assert stats.goodput_bps("bg", 0) == 0.0
