"""Tests for traffic-class isolation (incremental deployment, §5.3)."""


from repro.core.config import TltConfig
from repro.net.packet import Color, Packet, PacketKind
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import PacketTap, small_star


def _data(flow, src, dst, tclass=0, color=Color.GREEN, seq=0):
    pkt = Packet(flow, src, dst, PacketKind.DATA, seq=seq, payload=1452)
    pkt.tclass = tclass
    pkt.color = color
    return pkt


class Collector:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


def test_classes_use_separate_queues():
    net = small_star(num_traffic_classes=2, buffer_bytes=500_000)
    switch = net.switches[0]
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    for i in range(4):
        net.host(0).send(_data(9, 0, 2, tclass=0, seq=i))
        net.host(1).send(_data(9, 1, 2, tclass=1, seq=i))
    net.engine.run(max_events=10)
    q0 = switch.queue_for(switch.fib.lookup(2, 9), 0)
    q1 = switch.queue_for(switch.fib.lookup(2, 9), 1)
    assert q0.max_occupancy > 0
    assert q1.max_occupancy > 0
    net.engine.run()
    assert len(sink.packets) == 8


def test_round_robin_serves_both_classes():
    net = small_star(num_traffic_classes=2, buffer_bytes=500_000)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    # Saturate from two hosts into one egress with distinct classes.
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, tclass=0, seq=i))
        net.host(1).send(_data(9, 1, 2, tclass=1, seq=i + 100))
    net.engine.run()
    # Interleaving: the first ten arrivals are not all one class.
    first_ten = {p.tclass for p in sink.packets[:10]}
    assert first_ten == {0, 1}


def test_color_dropping_limited_to_configured_classes():
    net = small_star(
        num_traffic_classes=2,
        color_threshold_bytes=3_000,
        color_classes=(0,),
        buffer_bytes=500_000,
    )
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    net.host(2).register_endpoint(8, sink)
    for i in range(10):
        net.host(0).send(_data(9, 0, 2, tclass=0, color=Color.RED, seq=i))
        net.host(1).send(_data(8, 1, 2, tclass=1, color=Color.RED, seq=i))
    net.engine.run()
    # Class-0 red packets were shed; class-1 (legacy) reds untouched.
    assert net.stats.drops_red > 0
    delivered_class1 = [p for p in sink.packets if p.tclass == 1]
    assert len(delivered_class1) == 10


def test_invalid_tclass_falls_back_to_class0():
    net = small_star(num_traffic_classes=2, buffer_bytes=500_000)
    sink = Collector()
    net.host(2).register_endpoint(9, sink)
    net.host(0).send(_data(9, 0, 2, tclass=7))
    net.engine.run()
    assert len(sink.packets) == 1


def test_transport_stamps_traffic_class():
    net = small_star(num_traffic_classes=2, buffer_bytes=500_000)
    seen = []
    switch = net.switches[0]
    PacketTap(switch, lambda packet: seen.append(packet.tclass))
    config = TransportConfig(base_rtt_ns=4_000, traffic_class=1)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=10_000)
    create_flow("tcp", net, spec, config)
    net.engine.run()
    assert seen and all(t == 1 for t in seen)


def test_tlt_and_legacy_coexist_with_isolation():
    """Mixed deployment: TLT flows in class 0 (color-aware), legacy
    flows in class 1 (no coloring) — legacy traffic must not be
    red-dropped and both complete."""
    net = small_star(
        num_hosts=9,
        num_traffic_classes=2,
        color_threshold_bytes=60_000,
        color_classes=(0,),
        buffer_bytes=600_000,
    )
    tlt_cfg = TransportConfig(base_rtt_ns=4_000, traffic_class=0)
    legacy_cfg = TransportConfig(base_rtt_ns=4_000, traffic_class=1)
    for src in range(1, 5):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=150_000, group="fg")
        create_flow("dctcp", net, spec, tlt_cfg, TltConfig())
    for src in range(5, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=150_000, group="bg")
        create_flow("dctcp", net, spec, legacy_cfg)
    net.engine.run(until=5_000_000_000)
    assert net.stats.incomplete_flows() == 0
