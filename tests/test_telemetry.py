"""Tests for repro.telemetry: registry, samplers, exporters, recorder,
scenario wiring, and the determinism/caching contracts."""

import importlib.util
import json
import os
from dataclasses import replace

import pytest

from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.telemetry import (
    NULL_METRIC,
    LinkUtilization,
    MetricsRegistry,
    Sampler,
    Telemetry,
    TelemetryConfig,
    merge_streams,
)
from repro.telemetry.recorder import FlightRecorder

from tests.util import run_flow, small_star

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_telemetry", os.path.join(ROOT, "tools", "check_telemetry.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- metrics registry ---------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    c = registry.counter("c_total", "a counter")
    c.inc()
    c.inc(2)
    assert c.value == 3
    g = registry.gauge("g", "a gauge", ("device",))
    g.labels("tor0").set(5)
    g.labels("tor0").dec()
    g.labels("tor1").set(7)
    assert g.labels("tor0").value == 4
    h = registry.histogram("h_bytes", "sizes", buckets=(10, 100))
    for v in (5, 50, 500):
        h.observe(v)
    child = h.labels()
    assert child.count == 3 and child.sum == 555
    assert child.cumulative() == [(10.0, 1), (100.0, 2), (float("inf"), 3)]


def test_registry_disabled_path_is_null_singleton():
    registry = MetricsRegistry(enabled=False)
    metric = registry.counter("anything", "ignored", ("a", "b"))
    assert metric is NULL_METRIC
    assert metric.labels("x", "y") is NULL_METRIC
    metric.inc()
    metric.observe(4)
    metric.set(9)
    assert metric.value == 0.0
    assert registry.collect() == []
    assert registry.to_prometheus() == ""


def test_registry_rejects_shape_conflicts():
    registry = MetricsRegistry()
    registry.counter("m", "first", ("a",))
    with pytest.raises(ValueError):
        registry.gauge("m", "same name, different kind", ("a",))
    with pytest.raises(ValueError):
        registry.counter("m", "same kind, different labels", ("a", "b"))
    # Same shape: create-or-get returns the existing family.
    assert registry.counter("m", labelnames=("a",)) is registry.counter("m", labelnames=("a",))


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("tlt_x_total", "help text").inc(5)
    registry.gauge("tlt_g", "g", ("switch",)).labels('to"r0').set(1.5)
    registry.histogram("tlt_h", "h", buckets=(1.0,)).observe(0.5)
    text = registry.to_prometheus()
    assert "# HELP tlt_x_total help text" in text
    assert "# TYPE tlt_x_total counter" in text
    assert "tlt_x_total 5" in text
    assert 'tlt_g{switch="to\\"r0"} 1.5' in text
    assert 'tlt_h_bucket{le="+Inf"} 1' in text
    assert "tlt_h_count 1" in text


def test_labels_arity_checked():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "g", ("a", "b"))
    with pytest.raises(ValueError):
        gauge.labels("only-one")


# -- samplers -----------------------------------------------------------------


def test_sampler_interval_validation():
    net = small_star()
    with pytest.raises(ValueError):
        LinkUtilization(net.engine, net.hosts[0].ports[0], interval_ns=0)
    with pytest.raises(ValueError):
        TelemetryConfig.from_spec({"interval_ns": -5})


def test_timeseries_alias_is_the_telemetry_sampler():
    """Satellite: repro.stats.timeseries.LinkUtilization folded into the
    sampler framework; the old import path is a thin alias."""
    from repro.stats import timeseries

    assert timeseries.LinkUtilization is LinkUtilization
    assert issubclass(LinkUtilization, Sampler)


def test_telemetry_samplers_stop_when_engine_drains(tmp_path):
    """The auto-active predicate: samplers stop re-arming once the only
    pending events are their own, so telemetry never wedges a run."""
    net = small_star()
    telemetry = Telemetry(
        net, TelemetryConfig(out_dir=str(tmp_path), interval_ns=10_000,
                             report=False, prometheus=False)
    ).install()
    _, _, record = run_flow(net, "dctcp", size=200_000)
    assert record.completed
    net.engine.run()  # drains: samplers must let the wheel empty
    assert net.engine.pending == 0
    summary = telemetry.finalize()
    assert summary["emitted"] > 0
    assert "queue" in summary["streams"] or "link" in summary["streams"]


def test_flow_sampler_reads_sender_state(tmp_path):
    net = small_star()
    telemetry = Telemetry(
        net, TelemetryConfig(out_dir=str(tmp_path), interval_ns=5_000,
                             report=False, prometheus=False, jsonl=False)
    ).install()
    run_flow(net, "dctcp", size=500_000)
    telemetry.finalize()
    rows = telemetry.samples["flow"]
    assert rows
    assert all(row["cwnd"] > 0 for row in rows)
    assert any(row["inflight"] > 0 for row in rows)
    assert all(row["rto_armed"] in (0, 1) for row in rows)


# -- flight recorder ----------------------------------------------------------


def test_flight_recorder_window_and_dump(tmp_path):
    recorder = FlightRecorder(str(tmp_path), "t1", window=3, max_dumps=2)
    for i in range(10):
        recorder.on_sample({"t": i, "i": i, "stream": "queue"})
    path = recorder.trigger("rto_fire", {"flow": 7})
    payload = json.loads(open(path).read())
    assert payload["schema"] == 1
    assert payload["run"] == "t1"
    assert payload["trigger"]["kind"] == "rto_fire"
    assert payload["trigger"]["flow"] == 7
    # Bounded window: only the 3 most recent samples retained.
    assert [s["t"] for s in payload["samples"]] == [7, 8, 9]
    recorder.trigger("fault")
    assert recorder.trigger("fault") is None  # capped
    assert recorder.suppressed == 1
    assert len(recorder.triggers) == 3


def test_rto_fire_triggers_flight_dump(tmp_path):
    """An RTO fire during a run dumps a snapshot via stats.on_rto_fire."""
    from repro.faults import FaultInjector

    net = small_star()
    telemetry = Telemetry(
        net, TelemetryConfig(out_dir=str(tmp_path), interval_ns=10_000,
                             report=False, prometheus=False)
    ).install()
    FaultInjector(net.switches[0], 1.0, stats=net.stats)  # kill everything
    run_flow(net, "tcp", size=20_000, until=100_000_000)
    telemetry.finalize()
    assert net.stats.timeouts > 0
    assert telemetry.recorder.dumps
    payload = json.loads(open(telemetry.recorder.dumps[0]).read())
    assert payload["trigger"]["kind"] == "rto_fire"
    assert payload["trigger"]["rto_ns"] > 0


# -- scenario wiring ----------------------------------------------------------


def _tiny_config(**kwargs):
    return ScenarioConfig(transport="dctcp", tlt=True, scale=TINY, seed=3, **kwargs)


def test_scenario_run_produces_schema_valid_telemetry(tmp_path):
    out = str(tmp_path / "tele")
    result = run_scenario(_tiny_config(telemetry={"out_dir": out, "csv": True,
                                                  "html": True}))
    telemetry = result.telemetry
    assert telemetry is not None
    summary = telemetry.summary()
    for stream in ("queue", "buffer", "flow", "link"):
        assert summary["streams"].get(stream), f"stream {stream} empty"
    names = sorted(os.listdir(out))
    assert any(n.endswith(".jsonl") for n in names)
    assert any(n.endswith(".prom") for n in names)
    report = next(n for n in names if n.startswith("report_") and n.endswith(".txt"))
    text = open(os.path.join(out, report)).read()
    # Fig-11 shape: per-queue green/red timeline against K.
    assert "Queue occupancy by color vs threshold K" in text
    assert "green |" in text and "red   |" in text and "K=400kB" in text
    # Schema check with the real CI tool.
    checker = _load_checker()
    counts, flights, errors = checker.check_dir(out)
    assert not errors, errors
    assert sum(counts.values()) == summary["emitted"]


def test_scenario_telemetry_via_environment(tmp_path, monkeypatch):
    out = str(tmp_path / "env-tele")
    monkeypatch.setenv("TLT_TELEMETRY", out)
    config = _tiny_config()
    assert config.resolved_telemetry()["out_dir"] == out
    monkeypatch.delenv("TLT_TELEMETRY")
    assert config.resolved_telemetry() is None


def test_faulted_scenario_dumps_cross_referenced_flight_records(tmp_path):
    """Acceptance: a faulted run produces >= 1 flight dump whose trigger
    cross-references the fault event that fired it."""
    out = str(tmp_path / "tele")
    spec = {"events": [
        {"time_ns": 1_000_000, "kind": "corruption_on", "target": "tor0",
         "params": {"rate": 0.001}},
        {"time_ns": 10_000_000, "kind": "corruption_off", "target": "tor0"},
    ]}
    result = run_scenario(_tiny_config(faults=spec, telemetry={"out_dir": out}))
    recorder = result.telemetry.recorder
    assert recorder.dumps
    payload = json.loads(open(recorder.dumps[0]).read())
    assert payload["trigger"]["kind"] == "fault"
    assert payload["trigger"]["fault_kind"] == "corruption_on"
    assert payload["trigger"]["target"] == "tor0"
    assert payload["trigger"]["time_ns"] == 1_000_000
    # Cross-link to the audit subsystem: conftest runs scenarios with
    # TLT_AUDIT=1, so the hot-path ring tail rides along.
    assert payload["audit_trace"]
    checker = _load_checker()
    _, flights, errors = checker.check_dir(out)
    assert flights >= 1 and not errors, errors


def test_audit_error_dumps_flight_record(tmp_path, monkeypatch):
    """A raised AuditError snapshots the recorder before propagating."""
    from repro.audit import AuditError

    out = str(tmp_path / "tele")

    import repro.experiments.scenarios as scenarios

    class Boom:
        def install(self):
            return self

        def final_check(self):
            raise AuditError(["synthetic violation"], [], time_ns=42)

    monkeypatch.setattr(scenarios, "Auditor", lambda net, cfg: Boom())
    with pytest.raises(AuditError):
        run_scenario(_tiny_config(audit=True, telemetry={"out_dir": out}))
    flight = [n for n in os.listdir(out) if n.startswith("flight_")]
    assert flight
    payload = json.loads(open(os.path.join(out, flight[0])).read())
    assert payload["trigger"]["kind"] == "audit_error"
    assert payload["trigger"]["violations"] == ["synthetic violation"]


# -- determinism + caching contracts ------------------------------------------


def test_telemetry_on_fingerprint_matches_golden(tmp_path):
    """Acceptance: with telemetry enabled, every pre-optimization golden
    fingerprint field is bit-identical except the raw engine event count
    (samplers are real engine events; they read state, never mutate it)."""
    from tests.test_determinism import CONFIGS, EXPECTED, fingerprint

    config = replace(CONFIGS["dctcp_tlt"](), telemetry={"out_dir": str(tmp_path)})
    observed = fingerprint(config)
    expected = dict(EXPECTED["dctcp_tlt"])
    extra_events = observed.pop("events") - expected.pop("events")
    assert observed == expected
    assert extra_events > 0  # the sampler events themselves


def test_telemetry_on_runs_are_bit_identical(tmp_path):
    from tests.test_determinism import CONFIGS, fingerprint

    def run(tag):
        out = str(tmp_path / tag)
        return fingerprint(replace(CONFIGS["dctcp_tlt"](),
                                   telemetry={"out_dir": out}))

    assert run("a") == run("b")


def test_telemetry_excluded_from_cache_keys(tmp_path):
    """Telemetry is an observation, not a result: the cache key of a
    telemetry run equals the plain run's (contrast faults, folded in)."""
    from repro.experiments.parallel import Job

    plain = _tiny_config()
    instrumented = _tiny_config(telemetry={"out_dir": str(tmp_path)})
    assert (Job(0, instrumented, seed=3).cache_key()
            == Job(0, plain, seed=3).cache_key())
    faulted = _tiny_config(faults={"events": []})
    assert Job(0, faulted, seed=3).cache_key() != Job(0, plain, seed=3).cache_key()


# -- stream merge -------------------------------------------------------------


def test_merge_streams_orders_by_seed_then_sim_time(tmp_path):
    out = str(tmp_path / "tele")
    for seed in (5, 4):
        run_scenario(ScenarioConfig(transport="dctcp", tlt=True, scale=TINY,
                                    seed=seed, telemetry={"out_dir": out}))
    path, count = merge_streams(out)
    assert path and count > 0
    keys = []
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            keys.append((record["seed"], record["t"], record["run"], record["i"]))
    assert keys == sorted(keys)
    assert {k[0] for k in keys} == {4, 5}
    checker = _load_checker()
    jsonl_count, errors = checker.check_jsonl(path, merged=True)
    assert jsonl_count == count and not errors, errors


def test_merge_streams_empty_dir(tmp_path):
    assert merge_streams(str(tmp_path)) == (None, 0)
    assert merge_streams(str(tmp_path / "missing")) == (None, 0)
