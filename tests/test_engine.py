"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_scheduling_order():
    engine = Engine()
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(5, order.append, tag)
    engine.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]
    assert engine.now == 100


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(50, fired.append, 1)
    engine.schedule(150, fired.append, 2)
    engine.run(until=100)
    assert fired == [1]
    engine.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_when_queue_drains():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run(until=500)
    assert engine.now == 500


def test_run_until_advances_clock_past_no_events():
    # Regression: with the next event beyond the horizon, run(until=...)
    # used to return with now still at its old value, so back-to-back
    # run(until=...) windows drifted from wall-of-simulated-time.
    engine = Engine()
    fired = []
    engine.schedule(100, fired.append, 1)
    assert engine.run(until=50) == 0
    assert engine.now == 50
    assert fired == []
    engine.run(until=150)
    assert fired == [1]
    assert engine.now == 150


def test_run_until_with_cancelled_head_still_advances():
    engine = Engine()
    early = engine.schedule(60, lambda: None)
    engine.schedule(150, lambda: None)
    early.cancel()
    engine.run(until=100)
    assert engine.now == 100


def test_run_until_not_past_unprocessed_events_on_max_events():
    # max_events may stop the run early; the clock must not jump over
    # events that were due at or before the horizon.
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, 1)
    engine.schedule(20, fired.append, 2)
    engine.run(until=100, max_events=1)
    assert fired == [1]
    assert engine.now == 10
    engine.run(until=100)
    assert fired == [1, 2]
    assert engine.now == 100


def test_cancelled_event_is_skipped():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "x")
    event.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_events_can_schedule_events():
    engine = Engine()
    result = []

    def chain(n):
        result.append(n)
        if n < 5:
            engine.schedule(10, chain, n + 1)

    engine.schedule(0, chain, 1)
    engine.run()
    assert result == [1, 2, 3, 4, 5]
    assert engine.now == 40


def test_step_processes_single_event():
    engine = Engine()
    fired = []
    engine.schedule(1, fired.append, "a")
    engine.schedule(2, fired.append, "b")
    assert engine.step()
    assert fired == ["a"]
    assert engine.step()
    assert not engine.step()


def test_max_events_limit():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(i, fired.append, i)
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_peek_time_skips_cancelled():
    engine = Engine()
    first = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    first.cancel()
    assert engine.peek_time() == 9


def test_events_processed_counter():
    engine = Engine()
    for i in range(4):
        engine.schedule(i, lambda: None)
    engine.run()
    assert engine.events_processed == 4


def test_engine_is_not_reentrant():
    engine = Engine()

    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(0, nested)
    engine.run()


def test_pending_counts_live_events_only():
    engine = Engine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(10)]
    timer = engine.schedule_timer(1_000_000, lambda: None)
    assert engine.pending == 11
    for event in events[:4]:
        event.cancel()
    assert engine.pending == 7  # cancelled events no longer counted
    timer.cancel()
    assert engine.pending == 6
    assert engine.pending_total >= 6  # dead entries may still be queued


def test_pending_total_includes_dead_entries():
    engine = Engine()
    event = engine.schedule(10, lambda: None)
    engine.schedule(20, lambda: None)
    event.cancel()
    assert engine.pending == 1
    assert engine.pending_total == 2


def test_heap_compaction_drops_dead_entries():
    engine = Engine()
    keeper = engine.schedule(1_000_000, lambda: None)
    events = [engine.schedule(i + 1, lambda: None)
              for i in range(Engine.COMPACT_MIN_DEAD * 2)]
    for event in events:
        event.cancel()
    # More than half of the heap went dead => it was compacted in place
    # (without compaction all 2*COMPACT_MIN_DEAD+1 entries would remain).
    assert len(engine._queue) <= Engine.COMPACT_MIN_DEAD
    assert engine.pending == 1
    assert engine.pending_total == len(engine._queue)
    engine.run()
    assert engine.now == 1_000_000
    assert not keeper.cancelled


def test_schedule_anon_runs_in_order():
    engine = Engine()
    order = []
    engine.schedule(5, order.append, "a")
    engine.schedule_anon(5, order.append, "b")
    engine.schedule(5, order.append, "c")
    engine.schedule_anon(1, order.append, "first")
    engine.run()
    assert order == ["first", "a", "b", "c"]
    assert engine.events_processed == 4


def test_schedule_anon_rejects_past():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule_anon(-1, lambda: None)


def test_gc_state_restored_after_run():
    import gc

    engine = Engine()
    thresholds = gc.get_threshold()
    enabled = gc.isenabled()
    engine.schedule(10, lambda: None)
    engine.run()
    assert gc.get_threshold() == thresholds
    assert gc.isenabled() == enabled
