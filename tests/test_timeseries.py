"""Tests for link-utilization time series."""

import pytest

from repro.stats.timeseries import LinkUtilization
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import small_star


def test_idle_link_zero_utilization():
    net = small_star()
    util = LinkUtilization(net.engine, net.host(0).port, interval_ns=10_000)
    net.engine.run(until=100_000)
    util.stop()
    assert util.samples
    assert util.mean == 0.0


def test_bulk_transfer_saturates_link():
    net = small_star()
    util = LinkUtilization(net.engine, net.host(0).port, interval_ns=50_000,
                           duration_ns=2_000_000)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=2_000_000)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run()
    assert util.peak > 0.9
    # ~420 us of the 2 ms window are line-rate busy (8/40 samples).
    assert util.busy_fraction(0.8) >= 0.15


def test_stop_halts_sampling():
    net = small_star()
    util = LinkUtilization(net.engine, net.host(0).port, interval_ns=10_000)
    util.stop()
    net.engine.run(until=1_000_000)
    assert util.samples == []


def test_interval_validation():
    net = small_star()
    with pytest.raises(ValueError):
        LinkUtilization(net.engine, net.host(0).port, interval_ns=0)


def test_utilization_capped_at_one():
    net = small_star()
    util = LinkUtilization(net.engine, net.host(0).port, interval_ns=1_000,
                           duration_ns=500_000)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=500_000)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run()
    assert util.samples
    assert all(0.0 <= s <= 1.0 for s in util.samples)


def test_duration_auto_stops_sampler():
    net = small_star()
    util = LinkUtilization(net.engine, net.host(0).port, interval_ns=10_000,
                           duration_ns=50_000)
    net.engine.run()  # must drain: the sampler self-terminates
    assert len(util.samples) == 5
    assert net.engine.now < 1_000_000
