"""Behavioral tests for DCTCP."""

from repro.switchsim.ecn import StepEcn
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import run_flow, small_star


def dctcp_star(**kwargs):
    kwargs.setdefault("ecn", StepEcn(30_000))
    return small_star(**kwargs)


def test_flow_completes():
    net = dctcp_star()
    _, _, record = run_flow(net, "dctcp", size=200_000)
    assert record.completed
    assert record.timeouts == 0


def test_sender_sets_ect_and_receives_echo():
    net = dctcp_star(ecn=StepEcn(2_000))
    # Two senders congest the shared egress so marking kicks in.
    config = TransportConfig(base_rtt_ns=4_000)
    specs = [
        FlowSpec(flow_id=net.new_flow_id(), src=src, dst=2, size=400_000)
        for src in (0, 1)
    ]
    senders = [create_flow("dctcp", net, s, config)[0] for s in specs]
    net.engine.run()
    assert net.stats.ecn_marks > 0
    assert any(s._acked_marked > 0 or s.alpha > 0 for s in senders)


def test_alpha_decays_without_marks():
    net = dctcp_star()
    sender, _, _ = run_flow(net, "dctcp", size=500_000)
    # Alpha starts at 1.0 and decays every unmarked window.
    assert sender.alpha < 1.0


def test_congestion_keeps_queue_near_kecn():
    """DCTCP's steady-state queue oscillates around K_ECN."""
    k = 30_000
    net = dctcp_star(ecn=StepEcn(k), buffer_bytes=2_000_000)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in (0, 1):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=2, size=2_000_000)
        create_flow("dctcp", net, spec, config)
    net.engine.run()
    max_q = net.switches[0].max_queue_occupancy()
    # Queue exceeded K (marking lags an RTT) but stayed well below the
    # loss-driven level a Reno flow would reach (~ buffer cap).
    assert k < max_q < 600_000


def test_dctcp_reduces_proportionally_not_by_half():
    """With light marking, DCTCP's reduction is far gentler than 50%."""
    net = dctcp_star(ecn=StepEcn(30_000), buffer_bytes=2_000_000)
    config = TransportConfig(base_rtt_ns=4_000)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=2, size=3_000_000)
    sender, _ = create_flow("dctcp", net, spec, config)
    windows = []

    original = sender.cc_on_ecn_echo

    def spy(newly_acked):
        before = sender.cwnd
        original(newly_acked)
        if sender.cwnd != before:
            windows.append((before, sender.cwnd))

    sender.cc_on_ecn_echo = spy
    # A competing flow to build the queue.
    spec2 = FlowSpec(flow_id=net.new_flow_id(), src=1, dst=2, size=3_000_000)
    create_flow("dctcp", net, spec2, config)
    net.engine.run()
    assert windows, "expected at least one ECN-driven reduction"
    # Every reduction must satisfy new >= old * (1 - alpha/2) >= old/2.
    assert all(after >= before // 2 for before, after in windows)


def test_ecn_fraction_tracks_marking():
    net = dctcp_star(ecn=StepEcn(10_000), buffer_bytes=2_000_000)
    config = TransportConfig(base_rtt_ns=4_000)
    senders = []
    for src in (0, 1):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=2, size=1_000_000)
        senders.append(create_flow("dctcp", net, spec, config)[0])
    net.engine.run()
    assert all(0.0 <= s.alpha <= 1.0 for s in senders)
