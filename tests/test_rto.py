"""Tests for RTO estimation (Linux-style SRTT/RTTVAR)."""

import pytest

from repro.sim.units import MICROS, MILLIS
from repro.transport.rto import FixedRto, RtoEstimator


def test_first_sample_initializes_srtt_and_rttvar():
    rto = RtoEstimator(rto_min=1 * MILLIS)
    rto.on_rtt_sample(800 * MICROS)
    assert rto.srtt == 800 * MICROS
    assert rto.rttvar == 400 * MICROS


def test_rto_formula_srtt_plus_4x_var():
    rto = RtoEstimator(rto_min=1)
    rto.on_rtt_sample(1_000_000)
    # base_rto = srtt + 4*rttvar = 1ms + 4*0.5ms = 3ms
    assert rto.base_rto == 3_000_000


def test_rto_clamped_to_minimum():
    rto = RtoEstimator(rto_min=4 * MILLIS)
    rto.on_rtt_sample(10 * MICROS)
    assert rto.base_rto == 4 * MILLIS


def test_rto_clamped_to_maximum():
    rto = RtoEstimator(rto_min=1 * MILLIS, rto_max=10 * MILLIS)
    rto.on_rtt_sample(100 * MILLIS)
    assert rto.base_rto == 10 * MILLIS


def test_ewma_rounds_toward_zero():
    # Regression: RFC 6298's EWMA steps use integer division toward
    # zero. Python's floor division drags a negative delta one tick
    # low (-7 // 8 == -1), so a stream of samples a hair under SRTT
    # used to bleed SRTT/RTTVAR downward and under-shoot the RTO.
    rto = RtoEstimator(rto_min=1)
    rto.on_rtt_sample(1000)
    assert rto.srtt == 1000
    assert rto.rttvar == 500
    rto.on_rtt_sample(993)
    # srtt step: (993 - 1000) / 8 rounds to 0, not -1 (pre-fix: 999).
    assert rto.srtt == 1000
    # rttvar step: (7 - 500) / 4 rounds to -123, not -124 (pre-fix: 376).
    assert rto.rttvar == 377


def test_ewma_no_systematic_downward_bias():
    # Samples alternating ±1 ns around a stable RTT must not walk SRTT
    # away from it (floor division loses 1 ns on every negative delta).
    rto = RtoEstimator(rto_min=1)
    rto.on_rtt_sample(1_000_000)
    for i in range(400):
        rto.on_rtt_sample(1_000_001 if i % 2 else 999_999)
    assert abs(rto.srtt - 1_000_000) <= 2


def test_variance_shrinks_with_stable_rtt():
    rto = RtoEstimator(rto_min=1)
    for _ in range(100):
        rto.on_rtt_sample(1_000_000)
    assert rto.rttvar < 10_000  # EWMA converges toward zero variance
    assert abs(rto.srtt - 1_000_000) < 10_000


def test_variance_grows_with_volatile_rtt():
    """Bursty traffic inflates the RTO well beyond the mean RTT (§2.2)."""
    stable = RtoEstimator(rto_min=1)
    volatile = RtoEstimator(rto_min=1)
    for i in range(200):
        stable.on_rtt_sample(1_000_000)
        volatile.on_rtt_sample(200_000 if i % 2 else 2_000_000)
    assert volatile.base_rto > stable.base_rto


def test_backoff_doubles_rto():
    rto = RtoEstimator(rto_min=4 * MILLIS, rto_max=100 * MILLIS)
    assert rto.current == 4 * MILLIS
    rto.backoff()
    assert rto.current == 8 * MILLIS
    rto.backoff()
    assert rto.current == 16 * MILLIS


def test_backoff_capped_at_rto_max():
    rto = RtoEstimator(rto_min=4 * MILLIS, rto_max=10 * MILLIS)
    for _ in range(10):
        rto.backoff()
    assert rto.current == 10 * MILLIS


def test_new_sample_resets_backoff():
    rto = RtoEstimator(rto_min=4 * MILLIS)
    rto.backoff()
    rto.on_rtt_sample(100 * MICROS)
    assert rto.current == 4 * MILLIS


def test_nonpositive_sample_is_sanitized():
    rto = RtoEstimator(rto_min=1 * MILLIS)
    rto.on_rtt_sample(0)
    assert rto.srtt == 1


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        RtoEstimator(rto_min=0)
    with pytest.raises(ValueError):
        RtoEstimator(rto_min=10, rto_max=5)


def test_fixed_rto_ignores_samples():
    rto = FixedRto(160 * MICROS)
    rto.on_rtt_sample(50 * MILLIS)
    assert rto.base_rto == 160 * MICROS


def test_fixed_rto_still_backs_off():
    rto = FixedRto(160 * MICROS)
    rto.backoff()
    assert rto.current == 320 * MICROS
