"""Tests for the emulated-testbed helpers and small public utilities."""

from repro.experiments.testbed import (
    TESTBED_COLOR_THRESHOLD,
    build_testbed,
    maybe_tlt,
)
from repro.experiments.testbed import testbed_transport_config as make_testbed_tconfig
from repro.transport.dctcp import dctcp_config
from repro.version import __version__


def test_version_string():
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_dctcp_config_enables_ecn():
    config = dctcp_config(mss=1000)
    assert config.ecn
    assert config.mss == 1000


def test_testbed_builds_star_with_paper_settings():
    net = build_testbed(num_hosts=10, transport="dctcp", tlt=True)
    switch = net.switches[0]
    assert len(net.hosts) == 10
    assert switch.config.color_threshold_bytes == TESTBED_COLOR_THRESHOLD
    assert switch.config.ecn is not None
    # Dynamic-threshold ceiling ~ half the pool: the ~1.8 MB single-port
    # allowance the paper's Tomahawk exhibits.
    assert abs(switch.buffer.capacity / 2 - 1_875_000) < 100_000


def test_testbed_without_tlt_disables_coloring():
    net = build_testbed(num_hosts=10, transport="dctcp", tlt=False)
    assert net.switches[0].config.color_threshold_bytes is None


def test_testbed_hpcc_enables_int():
    net = build_testbed(num_hosts=4, transport="hpcc", tlt=False)
    assert net.switches[0].config.int_enabled


def test_maybe_tlt():
    assert maybe_tlt(False) is None
    assert maybe_tlt(True) is not None


def test_testbed_transport_config_rtt():
    config = make_testbed_tconfig()
    assert config.base_rtt_ns == 8_000
    assert config.rto_min_ns == 4_000_000
