"""Streaming quantile sketch: accuracy, memory, merge determinism."""

import math
import random

import numpy as np
import pytest

from repro.stats.percentile import summarize as exact_summarize
from repro.stats.streaming import (
    DEFAULT_ALPHA,
    StreamingQuantile,
    merge_all,
    merge_states,
)


def test_empty_sketch():
    sketch = StreamingQuantile()
    assert len(sketch) == 0
    assert sketch.percentile(99) == 0.0
    summary = sketch.summarize()
    assert summary["count"] == 0
    assert summary["p99"] == 0.0


def test_exact_aggregates():
    sketch = StreamingQuantile()
    values = [5, 1, 100, 42, 7]
    sketch.extend(values)
    assert len(sketch) == len(values)
    assert sketch.min == 1
    assert sketch.max == 100
    assert sketch.mean == pytest.approx(sum(values) / len(values))


def test_relative_error_bound_small():
    sketch = StreamingQuantile()
    values = list(range(1, 10_001))
    sketch.extend(values)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = values[math.ceil(q * len(values)) - 1]
        got = sketch.quantile(q)
        assert abs(got - exact) / exact <= DEFAULT_ALPHA


def test_parity_with_exact_percentiles_at_1e6():
    """Satellite gate: the streaming estimate matches exact numpy
    percentiles within the documented tolerance (alpha = 1% relative
    error per quantile; 2% asserted to leave room for the nearest-rank
    vs interpolated-percentile definition gap) at 10^6 samples."""
    rng = random.Random(1234)
    samples = [rng.lognormvariate(10.0, 1.5) for _ in range(1_000_000)]
    sketch = StreamingQuantile()
    sketch.extend(samples)
    exact = exact_summarize(samples)
    approx = sketch.summarize()
    assert approx["count"] == exact["count"] == 1_000_000
    for key in ("p50", "p99", "p999"):
        rel = abs(approx[key] - exact[key]) / exact[key]
        assert rel <= 2 * DEFAULT_ALPHA, (key, approx[key], exact[key])
    exact_p90 = float(np.percentile(np.asarray(samples), 90))
    assert abs(sketch.percentile(90) - exact_p90) / exact_p90 <= 2 * DEFAULT_ALPHA
    assert approx["mean"] == pytest.approx(exact["mean"], rel=1e-9)
    assert approx["max"] == pytest.approx(exact["max"], rel=1e-9)


def test_o1_memory_at_1e6_samples():
    """Bucket count is bounded by the dynamic range, not the sample
    count: a million lognormal draws land in a few hundred buckets."""
    rng = random.Random(99)
    sketch = StreamingQuantile()
    for _ in range(1_000_000):
        sketch.add(rng.lognormvariate(10.0, 1.5))
    assert len(sketch.buckets) < 2_000


def test_sharded_merge_bit_identical():
    """Any shard split, any merge order: identical state. Integer
    samples (the nanosecond-latency contract) keep the exact-sum
    accumulator order-independent."""
    rng = random.Random(7)
    samples = [1 + int(rng.expovariate(1e-6)) for _ in range(30_000)]
    whole = StreamingQuantile()
    whole.extend(samples)

    shards = [StreamingQuantile() for _ in range(4)]
    for index, value in enumerate(samples):
        shards[index % 4].add(value)
    merged = merge_all(shards)
    assert merged.to_state() == whole.to_state()

    reordered = merge_all([shards[2], shards[0], shards[3], shards[1]])
    assert reordered.to_state() == whole.to_state()

    assert merge_states([s.to_state() for s in shards]) == whole.to_state()


def test_state_round_trip():
    sketch = StreamingQuantile()
    sketch.extend([1, 0, 2.5, 1e9, 3])  # includes an exact zero
    clone = StreamingQuantile.from_state(sketch.to_state())
    assert clone.to_state() == sketch.to_state()
    assert len(clone) == len(sketch)
    assert clone.percentile(99) == sketch.percentile(99)


def test_summarize_type_parity_with_exact():
    """Satellite (b): both summarize() implementations return builtin
    int for count and builtin float for every other key."""
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    sketch = StreamingQuantile()
    sketch.extend(samples)
    approx = sketch.summarize()
    exact = exact_summarize(samples)
    assert set(approx) == set(exact)
    for key in exact:
        want = int if key == "count" else float
        assert type(exact[key]) is want, (key, type(exact[key]))
        assert type(approx[key]) is want, (key, type(approx[key]))


def test_exact_summarize_accepts_numpy_input():
    summary = exact_summarize(np.array([1.0, 2.0, 3.0]))
    assert type(summary["count"]) is int
    assert type(summary["p99"]) is float


def test_nonpositive_values_clamp_to_zero_bucket():
    sketch = StreamingQuantile()
    sketch.extend([0, 0, 10.0])
    assert sketch.zeros == 2
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(10.0, rel=DEFAULT_ALPHA)


def test_mismatched_alpha_merge_rejected():
    with pytest.raises(ValueError):
        StreamingQuantile(alpha=0.01).merge(StreamingQuantile(alpha=0.02))
