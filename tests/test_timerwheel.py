"""Tests for the hierarchical timer wheel (repro.sim.timerwheel).

The wheel's contract: ``Engine.schedule_timer`` fires callbacks in
exactly the same ``(time, seq)`` order as ``Engine.schedule`` would —
the wheel is purely a cheaper parking lot for usually-cancelled timers,
never a semantic change.
"""

import random

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.timerwheel import NEVER, SHIFTS


def test_timer_fires_at_its_time():
    engine = Engine()
    fired = []
    engine.schedule_timer(1_000_000, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [1_000_000]
    assert engine.now == 1_000_000


def test_timer_and_heap_events_interleave_in_time_order():
    engine = Engine()
    order = []
    engine.schedule_timer(2_000_000, order.append, "timer")
    engine.schedule(1_000_000, order.append, "before")
    engine.schedule(3_000_000, order.append, "after")
    engine.run()
    assert order == ["before", "timer", "after"]


def test_same_time_ties_broken_by_scheduling_order():
    # A wheel timer and heap events at the same instant fire in
    # scheduling (seq) order, exactly as if all were heap events.
    engine = Engine()
    order = []
    engine.schedule(5_000_000, order.append, "heap-first")
    engine.schedule_timer(5_000_000, order.append, "wheel")
    engine.schedule(5_000_000, order.append, "heap-second")
    engine.run()
    assert order == ["heap-first", "wheel", "heap-second"]


def test_cancelled_timer_never_fires():
    engine = Engine()
    fired = []
    timer = engine.schedule_timer(1_000_000, fired.append, "x")
    timer.cancel()
    engine.run()
    assert fired == []
    assert engine.now == 0  # nothing left to run


def test_rearm_pattern_only_last_fires():
    # The RTO pattern: cancel + reschedule on every ACK.
    engine = Engine()
    fired = []
    state = {"timer": None}

    def rearm(n):
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = engine.schedule_timer(10_000_000, fired.append, n)
        if n < 100:
            engine.schedule(1_000, rearm, n + 1)

    engine.schedule(0, rearm, 1)
    engine.run()
    assert fired == [100]


def test_long_delay_cascades_through_levels():
    # A delay beyond the top level's span must cascade down as the
    # clock approaches it and still fire exactly once, on time.
    engine = Engine()
    fired = []
    delay = (1 << SHIFTS[2]) * 5  # far beyond the level-1 span
    engine.schedule_timer(delay, lambda: fired.append(engine.now))
    # Traffic to keep the clock stepping across slot boundaries.
    for t in range(0, delay, delay // 7):
        engine.schedule(t, lambda: None)
    engine.run()
    assert fired == [delay]


def test_timer_in_past_slot_fires_via_heap():
    # A timer whose slot has already started goes straight to the heap.
    engine = Engine()
    engine.schedule(1_000_000, lambda: None)
    engine.run()
    fired = []
    engine.schedule_timer(1, fired.append, "t")
    engine.run()
    assert fired == ["t"]


def test_timer_cannot_schedule_in_past():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_timer(-1, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_timer_at(5, lambda: None)


def test_run_until_with_only_wheel_timers_advances():
    engine = Engine()
    fired = []
    engine.schedule_timer(80_000_000, fired.append, 1)
    engine.run(until=10_000_000)
    assert fired == []
    assert engine.now == 10_000_000
    engine.run(until=100_000_000)
    assert fired == [1]
    assert engine.now == 100_000_000


def test_peek_time_sees_wheel_timer():
    engine = Engine()
    engine.schedule_timer(70_000_000, lambda: None)
    assert engine.peek_time() == 70_000_000


def test_wheel_empties_after_run():
    engine = Engine()
    for i in range(50):
        engine.schedule_timer(1_000_000 * (i + 1), lambda: None)
    engine.run()
    assert engine._wheel.total_entries() == 0
    assert engine._wheel.live == 0
    assert engine._wheel_min == NEVER


def test_property_wheel_matches_heap_ordering():
    """Property: an interleaving of schedule() and schedule_timer()
    calls fires in exactly the order a pure-heap engine produces."""
    rng = random.Random(42)
    for trial in range(20):
        delays = [rng.randrange(0, 1 << 28) for _ in range(200)]
        use_timer = [rng.random() < 0.5 for _ in range(200)]
        cancel_idx = set(rng.sample(range(200), 40))

        def run_engine(timers_in_wheel):
            engine = Engine()
            order = []
            events = []
            for i, delay in enumerate(delays):
                fn = engine.schedule_timer if (timers_in_wheel and use_timer[i]) else engine.schedule
                events.append(fn(delay, order.append, i))
            for i in cancel_idx:
                events[i].cancel()
            engine.run()
            return order

        assert run_engine(True) == run_engine(False), f"trial {trial}"


def test_property_wheel_matches_heap_with_nested_scheduling():
    """Property: callbacks that schedule further timers (the re-arm
    pattern) keep wheel and heap engines in lockstep."""
    rng = random.Random(7)
    script = [(rng.randrange(0, 1 << 22), rng.random() < 0.5, rng.random() < 0.3)
              for _ in range(150)]

    def run_engine(timers_in_wheel):
        engine = Engine()
        order = []

        def fire(i, extra_delay, as_timer, rearm):
            order.append((i, engine.now))
            if rearm:
                fn = engine.schedule_timer if (timers_in_wheel and as_timer) else engine.schedule
                fn(extra_delay, order.append, ("re", i))

        for i, (delay, as_timer, rearm) in enumerate(script):
            fn = engine.schedule_timer if (timers_in_wheel and as_timer) else engine.schedule
            fn(delay, fire, i, delay // 2 + 1, as_timer, rearm)
        engine.run()
        return order

    assert run_engine(True) == run_engine(False)
