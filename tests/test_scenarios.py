"""Integration tests for the scenario harness (and determinism)."""

import pytest

from repro.experiments.scale import SCALES, Scale
from repro.experiments.scenarios import ScenarioConfig, build_network, run_scenario

FAST = Scale("fast", num_spines=1, num_tors=2, hosts_per_tor=2,
             bg_flows=8, incast_events=1, incast_flows_per_sender=2)


def fast_config(**kw):
    kw.setdefault("scale", FAST)
    return ScenarioConfig(**kw)


def test_scenario_completes_all_flows():
    result = run_scenario(fast_config(transport="dctcp"))
    assert result.stats.incomplete_flows() == 0
    assert result.stats.flow_count("bg") == 8
    assert result.stats.flow_count("fg") == 1 * 3 * 2  # 3 senders x 2 flows


def test_scenario_is_deterministic():
    a = run_scenario(fast_config(transport="dctcp", seed=5))
    b = run_scenario(fast_config(transport="dctcp", seed=5))
    assert a.fct_summary("bg") == b.fct_summary("bg")
    assert a.fct_summary("fg") == b.fct_summary("fg")
    assert a.stats.timeouts == b.stats.timeouts


def test_different_seed_different_traffic():
    a = run_scenario(fast_config(transport="dctcp", seed=1))
    b = run_scenario(fast_config(transport="dctcp", seed=2))
    assert a.fct_summary("bg") != b.fct_summary("bg")


def test_family_resolution():
    assert fast_config(transport="tcp").family == "tcp"
    assert fast_config(transport="hpcc").family == "roce"
    with pytest.raises(ValueError):
        _ = fast_config(transport="quic").family


def test_link_delay_defaults_by_family():
    assert fast_config(transport="dctcp").resolved_link_delay_ns == 10_000
    assert fast_config(transport="dcqcn").resolved_link_delay_ns == 1_000


def test_bdp_matches_paper():
    # TCP family leaf-spine: 80 us x 40 Gbps = 400 kB.
    assert fast_config(transport="tcp").bdp_bytes == 400_000


def test_color_threshold_defaults():
    assert fast_config(transport="tcp").resolved_color_threshold is None
    assert fast_config(transport="tcp", tlt=True).resolved_color_threshold == 400_000
    assert fast_config(transport="irn", tlt=True).resolved_color_threshold == 200_000
    cfg = fast_config(transport="tcp", tlt=True, color_threshold_bytes=123)
    assert cfg.resolved_color_threshold == 123


def test_build_network_switch_features():
    net = build_network(fast_config(transport="hpcc"))
    assert all(s.config.int_enabled for s in net.switches)
    net = build_network(fast_config(transport="dctcp"))
    assert all(s.config.ecn is not None for s in net.switches)
    net = build_network(fast_config(transport="tcp"))
    assert all(s.config.ecn is None for s in net.switches)


def test_pfc_enabled_propagates():
    net = build_network(fast_config(transport="dctcp", pfc=True))
    assert all(s.pfc is not None for s in net.switches)


def test_queue_samples_collected_under_congestion():
    # Samples record only busy queues; force sustained congestion.
    result = run_scenario(
        fast_config(transport="dctcp", fg_share=0.2, queue_sample_interval_ns=2_000)
    )
    assert isinstance(result.queue_samples, list)
    assert result.queue_samples, "expected busy-queue samples under incast"


def test_disable_traffic_classes():
    result = run_scenario(fast_config(transport="dctcp", enable_incast=False))
    assert result.stats.flow_count("fg") == 0
    result = run_scenario(
        fast_config(transport="dctcp", enable_background=False, drain_ns=50_000_000)
    )
    assert result.stats.flow_count("bg") == 0


def test_scales_registry():
    assert set(SCALES) == {"tiny", "small", "medium", "paper"}
    assert SCALES["paper"].num_hosts == 96


def test_summary_row_keys():
    row = run_scenario(fast_config(transport="dctcp")).summary_row()
    for key in ("fg_p99_ms", "fg_p999_ms", "bg_avg_ms", "timeouts_per_1k",
                "pause_per_1k", "pause_fraction", "important_loss_rate",
                "important_fraction", "incomplete"):
        assert key in row
