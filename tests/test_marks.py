"""Tests for the TLT mark→color ACL and packet metadata."""

from repro.core.marks import apply_acl, color_for_mark
from repro.net.packet import (
    ACK_BYTES,
    CNP_BYTES,
    Color,
    HEADER_BYTES,
    IntRecord,
    Packet,
    PacketKind,
    TltMark,
)


def test_important_marks_map_to_green():
    for mark in (
        TltMark.IMPORTANT_DATA,
        TltMark.IMPORTANT_ECHO,
        TltMark.IMPORTANT_CLOCK_DATA,
        TltMark.IMPORTANT_CLOCK_ECHO,
        TltMark.CONTROL,
    ):
        assert color_for_mark(mark) == Color.GREEN


def test_unmarked_data_maps_to_red():
    assert color_for_mark(TltMark.NONE) == Color.RED


def test_apply_acl_stamps_color():
    pkt = Packet(1, 0, 1, PacketKind.DATA, payload=100)
    pkt.mark = TltMark.IMPORTANT_DATA
    apply_acl(pkt)
    assert pkt.color == Color.GREEN
    pkt.mark = TltMark.NONE
    apply_acl(pkt)
    assert pkt.color == Color.RED


def test_data_packet_wire_size():
    pkt = Packet(1, 0, 1, PacketKind.DATA, payload=1000)
    assert pkt.size == 1000 + HEADER_BYTES


def test_control_packet_sizes():
    assert Packet(1, 0, 1, PacketKind.ACK).size == ACK_BYTES
    assert Packet(1, 0, 1, PacketKind.NACK).size == ACK_BYTES
    assert Packet(1, 0, 1, PacketKind.CNP).size == CNP_BYTES


def test_explicit_size_override():
    pkt = Packet(1, 0, 1, PacketKind.DATA, payload=10, size=99)
    assert pkt.size == 99


def test_int_record_accumulation():
    pkt = Packet(1, 0, 1, PacketKind.DATA, payload=10)
    assert pkt.int_records is None
    pkt.add_int_record(IntRecord(100, 200, 300, 400))
    pkt.add_int_record(IntRecord(1, 2, 3, 4))
    assert len(pkt.int_records) == 2
    assert pkt.int_records[0].qlen == 100
