"""Tests for the RPC / KV-store / web-tier application layer."""

from repro.apps.kvstore import KvClient, KvServer
from repro.apps.rpc import RpcNode
from repro.apps.webtier import WebTier
from repro.core.config import TltConfig
from repro.transport.base import TransportConfig

from tests.util import small_star


def cfg():
    return TransportConfig(base_rtt_ns=4_000)


def test_rpc_message_delivery_triggers_handler():
    net = small_star()
    a = RpcNode(net, 0, "tcp", cfg())
    b = RpcNode(net, 1, "tcp", cfg())
    got = []
    b.on_message(lambda src, size, meta: got.append((src, size, meta)))
    a.send(b, 5_000, meta={"tag": "hello"})
    net.engine.run()
    assert got == [(0, 5_000, {"tag": "hello"})]
    assert b.messages_received == 1


def test_rpc_delayed_send():
    net = small_star()
    a = RpcNode(net, 0, "tcp", cfg())
    b = RpcNode(net, 1, "tcp", cfg())
    times = []
    b.on_message(lambda *args: times.append(net.engine.now))
    a.send(b, 1_000, delay_ns=1_000_000)
    net.engine.run()
    assert times and times[0] >= 1_000_000


def test_kv_set_and_get_roundtrip():
    net = small_star()
    server = KvServer(RpcNode(net, 0, "tcp", cfg()))
    client = KvClient(RpcNode(net, 1, "tcp", cfg()), server)
    client.set("k", 32_000)
    net.engine.run()
    assert server.store["k"] == 32_000
    assert len(client.response_times) == 1
    assert client.outstanding == 0

    client.get("k")
    net.engine.run()
    assert len(client.response_times) == 2


def test_kv_get_missing_key_replies():
    net = small_star()
    server = KvServer(RpcNode(net, 0, "tcp", cfg()))
    client = KvClient(RpcNode(net, 1, "tcp", cfg()), server)
    client.get("missing")
    net.engine.run()
    assert len(client.response_times) == 1


def test_kv_reply_callback():
    net = small_star()
    server = KvServer(RpcNode(net, 0, "tcp", cfg()))
    client = KvClient(RpcNode(net, 1, "tcp", cfg()), server)
    done = []
    client.set("k", 1_000, on_reply=done.append)
    net.engine.run()
    assert done == [0]


def test_kv_set_response_time_scales_with_value():
    net = small_star()
    server = KvServer(RpcNode(net, 0, "tcp", cfg()))
    client = KvClient(RpcNode(net, 1, "tcp", cfg()), server)
    client.set("small", 1_000)
    net.engine.run()
    client.set("big", 500_000)
    net.engine.run()
    assert client.response_times[1] > client.response_times[0]


def test_webtier_all_requests_answered():
    net = small_star(num_hosts=10)
    tier = WebTier(net, "dctcp", cfg(), num_web_servers=8, value_size=32_000)
    tier.issue_requests(24)
    net.engine.run(until=5_000_000_000)
    assert tier.outstanding == 0
    assert len(tier.result.response_times_ns) == 24
    assert tier.result.p99_ms() > 0


def test_webtier_with_tlt_no_timeouts_under_fanin():
    net = small_star(num_hosts=10, buffer_bytes=400_000, color_threshold_bytes=100_000)
    tier = WebTier(net, "dctcp", cfg(), tlt=TltConfig(), num_web_servers=8)
    tier.issue_requests(64)
    net.engine.run(until=5_000_000_000)
    assert tier.outstanding == 0
    assert net.stats.timeouts == 0


def test_webtier_requires_enough_hosts():
    import pytest

    net = small_star(num_hosts=4)
    with pytest.raises(ValueError):
        WebTier(net, "tcp", cfg(), num_web_servers=8)
