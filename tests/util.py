"""Shared test helpers."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.node import Interceptor
from repro.net.packet import Packet
from repro.net.topology import Network, TopologyParams, star
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig


def small_star(num_hosts: int = 4, delay_ns: int = 1_000, **switch_kwargs) -> Network:
    """A small star network with microsecond-scale RTTs for fast tests."""
    switch_kwargs.setdefault("buffer_bytes", 1_000_000)
    params = TopologyParams(
        switch_config=SwitchConfig(**switch_kwargs),
        host_link_delay_ns=delay_ns,
        fabric_link_delay_ns=delay_ns,
    )
    return star(num_hosts=num_hosts, params=params)


class PacketTap(Interceptor):
    """Observe every packet arriving at a device, then forward it.

    Replaces the old ``device.receive = wrapper`` test idiom, which
    broke whenever anything else (audit toggling, another wrapper)
    rebound the receive path.
    """

    def __init__(self, device, fn: Callable[[Packet], None]):
        self.device = device
        self._fn = fn
        device.add_interceptor(self)

    def on_packet(self, packet: Packet, in_port, forward) -> None:
        self._fn(packet)
        forward(packet, in_port)


class DropFilter(Interceptor):
    """Deterministically drop selected packets at a switch.

    ``predicate(packet)`` returning True drops the packet (and counts
    it). Use ``drop_once(selector)`` helpers to drop the first packet
    matching a condition exactly once. Installed on the switch's
    interceptor chain, so it survives audit toggling and composes with
    fault injection.
    """

    def __init__(self, switch):
        self.switch = switch
        self.dropped: List[Packet] = []
        self._predicates: List[Callable[[Packet], bool]] = []
        switch.add_interceptor(self)

    def add(self, predicate: Callable[[Packet], bool]) -> None:
        self._predicates.append(predicate)

    def drop_once(self, predicate: Callable[[Packet], bool]) -> None:
        armed = [True]

        def once(packet: Packet) -> bool:
            if armed[0] and predicate(packet):
                armed[0] = False
                return True
            return False

        self.add(once)

    def drop_seq_once(self, seq: int) -> None:
        """Drop the next DATA packet with this sequence number."""
        from repro.net.packet import PacketKind

        self.drop_once(lambda p: p.kind == PacketKind.DATA and p.seq == seq)

    def on_packet(self, packet: Packet, in_port, forward) -> None:
        for predicate in self._predicates:
            if predicate(packet):
                # Kept (not recycled): tests inspect dropped packets.
                self.dropped.append(packet)
                return
        forward(packet, in_port)


# -- failure-injection metrics for the parallel job runner ------------------
# These must live at module level so worker processes can resolve them
# by "tests.util:<name>" references (see repro.experiments.parallel).


def crashing_metrics(result):
    """Always raises — exercises in-worker exception reporting."""
    raise RuntimeError("injected metrics failure")


def exiting_metrics(result):
    """Hard-kills the worker process without a traceback."""
    import os

    os._exit(17)


def sleeping_metrics(result):
    """Blocks far past any test timeout — exercises the watchdog."""
    import time

    time.sleep(600)
    return result.summary_row()


def flaky_once_metrics(result):
    """Crashes the worker on first use, succeeds on retry.

    The attempt marker file is named by the TLT_TEST_FLAKY env var
    (inherited by workers), so only the first attempt dies.
    """
    import os

    marker = os.environ["TLT_TEST_FLAKY"]
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return result.summary_row()


def fail_on_seed2_metrics(result):
    """Fails only for seed 2 — exercises partial-failure averaging."""
    if result.config.seed == 2:
        raise RuntimeError("seed 2 rejected")
    return result.summary_row()


def run_flow(
    net: Network,
    transport: str,
    size: int,
    src: int = 0,
    dst: int = 1,
    tlt=None,
    config: Optional[TransportConfig] = None,
    until: int = 2_000_000_000,
    group: str = "fg",
):
    """Create one flow, run the engine, return (sender, receiver, record)."""
    from repro.transport.registry import create_flow

    spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=dst, size=size, group=group)
    config = config or TransportConfig(base_rtt_ns=4 * net.hosts[0].port.delay_ns)
    sender, receiver = create_flow(transport, net, spec, config, tlt)
    net.engine.run(until=until)
    return sender, receiver, net.stats.flows[spec.flow_id]
