"""Batched link delivery: heap-entry contract + delivery-order property.

The batched path (``repro.net.link`` module docstring) keeps frames in a
per-port in-flight FIFO and arms *one* heap entry per port, keyed by the
FIFO head's ``(arrival_ns, wire_seq)``. These tests pin down:

- the raw tuple layouts the two engines and the compiled kernels agree
  on — ``(time, seq, fn, args)`` anonymous heap entries and
  ``(arrival_ns, wire_seq, kind, payload)`` in-flight entries — so a
  field reorder cannot slip through as "just a refactor";
- the *armed iff non-empty* invariant of the in-flight deque;
- the ordering property the whole design rests on: for any emission
  schedule, including adversarial same-nanosecond bursts, the batched
  path delivers frames at exactly the ``(time, wire_seq)`` pop order of
  the legacy one-heap-entry-per-frame path, with an identical
  events-processed count.
"""

import random

import pytest

from repro.net import link
from repro.net.link import FRAME_PACKET, FRAME_PAUSE, Port, connect, set_batching
from repro.sim.engine import WIRE_SEQ_BASE, Engine
from repro.sim.units import tx_time_ns

RATE = 100_000_000_000  # 100 Gbps
DELAY = 1_000  # ns


class _Device:
    """Minimal port owner: records deliveries, transmits nothing."""

    def __init__(self, engine):
        self.engine = engine
        self.log = []

    def poll(self, port):
        return None

    def receive(self, packet, port):
        self.log.append((self.engine.now, "data", packet))

    def receive_pause(self, duration_ns, port):
        self.log.append((self.engine.now, "pause", duration_ns))


class _FramePacket:
    """Stand-in wire frame (only ``size`` is read by the port)."""

    __slots__ = ("size", "label")

    def __init__(self, label, size=1500):
        self.size = size
        self.label = label


@pytest.fixture(autouse=True)
def _restore_batching():
    prev = link.batching_enabled()
    yield
    set_batching(prev)


def _link(batched):
    """A unidirectional a->b link with stub devices on both ends."""
    set_batching(batched)
    engine = Engine()
    tx, rx = _Device(engine), _Device(engine)
    a = Port(engine, tx, 0, RATE, DELAY)
    b = Port(engine, rx, 0, RATE, DELAY)
    connect(a, b)
    return engine, a, rx


# -- tuple-layout contract ---------------------------------------------------


def test_serialization_heap_entry_layout():
    engine, a, _rx = _link(batched=True)
    packet = _FramePacket("p0")
    a.owner.poll = lambda port: packet  # one packet, then busy stays set
    a.kick()
    entry = engine._queue[0]
    assert isinstance(entry, tuple) and len(entry) == 4
    time, seq, fn, args = entry
    assert time == engine.now + tx_time_ns(packet.size, RATE)
    assert seq < WIRE_SEQ_BASE  # engine sequence numbers, not wire keys
    assert fn is a._tx_cb
    assert args == (packet,)


def test_inflight_entry_and_drain_arming_layout():
    engine, a, _rx = _link(batched=True)
    packet = _FramePacket("p0")
    first_seq = a.wire_seq
    assert first_seq >= WIRE_SEQ_BASE  # per-port band above engine seqs
    a._tx_cb(packet)

    # In-flight FIFO entry: (arrival_ns, wire_seq, kind, payload).
    assert list(a._inflight) == [(engine.now + DELAY, first_seq, FRAME_PACKET, packet)]
    # Armed drain entry keyed by the FIFO head, with the shared empty
    # args tuple: (head_arrival, head_wire_seq, drain_cb, ()).
    assert engine._queue[0] == (engine.now + DELAY, first_seq, a._drain_cb, ())

    # A second emission extends the FIFO without re-arming.
    a._tx_cb(_FramePacket("p1"))
    assert len(a._inflight) == 2
    assert a._inflight[1][1] == first_seq + 1  # contiguous wire sequence
    assert len(engine._queue) == 1


def test_pause_frame_rides_the_inflight_fifo():
    engine, a, _rx = _link(batched=True)
    seq = a.wire_seq
    a.send_pause(500)
    assert list(a._inflight) == [(engine.now + DELAY, seq, FRAME_PAUSE, 500)]
    assert engine._queue[0] == (engine.now + DELAY, seq, a._drain_cb, ())


def test_drain_rearms_before_emptying():
    # armed iff non-empty: after draining the head, the next head must
    # be re-armed; after draining everything, no drain entry remains.
    engine, a, rx = _link(batched=True)
    a._tx_cb(_FramePacket("p0"))
    engine.run(max_events=1)
    assert not a._inflight and not engine._queue
    assert [kind for _, kind, _ in rx.log] == ["data"]


# -- delivery-order property -------------------------------------------------


def _run_schedule(batched, schedule):
    """Emit ``schedule`` on one port; return (delivery log, event count).

    ``schedule`` is a list of ``(emit_ns, kind, label)``; emissions are
    scheduled before the run in list order, so both arms emit with
    identical engine sequence numbers.
    """
    engine, a, rx = _link(batched)
    for emit_ns, kind, label in schedule:
        if kind == "data":
            engine.schedule_anon(emit_ns, a._tx_cb, _FramePacket(label))
        else:
            engine.schedule_anon(emit_ns, a.send_pause, label)
    engine.run()
    log = [(t, kind, p.label if kind == "data" else p) for t, kind, p in rx.log]
    return log, engine.events_processed


def _random_schedule(rng, frames):
    # Times drawn from a deliberately tiny set so same-ns emission
    # bursts (hence same-ns arrival bursts) are common, not rare.
    times = sorted(rng.choice(range(0, 40, 4)) for _ in range(frames))
    schedule = []
    for i, t in enumerate(times):
        if rng.random() < 0.3:
            schedule.append((t, "pause", rng.choice([0, 100, 500, 65535])))
        else:
            schedule.append((t, "data", f"f{i}"))
    return schedule


@pytest.mark.parametrize("seed", range(20))
def test_batched_matches_unbatched_pop_order(seed):
    rng = random.Random(seed)
    schedule = _random_schedule(rng, frames=40)
    batched_log, batched_events = _run_schedule(True, schedule)
    unbatched_log, unbatched_events = _run_schedule(False, schedule)
    assert batched_log == unbatched_log
    # The drain compensates events_processed per burst frame, so the
    # two paths agree on the engine's event count as well.
    assert batched_events == unbatched_events
    # Sanity on the property itself: delivery times are monotone and
    # every frame arrived exactly one propagation delay after emission.
    assert [t for t, _, _ in batched_log] == sorted(t for t, _, _ in batched_log)
    assert len(batched_log) == len(schedule)


def test_same_ns_burst_delivers_in_wire_sequence_order():
    # All frames emitted at the same instant arrive in the same ns; the
    # single drain call must deliver them in emission (wire-seq) order.
    schedule = [(10, "data", "a"), (10, "pause", 500), (10, "data", "b"),
                (10, "data", "c"), (10, "pause", 0)]
    log, _ = _run_schedule(True, schedule)
    assert log == [(10 + DELAY, "data", "a"), (10 + DELAY, "pause", 500),
                   (10 + DELAY, "data", "b"), (10 + DELAY, "data", "c"),
                   (10 + DELAY, "pause", 0)]
