"""Assorted unit tests: PFC config resolution, Poisson statistics,
DCQCN byte counter, engine RNG registry reuse."""

import statistics

from repro.net.topology import star
from repro.sim.engine import Engine
from repro.switchsim.pfc import PfcConfig
from repro.transport.base import TransportConfig
from repro.transport.dcqcn import DcqcnRateControl
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import WEB_SERVER


def test_pfc_xoff_resolution_explicit():
    assert PfcConfig(xoff_bytes=12345).resolved_xoff(1_000_000, 10) == 12345


def test_pfc_xoff_resolution_derived():
    # Half the pool split across ports, floored at ~2 MTUs.
    assert PfcConfig().resolved_xoff(1_200_000, 12) == 50_000
    assert PfcConfig().resolved_xoff(10_000, 12) == 3_000


def test_poisson_interarrival_mean_matches_lambda():
    net = star(num_hosts=6)
    bg = BackgroundTraffic(net, WEB_SERVER, lambda s: None, load=0.4, num_flows=400)
    specs = bg.schedule()
    gaps = [b.start_ns - a.start_ns for a, b in zip(specs, specs[1:])]
    measured = statistics.fmean(gaps)
    expected = 1.0 / bg.lambda_per_ns
    assert abs(measured - expected) / expected < 0.25  # 400 samples


def test_dcqcn_byte_counter_triggers_increase():
    engine = Engine()
    config = TransportConfig(base_rtt_ns=4_000, dcqcn_byte_counter=10_000)
    rc = DcqcnRateControl(engine, config)
    rc.start()
    rc.on_cnp()
    rate_after_cut = rc.rc
    # Push a byte-counter's worth of traffic: fast-recovery increase.
    rc.on_bytes_sent(10_000)
    assert rc.byte_stage == 1
    assert rc.rc > rate_after_cut
    rc.stop()


def test_dcqcn_inactive_counter_ignored():
    engine = Engine()
    rc = DcqcnRateControl(engine, TransportConfig(base_rtt_ns=4_000))
    rc.on_bytes_sent(100_000_000)  # not started: must not blow up
    assert rc.byte_stage == 0


def test_min_rate_floor_respected():
    engine = Engine()
    config = TransportConfig(base_rtt_ns=4_000)
    rc = DcqcnRateControl(engine, config)
    rc.start()
    for _ in range(50):
        rc.on_cnp()
    assert rc.rc >= config.min_rate_bps
    rc.stop()


def test_network_flow_ids_monotonic():
    net = star(num_hosts=2)
    ids = [net.new_flow_id() for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
