"""Tests for fault injection and the ASCII renderers."""

import random

import pytest

from repro.core.config import TltConfig
from repro.net.faults import FaultInjector
from repro.net.packet import PacketKind
from repro.stats.ascii import ascii_cdf, ascii_histogram
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import run_flow, small_star


def test_injector_probability_validation():
    net = small_star()
    with pytest.raises(ValueError):
        FaultInjector(net.switches[0], 1.5)


def test_zero_rate_never_drops():
    net = small_star()
    injector = FaultInjector(net.switches[0], 0.0)
    _, _, record = run_flow(net, "tcp", size=50_000)
    assert record.completed
    assert injector.corrupted == 0


def test_full_rate_drops_everything():
    net = small_star()
    injector = FaultInjector(net.switches[0], 1.0)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=1_460)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run(until=10_000_000)
    assert injector.corrupted > 0
    assert not net.stats.flows[spec.flow_id].completed


def test_selector_limits_targets():
    net = small_star()
    injector = FaultInjector(
        net.switches[0], 1.0, selector=lambda p: p.kind == PacketKind.ACK
    )
    _, _, record = run_flow(net, "tcp", size=5_000, until=100_000_000)
    # Data flows through; only ACKs die, so the sender times out but the
    # receiver got everything.
    assert injector.corrupted > 0
    assert record.end_rx_ns is not None


def test_corruption_survivable_with_tlt_fallback():
    """A moderate corruption rate: TLT flows still complete (via RTO
    fallback when a green packet is corrupted)."""
    net = small_star()
    FaultInjector(net.switches[0], 0.02, random.Random(3))
    _, _, record = run_flow(net, "dctcp", size=100_000, tlt=TltConfig(),
                            until=20_000_000_000)
    assert record.completed


def test_ascii_cdf_output():
    text = ascii_cdf([1, 2, 3, 4, 100], label="demo", unit=" ms")
    assert "demo" in text
    assert "p50" in text and "p100" in text
    assert "#" in text
    assert ascii_cdf([], label="x") == "x: (no samples)"


def test_ascii_histogram_output():
    text = ascii_histogram(list(range(100)), bins=5, label="h")
    assert text.count("\n") == 5  # label + 5 buckets
    assert ascii_histogram([]) == ": (no samples)"
