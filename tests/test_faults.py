"""Tests for fault injection and the ASCII renderers."""

import random

import pytest

from repro.core.config import TltConfig
from repro.faults import FaultInjector
from repro.net.packet import PacketKind
from repro.stats.ascii import ascii_cdf, ascii_histogram
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import run_flow, small_star


def test_injector_probability_validation():
    net = small_star()
    with pytest.raises(ValueError):
        FaultInjector(net.switches[0], 1.5)


def test_zero_rate_never_drops():
    net = small_star()
    injector = FaultInjector(net.switches[0], 0.0)
    _, _, record = run_flow(net, "tcp", size=50_000)
    assert record.completed
    assert injector.corrupted == 0


def test_full_rate_drops_everything():
    net = small_star()
    injector = FaultInjector(net.switches[0], 1.0)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=1_460)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run(until=10_000_000)
    assert injector.corrupted > 0
    assert not net.stats.flows[spec.flow_id].completed


def test_selector_limits_targets():
    net = small_star()
    injector = FaultInjector(
        net.switches[0], 1.0, selector=lambda p: p.kind == PacketKind.ACK
    )
    _, _, record = run_flow(net, "tcp", size=5_000, until=100_000_000)
    # Data flows through; only ACKs die, so the sender times out but the
    # receiver got everything.
    assert injector.corrupted > 0
    assert record.end_rx_ns is not None


def test_corruption_survivable_with_tlt_fallback():
    """A moderate corruption rate: TLT flows still complete (via RTO
    fallback when a green packet is corrupted)."""
    net = small_star()
    FaultInjector(net.switches[0], 0.02, random.Random(3))
    _, _, record = run_flow(net, "dctcp", size=100_000, tlt=TltConfig(),
                            until=20_000_000_000)
    assert record.completed


def test_ascii_cdf_output():
    text = ascii_cdf([1, 2, 3, 4, 100], label="demo", unit=" ms")
    assert "demo" in text
    assert "p50" in text and "p100" in text
    assert "#" in text
    assert ascii_cdf([], label="x") == "x: (no samples)"


def test_ascii_histogram_output():
    text = ascii_histogram(list(range(100)), bins=5, label="h")
    assert text.count("\n") == 5  # label + 5 buckets
    assert ascii_histogram([]) == ": (no samples)"


# -- seeded corruption determinism (repro.faults.models) ----------------------


def _corrupted_set(seed):
    """Run one lossy flow; return the (flow, seq, color) fault-drop set."""
    from repro.audit import EventRing

    net = small_star()
    ring = EventRing(8192)
    net.stats.audit_ring = ring
    FaultInjector(net.switches[0], 0.05, seed=seed, stats=net.stats)
    run_flow(net, "tcp", size=100_000, until=30_000_000_000)
    return {
        (e["flow"], e["seq"], e["color"])
        for e in ring.to_list()
        if e["kind"] == "fault_drop"
    }


def test_different_seeds_corrupt_different_packet_sets():
    """The injector RNG derives from (scenario seed, device name): a
    --seeds sweep must sample *different* corruption patterns."""
    first, second = _corrupted_set(1), _corrupted_set(2)
    assert first and second
    assert first != second


def test_same_seed_corruption_is_reproducible():
    assert _corrupted_set(7) == _corrupted_set(7)


def test_fault_drops_use_fault_counters_not_congestion_counters():
    net = small_star()
    FaultInjector(net.switches[0], 1.0, stats=net.stats)
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=10_000)
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run(until=50_000_000)
    stats = net.stats
    assert stats.drops_fault > 0
    assert stats.drops_fault_bytes > 0
    # Congestion-loss accounting (what the §4 checker audits) untouched.
    assert stats.drops_green == 0 and stats.drops_red == 0
    assert stats.drop_bytes == 0


# -- loss models --------------------------------------------------------------


def test_gilbert_elliott_matches_stationary_loss_rate():
    from repro.faults import GilbertElliottLoss

    model = GilbertElliottLoss(p_enter=0.05, p_exit=0.2, loss_bad=1.0)
    rng = random.Random(1)
    decisions = [model.sample(rng) for _ in range(20_000)]
    stationary = 0.05 / (0.05 + 0.2)
    assert abs(sum(decisions) / len(decisions) - stationary) < 0.05


def test_gilbert_elliott_losses_are_bursty():
    from repro.faults import GilbertElliottLoss

    model = GilbertElliottLoss(p_enter=0.05, p_exit=0.2, loss_bad=1.0)
    rng = random.Random(2)
    decisions = [model.sample(rng) for _ in range(20_000)]
    losses = sum(decisions[:-1])
    consecutive = sum(1 for a, b in zip(decisions, decisions[1:]) if a and b)
    # P(loss | previous loss) ~= 1 - p_exit = 0.8, far above the ~0.2
    # stationary rate an i.i.d. model would give.
    assert consecutive / losses > 0.5


def test_gilbert_elliott_validates_probabilities():
    from repro.faults import GilbertElliottLoss

    with pytest.raises(ValueError):
        GilbertElliottLoss(p_enter=1.5, p_exit=0.1)
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_enter=0.1, p_exit=-0.1)


def test_make_model_dispatch_and_roundtrip():
    from repro.faults import BernoulliLoss, GilbertElliottLoss, make_model

    ge = make_model({"model": "gilbert_elliott", "p_enter": 0.01, "p_exit": 0.3})
    assert isinstance(ge, GilbertElliottLoss)
    assert make_model(ge.to_params()).to_params() == ge.to_params()
    bern = make_model({"rate": 0.25})
    assert isinstance(bern, BernoulliLoss)
    assert bern.probability == 0.25
    with pytest.raises(ValueError):
        make_model({"model": "solar_flare"})


def test_injector_rejects_model_and_probability_together():
    from repro.faults import BernoulliLoss

    net = small_star()
    with pytest.raises(ValueError):
        FaultInjector(net.switches[0], 0.5, model=BernoulliLoss(0.5))
    with pytest.raises(ValueError):
        FaultInjector(net.switches[0])


# -- fault schedules ----------------------------------------------------------


def test_schedule_roundtrip_and_sorting(tmp_path):
    from repro.faults import FaultSchedule

    sched = FaultSchedule.from_spec({"events": [
        {"time_ns": 500, "kind": "link_down", "target": "tor0:1"},
        {"time_ns": 100, "kind": "corruption_on", "target": "tor0",
         "params": {"model": "bernoulli", "rate": 0.001}},
    ]})
    assert [e.time_ns for e in sched.events] == [100, 500]
    path = tmp_path / "spec.json"
    sched.dump(str(path))
    from repro.faults.schedule import FaultSchedule as FS

    assert FS.load(str(path)).to_spec() == sched.to_spec()


def test_schedule_rejects_bad_events():
    from repro.faults import FaultEvent

    with pytest.raises(ValueError):
        FaultEvent(0, "meteor_strike")
    with pytest.raises(ValueError):
        FaultEvent(-5, "link_down")


def test_controller_rejects_unknown_targets():
    from repro.faults import FaultSchedule

    net = small_star()
    FaultSchedule.from_spec({"events": [
        {"time_ns": 10, "kind": "corruption_on", "target": "nosuch",
         "params": {"rate": 0.1}},
    ]}).install(net)
    with pytest.raises(ValueError):
        net.engine.run(until=1_000)

    net2 = small_star()
    FaultSchedule.from_spec({"events": [
        {"time_ns": 10, "kind": "link_down", "target": "tor0"},
    ]}).install(net2)
    with pytest.raises(ValueError):
        net2.engine.run(until=1_000)


def test_corruption_window_opens_and_closes():
    from repro.faults import FaultSchedule

    net = small_star()
    switch = net.switches[0]
    controller = FaultSchedule.from_spec({"events": [
        {"time_ns": 0, "kind": "corruption_on", "target": "tor0",
         "params": {"rate": 1.0}},
        {"time_ns": 200_000, "kind": "corruption_off", "target": "tor0"},
    ]}).install(net)
    _, _, record = run_flow(net, "tcp", size=20_000, until=60_000_000_000)
    # Total blackout while the window is open, full recovery after.
    assert record.completed
    assert net.stats.drops_fault > 0
    assert controller.injectors == {}  # window closed, injector detached
    assert switch.interceptors == ()


def _uplink(net, tor_name, spine_name):
    tor = net.device(tor_name)
    return next(
        p for p in tor.ports
        if p.peer is not None and p.peer.owner.name == spine_name
    )


def test_link_flap_reroutes_over_surviving_spine():
    """Two spines: cutting one ToR uplink mid-run must re-spread flows
    over the survivor (no blackout), then heal on link_up."""
    from repro.faults import FaultSchedule
    from repro.net.topology import leaf_spine

    net = leaf_spine(num_spines=2, num_tors=2, hosts_per_tor=2)
    port = _uplink(net, "tor0", "spine0")
    before = dict(net.device("tor0").fib._routes)
    controller = FaultSchedule.from_spec({"events": [
        {"time_ns": 50_000, "kind": "link_down",
         "target": f"tor0:{port.port_no}"},
        {"time_ns": 2_000_000, "kind": "link_up",
         "target": f"tor0:{port.port_no}"},
    ]}).install(net)
    # Cross-ToR flow spanning the flap window.
    _, _, record = run_flow(net, "tcp", size=500_000, src=0, dst=2,
                            until=60_000_000_000)
    assert record.completed
    assert net.stats.drops_green == 0  # reroute, not congestion loss
    survivor = _uplink(net, "tor0", "spine1")
    assert survivor.tx_packets > 0
    # FIB healed exactly: routes restored, blackholes gone.
    assert dict(net.device("tor0").fib._routes) == before
    assert controller.blackholes == {}
    assert not port.down and not port.peer.down


def test_link_down_without_alternate_path_blackholes_until_up():
    from repro.faults import FaultSchedule

    net = small_star()
    host_port = net.device("tor0").ports[1]  # tor0 -> host1 (dst side)
    FaultSchedule.from_spec({"events": [
        {"time_ns": 10_000, "kind": "link_down", "target": f"tor0:{host_port.port_no}"},
        {"time_ns": 3_000_000, "kind": "link_up", "target": f"tor0:{host_port.port_no}"},
    ]}).install(net)
    _, _, record = run_flow(net, "tcp", size=100_000, until=60_000_000_000)
    assert record.completed  # RTO carries the flow across the outage
    assert net.stats.drops_fault > 0
    assert net.stats.drops_green == 0


def test_switch_down_and_up():
    from repro.faults import FaultSchedule
    from repro.net.topology import leaf_spine

    net = leaf_spine(num_spines=2, num_tors=2, hosts_per_tor=2)
    controller = FaultSchedule.from_spec({"events": [
        {"time_ns": 50_000, "kind": "switch_down", "target": "spine0"},
        {"time_ns": 2_000_000, "kind": "switch_up", "target": "spine0"},
    ]}).install(net)
    _, _, record = run_flow(net, "tcp", size=500_000, src=0, dst=2,
                            until=60_000_000_000)
    assert record.completed
    assert controller.blackholes == {}
    spine = net.device("spine0")
    assert all(not p.down for p in spine.ports)
    assert spine.interceptors == ()


def test_pfc_storm_pauses_then_recovers():
    from repro.faults import FaultSchedule

    net = small_star()
    port = net.device("tor0").ports[1]  # egress toward the receiver
    FaultSchedule.from_spec({"events": [
        {"time_ns": 20_000, "kind": "pfc_storm", "target": "tor0:1",
         "params": {"duration_ns": 1_000_000}},
    ]}).install(net)
    _, _, record = run_flow(net, "tcp", size=200_000, until=60_000_000_000)
    assert record.completed
    assert net.stats.pause_frames > 0
    assert port.paused_ns >= 1_000_000  # the storm held the port down
    assert not port.paused  # and released it afterwards


def test_random_schedules_are_valid_and_reproducible():
    from repro.faults import FaultSchedule
    from repro.net.topology import leaf_spine

    net = leaf_spine(num_spines=2, num_tors=2, hosts_per_tor=2)
    specs = [
        FaultSchedule.random(random.Random(s), 2_000_000, net).to_spec()
        for s in range(6)
    ]
    assert specs[0] == FaultSchedule.random(
        random.Random(0), 2_000_000, net).to_spec()
    for spec in specs:
        assert spec["events"]
        for event in spec["events"]:
            assert event["time_ns"] <= 2_000_000


# -- property: faults never masquerade as congestion loss ---------------------


@pytest.mark.parametrize("chaos_seed", [0, 1, 2])
def test_any_random_schedule_keeps_green_congestion_drops_zero(chaos_seed):
    """Property check (§4): whatever faults a random schedule throws at
    an audited TLT run — corruption bursts, flaps, storms — the auditor
    stays silent and no green packet is ever *congestion*-dropped.
    Fault drops are accounted separately and may hit green packets."""
    from repro.experiments.scale import Scale
    from repro.experiments.scenarios import ScenarioConfig, build_network, run_scenario
    from repro.faults import FaultSchedule
    from repro.sim.rng import derive_seed

    scale = Scale("fault-prop", num_spines=2, num_tors=2, hosts_per_tor=2,
                  bg_flows=8, incast_events=1, incast_flows_per_sender=2)
    config = ScenarioConfig(transport="dctcp", tlt=True, scale=scale,
                            seed=chaos_seed + 1, audit=True)
    rng = random.Random(derive_seed(chaos_seed, "fault.chaos.test"))
    spec = FaultSchedule.random(rng, 2_000_000, build_network(config)).to_spec()

    from dataclasses import replace

    result = run_scenario(replace(config, faults=spec))  # AuditError would raise
    stats = result.stats
    assert result.faults is not None
    assert len(result.faults.applied) == len(spec["events"])
    assert stats.drops_green == 0
    assert stats.drops_fault == stats.drops_fault_green + stats.drops_fault_red


def test_net_faults_shim_emits_deprecation_warning():
    """The repro.net.faults compatibility shim warns on import and
    still re-exports the real repro.faults names."""
    import importlib
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.net.faults as shim

        # Reload so the warning fires even if the shim was already
        # imported earlier in the session.
        importlib.reload(shim)
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.faults" in str(w.message)
        for w in caught
    )
    assert shim.FaultInjector is FaultInjector
