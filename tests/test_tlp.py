"""Tests for Tail Loss Probe (the paper's TLP baseline)."""

from repro.sim.units import MILLIS
from repro.transport.base import TransportConfig

from tests.util import DropFilter, run_flow, small_star


def tlp_config(**kw):
    kw.setdefault("tlp_enabled", True)
    kw.setdefault("base_rtt_ns", 4_000)
    return TransportConfig(**kw)


def test_tlp_converts_tail_loss_into_fast_recovery():
    """A lost tail segment is repaired by the probe (well before RTO)."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 9)  # tail of the initial window
    _, _, record = run_flow(net, "tcp", size=14_600, config=tlp_config())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 4 * MILLIS


def test_tlp_probe_loss_still_times_out():
    """The paper's criticism: once the probe is lost too, TLP cannot
    prevent the timeout."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 9)  # tail
    drop.drop_seq_once(1460 * 9)  # and the probe retransmission
    _, _, record = run_flow(net, "tcp", size=14_600, config=tlp_config())
    assert record.completed
    assert record.timeouts >= 1


def test_tlp_does_not_fire_without_outstanding_data():
    net = small_star()
    sender, _, record = run_flow(net, "tcp", size=14_600, config=tlp_config())
    assert record.completed
    assert record.retx_bytes == 0  # no spurious probes after completion


def test_tlp_one_probe_per_flight():
    net = small_star()
    drop = DropFilter(net.switches[0])
    for i in range(10):
        drop.drop_seq_once(1460 * i)  # whole window lost
    _, _, record = run_flow(net, "tcp", size=14_600, config=tlp_config())
    assert record.completed
    # One probe (one segment) per flight, then normal recovery.
    assert record.timeouts <= 2
