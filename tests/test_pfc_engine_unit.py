"""Unit tests for the PFC engine state machine (no transports)."""

from repro.net.packet import Packet, PacketKind
from repro.net.topology import TopologyParams, star
from repro.switchsim.pfc import PfcConfig, max_pause_ns
from repro.switchsim.switch import SwitchConfig


def pfc_net(xoff=10_000):
    params = TopologyParams(
        host_link_delay_ns=1_000,
        switch_config=SwitchConfig(
            buffer_bytes=1_000_000,
            pfc=PfcConfig(enabled=True, xoff_bytes=xoff),
        ),
    )
    return star(num_hosts=3, params=params)


def _data(flow, src, dst, seq=0):
    return Packet(flow, src, dst, PacketKind.DATA, seq=seq, payload=1452)


def test_xoff_crossing_asserts_pause():
    net = pfc_net(xoff=3_000)
    switch = net.switches[0]
    # Stuff the egress queue via direct receives from host 0's port.
    in_port = net.host(0).port.peer
    for i in range(5):
        switch.receive(_data(9, 0, 2, seq=i), in_port)
    assert switch.pfc.asserted.get(in_port.port_no)
    assert switch.pfc.pause_frames_sent >= 1


def test_xon_crossing_sends_resume():
    net = pfc_net(xoff=3_000)
    switch = net.switches[0]
    in_port = net.host(0).port.peer
    for i in range(5):
        switch.receive(_data(9, 0, 2, seq=i), in_port)
    net.engine.run(until=10_000_000)  # queue drains to host 2
    assert not switch.pfc.asserted.get(in_port.port_no)
    assert switch.pfc.resume_frames_sent >= 1
    assert switch.pfc.ingress_bytes[in_port.port_no] == 0


def test_pause_refreshed_while_above_xoff():
    """While the ingress stays above XOFF, PAUSE is re-sent before the
    quanta expire (so the upstream never resumes spuriously)."""
    net = pfc_net(xoff=3_000)
    switch = net.switches[0]
    in_port = net.host(0).port.peer
    # Pause host 2's drain first so the queue cannot empty.
    switch.ports[2].apply_pause(10 * max_pause_ns(40_000_000_000))
    for i in range(8):
        switch.receive(_data(9, 0, 2, seq=i), in_port)
    first_count = switch.pfc.pause_frames_sent
    net.engine.run(until=2 * max_pause_ns(40_000_000_000))
    assert switch.pfc.pause_frames_sent > first_count  # refreshed


def test_per_ingress_isolation():
    """Only the congested ingress port is paused."""
    net = pfc_net(xoff=3_000)
    switch = net.switches[0]
    port0 = net.host(0).port.peer
    for i in range(5):
        switch.receive(_data(9, 0, 2, seq=i), port0)
    port1 = net.host(1).port.peer
    assert switch.pfc.asserted.get(port0.port_no)
    assert not switch.pfc.asserted.get(port1.port_no, False)
