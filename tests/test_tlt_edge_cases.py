"""Edge-case protocol tests for TLT (§5.3 discussion scenarios)."""

import pytest

from repro.core.config import TltConfig
from repro.net.packet import PacketKind, TltMark
from repro.sim.units import MILLIS
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

from tests.util import DropFilter, PacketTap, run_flow, small_star


def test_masking_losses_scenario():
    """§5.3's masking discussion: consecutive red losses behind the
    important packet are detected via its Echo and repaired by clocked
    retransmissions. Whether congestion control saw the loss or not is
    immaterial — there is nothing left to send — and the paper argues
    this is harmless. Here: a 3-packet flow loses its two middle/red
    packets; the flow must complete with zero timeouts. (Dropping the
    *last* packet instead kills the green Important Data itself — that
    case legitimately falls back to the RTO and is covered by
    test_important_packet_loss_falls_back_to_rto.)"""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(0)
    drop.drop_seq_once(1460)
    _, _, record = run_flow(net, "tcp", size=3 * 1460, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 1 * MILLIS


def test_two_packet_flow_first_packet_lost():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(0)
    _, _, record = run_flow(net, "tcp", size=2 * 1460, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0


def test_single_packet_flow_is_important():
    """A 1-packet flow's only packet is the window tail: green."""
    net = small_star()
    greens = []
    switch = net.switches[0]
    def tap(packet):
        if packet.kind == PacketKind.DATA:
            greens.append(packet.mark)

    PacketTap(switch, tap)
    _, _, record = run_flow(net, "tcp", size=100, tlt=TltConfig())
    assert record.completed
    assert greens == [TltMark.IMPORTANT_DATA]


def test_flow_spec_validation():
    with pytest.raises(ValueError):
        FlowSpec(flow_id=1, src=0, dst=1, size=0)
    with pytest.raises(ValueError):
        FlowSpec(flow_id=1, src=2, dst=2, size=10)
    with pytest.raises(ValueError):
        FlowSpec(flow_id=1, src=0, dst=1, size=10, start_ns=-5)


def test_unknown_transport_rejected():
    net = small_star()
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=10)
    with pytest.raises(KeyError):
        create_flow("quic", net, spec)


def test_tlt_with_tiny_windows():
    """cwnd clamped to one segment: clocking keeps the flow moving."""
    net = small_star()
    config = TransportConfig(base_rtt_ns=4_000, init_cwnd_segments=1,
                             max_cwnd_bytes=1460)
    _, _, record = run_flow(net, "tcp", size=30_000, tlt=TltConfig(), config=config)
    assert record.completed
    assert record.timeouts == 0


def test_tlt_stats_idempotent_after_completion():
    """Duplicate ACKs arriving after completion must not disturb
    counters or crash."""
    net = small_star()
    sender, receiver, record = run_flow(net, "tcp", size=5_000, tlt=TltConfig())
    assert record.completed
    from repro.net.packet import Packet

    dup = Packet(record.flow_id, record.dst, record.src, PacketKind.ACK, ack=5_000)
    sender.on_packet(dup)
    net.engine.run()
    assert record.completed


def test_many_consecutive_losses_recovered_by_clocking_rounds():
    """A deep run of red losses including repeated retransmission
    failures: TLT needs several clocking rounds but no timeout."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    for seq in (1460 * 2, 1460 * 3, 1460 * 4, 1460 * 5):
        drop.drop_seq_once(seq)
        drop.drop_seq_once(seq)  # the first retransmission too
    _, _, record = run_flow(net, "tcp", size=14_600, tlt=TltConfig())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 3 * MILLIS
