"""Behavioral tests for the RoCE family (DCQCN, go-back-N, IRN, HPCC)."""

from repro.net.packet import PacketKind
from repro.sim.units import MILLIS
from repro.switchsim.ecn import RedEcn
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.dcqcn import DcqcnRateControl
from repro.transport.registry import create_flow
from repro.sim.engine import Engine

from tests.util import DropFilter, PacketTap, run_flow, small_star

import pytest

# Taps in this module retain Packet objects across the run.
pytestmark = pytest.mark.usefixtures("no_packet_pool")


import random


def roce_config(**kw):
    kw.setdefault("base_rtt_ns", 4_000)
    return TransportConfig(**kw)


def test_dcqcn_flow_completes():
    net = small_star()
    _, _, record = run_flow(net, "dcqcn", size=100_000, config=roce_config())
    assert record.completed
    assert record.timeouts == 0


def test_all_roce_variants_complete():
    for name in ("dcqcn", "dcqcn-sack", "irn", "hpcc"):
        net = small_star(int_enabled=True)
        _, _, record = run_flow(net, name, size=50_000, config=roce_config())
        assert record.completed, name


def test_gbn_receiver_nacks_out_of_order():
    net = small_star()
    nacks = []
    switch = net.switches[0]
    def tap(packet):
        if packet.kind == PacketKind.NACK:
            nacks.append(packet)

    PacketTap(switch, tap)
    drop = DropFilter(switch)
    drop.drop_seq_once(3)
    _, _, record = run_flow(net, "dcqcn", size=50_000, config=roce_config())
    assert record.completed
    assert nacks
    assert nacks[0].ack == 3  # expected PSN


def test_gbn_retransmits_everything_from_hole():
    """Go-back-N resends the hole and everything after it."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(3)
    _, _, record = run_flow(net, "dcqcn", size=50_000, config=roce_config())
    # 50 packets; losing PSN 3 rewinds, so retx covers >1 packet.
    assert record.retx_bytes > 1_000


def test_sack_mode_retransmits_only_hole():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(3)
    _, _, record = run_flow(net, "dcqcn-sack", size=50_000, config=roce_config())
    assert record.completed
    assert record.timeouts == 0
    assert record.retx_bytes == 1_000  # exactly one packet


def test_tail_loss_needs_timeout_without_tlt():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_once(lambda p: p.kind == PacketKind.DATA and p.seq == 49)
    _, _, record = run_flow(net, "dcqcn", size=50_000, config=roce_config())
    assert record.completed
    assert record.timeouts >= 1
    assert record.fct_ns > 4 * MILLIS  # static 4 ms RoCE RTO


def test_irn_window_capped_at_bdp():
    net = small_star()
    config = roce_config()
    spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=500_000)
    sender, _ = create_flow("irn", net, spec, config)
    bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
    assert sender.window_cap_bytes == bdp
    max_pipe = [0]
    original = sender._transmit

    def spy(psn, clock_mark=False):
        original(psn, clock_mark)
        max_pipe[0] = max(max_pipe[0], sender.pipe)

    sender._transmit = spy
    net.engine.run()
    assert max_pipe[0] <= bdp + 1_048  # one packet of slack


def test_cnp_reduces_dcqcn_rate():
    net = small_star(ecn=RedEcn(2_000, 10_000, 1.0, random.Random(3)))
    config = roce_config()
    senders = []
    for src in (0, 1):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=2, size=400_000)
        senders.append(create_flow("dcqcn", net, spec, config)[0])
    rates = []
    for s in senders:
        original = s.rate_ctrl.on_cnp

        def spy(orig=original, sender=s):
            orig()
            rates.append(sender.rate_ctrl.rc)

        s.rate_ctrl.on_cnp = spy
    net.engine.run()
    assert rates, "expected CNPs under congestion"
    assert min(rates) < config.link_rate_bps


def test_dcqcn_rate_machine_cut_and_recover():
    engine = Engine()
    config = roce_config()
    rc = DcqcnRateControl(engine, config)
    rc.start()
    rc.on_cnp()
    after_cut = rc.rc
    assert after_cut == config.link_rate_bps * 0.5  # alpha=1 -> halved
    assert rc.alpha > 0.99
    # Five timer periods of fast recovery move Rc back toward Rt.
    engine.run(until=6 * config.dcqcn_rate_timer_ns)
    assert rc.rc > after_cut
    rc.stop()


def test_dcqcn_alpha_decays_without_cnp():
    engine = Engine()
    rc = DcqcnRateControl(engine, roce_config())
    rc.start()
    rc.on_cnp()
    alpha0 = rc.alpha
    engine.run(until=1_000_000)  # many alpha periods
    assert rc.alpha < alpha0
    rc.stop()


def test_dcqcn_hyper_increase_reaches_line_rate():
    engine = Engine()
    config = roce_config()
    rc = DcqcnRateControl(engine, config)
    rc.start()
    rc.on_cnp()
    engine.run(until=100 * config.dcqcn_rate_timer_ns)
    assert rc.rc > 0.95 * config.link_rate_bps
    rc.stop()


def test_hpcc_window_shrinks_under_congestion():
    net = small_star(int_enabled=True)
    config = roce_config()
    senders = []
    for src in (0, 1):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=2, size=400_000)
        senders.append(create_flow("hpcc", net, spec, config)[0])
    net.engine.run()
    bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
    # Two competing flows: each HPCC window must end below the BDP.
    assert all(s.hpcc.window < bdp for s in senders)


def test_hpcc_single_flow_keeps_high_window():
    net = small_star(int_enabled=True)
    config = roce_config()
    sender, _, record = run_flow(net, "hpcc", size=400_000, config=config)
    assert record.completed
    bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
    assert sender.hpcc.window > bdp // 4


def test_roce_receiver_acks_every_packet():
    net = small_star()
    acks = [0]
    switch = net.switches[0]
    def tap(packet):
        if packet.kind == PacketKind.ACK:
            acks[0] += 1

    PacketTap(switch, tap)
    run_flow(net, "dcqcn", size=50_000, config=roce_config())
    assert acks[0] >= 50  # one per data packet


def test_sack_lost_retransmission_recovered_by_reorder_timer():
    """The silence pattern: a retransmission is lost again and no
    further ACKs arrive (everything after the hole was delivered). The
    RACK-style reorder timer must re-mark and resend it well before the
    4 ms RTO fires."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(3)
    drop.drop_seq_once(3)  # the retransmission too
    _, _, record = run_flow(net, "dcqcn-sack", size=20_000, config=roce_config())
    assert record.completed
    assert record.timeouts == 0
    assert record.fct_ns < 1 * MILLIS


def test_last_packet_smaller_payload():
    net = small_star()
    _, _, record = run_flow(net, "dcqcn-sack", size=2_500, config=roce_config())
    assert record.completed
    assert record.tx_bytes == 2_500  # 1000 + 1000 + 500
