"""Tests for pluggable admission policies (repro.switchsim.policy).

Three groups:

- **Parity** — the open-coded default fast path and the generic
  ``AdmissionPolicy`` dispatch must be indistinguishable when the
  policy is Choudhury–Hahne + static-K: identical counters on crafted
  traffic, identical whole-scenario determinism fingerprints, and
  identical ECN boundary behaviour, across all four receive variants
  (fast/audited × open-coded/policy). This is what lets the switch
  keep its hot path while the policy lab rides the same pipeline.
- **Policies** — spec parsing, per-switch instantiation, the adaptive-K
  controller's retune/clamp behaviour, and the per-switch name-seeded
  ECN RNG streams.
- **Property** — random traffic through every registered policy under
  the auditor: buffer conservation and color accounting hold, and no
  policy ever congestion-drops a green packet via the color check.
"""

import random

import pytest

from repro.audit import Auditor
from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, build_network
from repro.net.packet import Color, Packet, PacketKind
from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.ecn import RedEcn, StepEcn
from repro.switchsim.policy import (
    POLICIES,
    BShare,
    ChoudhuryHahne,
    TinyBuffer,
    make_policy,
)
from tests.test_determinism import EXPECTED, fingerprint
from tests.util import small_star


def _data(flow, src, dst, payload=1452, color=Color.GREEN, seq=0, ecn=False):
    pkt = Packet(flow, src, dst, PacketKind.DATA, seq=seq, payload=payload)
    pkt.color = color
    pkt.ecn_capable = ecn
    return pkt


# -- spec parsing -------------------------------------------------------------


def test_make_policy_default_is_choudhury_hahne():
    policy = make_policy(None)
    assert isinstance(policy, ChoudhuryHahne)


def test_make_policy_by_name_and_dict():
    assert isinstance(make_policy("bshare"), BShare)
    policy = make_policy({"name": "tiny-buffer", "cap_bytes": 123})
    assert isinstance(policy, TinyBuffer)
    assert policy.cap_bytes == 123


def test_make_policy_returns_fresh_instances():
    # A shared SwitchConfig must never share policy state.
    assert make_policy("bshare") is not make_policy("bshare")


def test_make_policy_rejects_instances_and_bad_specs():
    with pytest.raises(TypeError):
        make_policy(BShare())
    with pytest.raises(TypeError):
        make_policy(42)
    with pytest.raises(ValueError):
        make_policy("no-such-policy")
    with pytest.raises(ValueError):
        make_policy({"cap_bytes": 1})  # missing "name"
    with pytest.raises(ValueError):
        make_policy({"name": "bshare", "target_delay_ns": 0})


def test_every_registered_policy_builds_a_switch():
    for name in POLICIES:
        net = small_star(color_threshold_bytes=4_000, admission=name)
        assert net.switches[0].policy.name == name
        assert net.switches[0].policy.invariants() == []


# -- parity: open-coded default vs generic policy dispatch --------------------


def _drive_mixed_burst(net):
    """Crafted burst exercising every admission outcome: red color
    drops, dynamic-threshold drops, and clean green delivery."""
    delivered = []

    class Sink:
        def on_packet(self, packet):
            delivered.append(packet.flow_id)

    sink = Sink()
    for flow in (70, 71):
        net.host(2).register_endpoint(flow, sink)
    for i in range(30):
        net.host(0).send(_data(70, 0, 2, color=Color.RED, seq=i, ecn=True))
        net.host(1).send(_data(71, 1, 2, color=Color.GREEN, seq=i, ecn=True))
    net.engine.run()
    return delivered


def _switch_counters(net):
    sw = net.switches[0]
    return {
        "drops_red": net.stats.drops_red,
        "drops_green": net.stats.drops_green,
        "drop_bytes": net.stats.drop_bytes,
        "ecn_marks": net.stats.ecn_marks,
        "sw_drops_red": sw.drops_red,
        "sw_drops_green": sw.drops_green,
        "buffer_used": sw.buffer.used,
        "buffer_peak": sw.buffer.peak_used,
        "max_occ": [q.max_occupancy for q in sw.queues],
        "max_red": [q.max_red_bytes for q in sw.queues],
        "dequeued": [q.dequeued_bytes for q in sw.queues],
    }


def _parity_net(admission, audited):
    net = small_star(buffer_bytes=20_000, color_threshold_bytes=3_000,
                     ecn=StepEcn(2_000), admission=admission)
    if audited:
        Auditor(net).install()
    return net


@pytest.mark.parametrize("audited", [False, True])
def test_default_and_policy_paths_produce_identical_counters(audited):
    nets = [_parity_net(None, audited), _parity_net("ch-static-k", audited)]
    results = [(_drive_mixed_burst(net), _switch_counters(net)) for net in nets]
    (delivered_a, counters_a), (delivered_b, counters_b) = results
    assert delivered_a == delivered_b
    assert counters_a == counters_b
    # The burst actually exercised drops and marks, or parity is vacuous.
    assert counters_a["drops_red"] > 0
    assert counters_a["ecn_marks"] > 0
    assert counters_a["buffer_used"] == 0


def test_explicit_ch_policy_matches_pinned_fingerprint():
    # The strongest parity statement: a whole TINY scenario through the
    # generic dispatch reproduces the open-coded path's pinned
    # fingerprint bit-for-bit.
    base = dict(transport="dctcp", tlt=True, scale=TINY, seed=3, audit=False)
    explicit = fingerprint(ScenarioConfig(admission="ch-static-k", **base))
    assert explicit == EXPECTED["dctcp_tlt"]


def test_shared_buffer_canonical_methods_match_open_coded_accounting():
    # The open-coded enqueue/dequeue arithmetic in Switch must agree
    # with SharedBuffer.reserve/release (which the policy path uses).
    canonical = SharedBuffer(10_000)
    used = peak = 0
    for size in (3_000, 4_000, -5_000, 2_500, -4_500):
        if size >= 0:
            canonical.reserve(size)
            used += size
            peak = max(peak, used)
        else:
            canonical.release(-size)
            used += size
        assert (canonical.used, canonical.peak_used) == (used, peak)
    canonical.release(canonical.used)
    with pytest.raises(AssertionError):
        canonical.release(1)
    with pytest.raises(AssertionError):
        SharedBuffer(100).reserve(101)


# -- parity: ECN boundary semantics across all four receive variants ---------


def _mark_pattern(net, payload=952, count=3):
    """Enqueue ``count`` back-to-back packets into a blocked egress and
    report which got CE-marked (post-enqueue occupancy semantics)."""
    sw = net.switches[0]
    sw.ports[2].busy = True  # block egress so nothing dequeues
    pkts = [_data(90, 0, 2, payload=payload, seq=i, ecn=True)
            for i in range(count)]
    for pkt in pkts:
        sw.receive(pkt, sw.ports[0])
    assert sw.queue_for(2).occupancy == (payload + 48) * count
    return [p.ce for p in pkts]


@pytest.mark.parametrize("admission", [None, "ch-static-k"])
@pytest.mark.parametrize("audited", [False, True])
def test_step_ecn_boundary_identical_across_variants(admission, audited):
    # Packets are 1000 B on the wire; K_ECN = 2000. Marking is on the
    # post-enqueue occupancy, strictly above K: 1000 no, 2000 (== K)
    # no, 3000 yes — in every receive variant.
    net = small_star(ecn=StepEcn(2_000), admission=admission)
    if audited:
        Auditor(net).install()
    assert _mark_pattern(net) == [False, False, True]


@pytest.mark.parametrize("admission", [None, "ch-static-k"])
def test_red_ecn_boundary_identical_across_variants(admission):
    # RedEcn boundaries: occupancy == k_min never marks, == k_max
    # force-marks; neither consumes an RNG draw, so the stream state is
    # untouched by boundary traffic in both receive variants.
    rng = random.Random(9)
    ecn = RedEcn(1_000, 2_000, 0.5, rng)
    net = small_star(ecn=ecn, admission=admission)
    state = rng.getstate()
    assert _mark_pattern(net) == [False, True, True]
    assert rng.getstate() == state


# -- per-switch ECN RNG streams ----------------------------------------------


def _dcqcn_config():
    return ScenarioConfig(transport="dcqcn", pfc=True, scale=TINY, seed=5,
                          audit=False)


def test_roce_switches_get_independent_name_seeded_rngs():
    net = build_network(_dcqcn_config())
    schemes = [sw.ecn for sw in net.switches]
    assert all(isinstance(s, RedEcn) for s in schemes)
    # Distinct instances, distinct streams (no fabric-global RNG).
    assert len({id(s) for s in schemes}) == len(schemes)
    assert len({s.rng.getstate() for s in schemes}) == len(schemes)


def test_roce_ecn_streams_are_reproducible_by_switch_name():
    # Name-derived seeds: rebuilding the fabric reproduces every
    # switch's stream exactly — the property that makes a shard
    # replica's draws identical to the single-core run's.
    draws = [
        {sw.name: sw.ecn.rng.random() for sw in build_network(_dcqcn_config()).switches}
        for _ in range(2)
    ]
    assert draws[0] == draws[1]


# -- adaptive-K controller ----------------------------------------------------


def _queue_stuff(sw, color, payload=1452, count=1):
    """Park packets in queue 0 (canonical accounting, nothing drains)."""
    queue = sw.queues[0]
    for i in range(count):
        pkt = _data(95, 0, 2, payload=payload, color=color, seq=i)
        sw.buffer.reserve(pkt.size)
        queue.push(pkt, 0)
    return queue


def test_adaptive_k_inert_without_color_threshold():
    net = small_star(admission="adaptive-k")
    policy = net.switches[0].policy
    assert policy.k is None
    assert policy.color_threshold(net.switches[0].queues[0]) is None
    assert policy._sampler is None  # no controller armed
    assert policy.invariants() == []


def test_adaptive_k_cuts_k_on_green_buildup_and_clamps():
    net = small_star(color_threshold_bytes=4_000, admission="adaptive-k")
    sw = net.switches[0]
    policy = sw.policy
    assert (policy.k0, policy.k_lo, policy.k_hi) == (4_000, 1_000, 16_000)
    assert policy.color_threshold(sw.queues[0]) == 4_000
    # Green backlog past green_target_fraction * K0 (= 1000 B).
    _queue_stuff(sw, Color.GREEN, count=1)
    for _ in range(30):
        policy._retune()
    assert policy.k == policy.k_lo  # cut repeatedly, clamped at K0/4
    assert policy.adjustments > 0
    assert policy.invariants() == []


def test_adaptive_k_raises_k_when_red_rides_threshold():
    net = small_star(color_threshold_bytes=4_000, admission="adaptive-k")
    sw = net.switches[0]
    policy = sw.policy
    # Red occupancy >= 0.9 * K with an almost-empty pool.
    _queue_stuff(sw, Color.RED, count=3)  # 4500 B red >= 3600
    policy._retune()
    assert policy.k == 5_000  # 4000 * 1.25
    for _ in range(30):
        policy._retune()
    # Red (4500 B) no longer rides within 0.9 * K once K passes 5000:
    # the controller raises exactly once more, then holds — K tracks
    # the backlog instead of growing without bound.
    assert policy.k == 6_250
    assert policy.invariants() == []


def test_adaptive_k_clamps_at_upper_bound():
    net = small_star(color_threshold_bytes=4_000, admission="adaptive-k")
    sw = net.switches[0]
    policy = sw.policy
    # A red backlog so deep it rides 0.9 * K all the way up.
    _queue_stuff(sw, Color.RED, count=35)  # 52 500 B red
    for _ in range(30):
        policy._retune()
    assert policy.k == policy.k_hi  # clamped at 4 * K0
    assert policy.invariants() == []


def test_adaptive_k_controller_is_armed_by_finalize():
    net = small_star(color_threshold_bytes=4_000, admission="adaptive-k")
    policy = net.switches[0].policy
    assert policy._sampler is not None
    assert policy._sampler.event_pending
    # No incomplete flows: the controller stops itself on its first
    # tick instead of keeping an idle engine alive forever.
    net.engine.run()
    assert net.engine.peek_time() is None


# -- property: every policy under the auditor --------------------------------


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_random_traffic_preserves_invariants_under_every_policy(name):
    net = small_star(buffer_bytes=60_000, color_threshold_bytes=3_000,
                     ecn=StepEcn(2_000), admission=name)
    auditor = Auditor(net).install()
    rng = random.Random(1234)
    hosts = len(net.hosts)
    for i in range(300):
        src = rng.randrange(hosts)
        dst = rng.randrange(hosts - 1)
        if dst >= src:
            dst += 1
        color = Color.RED if rng.random() < 0.5 else Color.GREEN
        net.host(src).send(_data(
            100 + src * hosts + dst, src, dst, color=color,
            payload=rng.randrange(200, 1453), seq=i, ecn=True,
        ))
        if i % 10 == 9:
            net.engine.run()  # drain in bursts to vary occupancy
    net.engine.run()
    # Green packets were never congestion-dropped by the color check
    # (the auditor raises from on_drop the instant that happens), and
    # the books balance after the run.
    auditor.final_check()
    sw = net.switches[0]
    assert sw.buffer.used == 0
    assert all(q.occupancy == 0 and q.red_bytes == 0 for q in sw.queues)
    assert sw.policy.invariants() == []


def test_tiny_buffer_sheds_green_as_justified_dynamic_drops():
    # The tiny-buffer regime may congestion-drop green at its cap on a
    # lossy fabric — the policy-aware auditor must accept that as a
    # justified "dynamic" drop rather than flag it.
    net = small_star(admission={"name": "tiny-buffer", "cap_bytes": 2_000})
    auditor = Auditor(net).install()
    for i in range(20):
        net.host(0).send(_data(60, 0, 2, seq=i))
        net.host(1).send(_data(61, 1, 2, seq=i))
    net.engine.run()
    auditor.final_check()
    assert net.stats.drops_green > 0
    assert net.switches[0].buffer.used == 0
