"""Engine checkpoint/restore: pickling gate, key check, bit-identity."""

import os
import pickle

import pytest

from repro.experiments.scale import TINY
from repro.experiments.scenarios import (
    EcnStreamFactory,
    ScenarioConfig,
    build_network,
)
from repro.service.run import resume_service, service_fingerprint
from repro.sim import checkpoint
from repro.sim.checkpoint import CheckpointError, default_path


@pytest.fixture(autouse=True)
def _pure_backend():
    """Checkpointing is pure-backend-only by contract; pin the backend
    so this module stays green when TLT_BACKEND=compiled (the compiled
    CI job runs the whole tier-1 suite).
    test_compiled_backend_refused re-forces compiled inside its body."""
    from repro.sim import backend

    backend.set_backend("pure")
    yield
    backend.set_backend(None)


SERVICE_SPEC = {
    "requests": 60,
    "rate_rps": 20_000.0,
    "tiers": [
        {"name": "cache", "servers": 3, "fanout": 2, "service_ns": 2_000},
    ],
}


def _config(**overrides) -> ScenarioConfig:
    base = dict(transport="dctcp", scale=TINY, service=SERVICE_SPEC,
                enable_background=False, enable_incast=False, seed=1)
    base.update(overrides)
    return ScenarioConfig(**base)


def test_save_load_round_trip(tmp_path):
    net = build_network(_config())
    net.engine.run(until=1_000)
    path = default_path(str(tmp_path))
    checkpoint.save(path, net, extra={"tag": 7}, key="k1")
    payload = checkpoint.load(path, expect_key="k1")
    restored = payload["state"]["net"]
    assert payload["sim_time_ns"] == 1_000
    assert payload["state"]["extra"] == {"tag": 7}
    assert restored.engine.now == net.engine.now
    assert len(restored.hosts) == len(net.hosts)


def test_key_mismatch_rejected(tmp_path):
    net = build_network(_config())
    path = default_path(str(tmp_path))
    checkpoint.save(path, net, key="expected")
    with pytest.raises(CheckpointError, match="key"):
        checkpoint.load(path, expect_key="different")
    # No expectation: loads fine.
    assert checkpoint.load(path)["key"] == "expected"


def test_corrupt_schema_rejected(tmp_path):
    path = os.path.join(str(tmp_path), "bogus.pkl")
    with open(path, "wb") as handle:
        pickle.dump({"schema": 999}, handle)
    with pytest.raises(CheckpointError, match="schema"):
        checkpoint.load(path)


def test_dcqcn_network_is_picklable():
    """The RED marking streams used to be built by a local closure,
    which made the whole RoCE family un-checkpointable.
    EcnStreamFactory is module-level, so the object graph pickles."""
    net = build_network(_config(transport="dcqcn"))
    net.engine.run(until=1_000)
    clone = pickle.loads(pickle.dumps(net))
    assert clone.engine.now == net.engine.now


def test_ecn_stream_factory_matches_closure_semantics():
    factory = EcnStreamFactory(5_000, 200_000, 0.01, seed=9)
    a1, a2, b = factory("tor0"), factory("tor0"), factory("tor1")
    assert a1.k_min == 5_000 and a1.k_max == 200_000 and a1.p_max == 0.01
    # Same name -> identical stream; different name -> diverges.
    draws = [a1.rng.random() for _ in range(4)]
    assert [a2.rng.random() for _ in range(4)] == draws
    assert [b.rng.random() for _ in range(4)] != draws


def test_compiled_backend_refused(tmp_path, monkeypatch):
    from repro.sim import backend

    if not backend.compiled_available():
        pytest.skip("compiled backend not built")
    monkeypatch.setenv("TLT_BACKEND", "compiled")
    backend.set_backend("compiled")
    try:
        from repro.experiments.scenarios import run_scenario

        with pytest.raises(CheckpointError, match="pure backend"):
            run_scenario(_config(checkpoint=str(tmp_path)))
    finally:
        monkeypatch.delenv("TLT_BACKEND")
        backend.set_backend(None)


def test_checkpoint_with_telemetry_refused(tmp_path):
    from repro.experiments.scenarios import run_scenario

    config = _config(checkpoint=str(tmp_path / "ck"),
                     telemetry=str(tmp_path / "tele"))
    with pytest.raises(CheckpointError, match="telemetry"):
        run_scenario(config)


def test_checkpoint_with_faults_refused(tmp_path):
    from repro.experiments.scenarios import run_scenario

    faults = {"events": [
        {"time_ns": 1_000, "kind": "link_down", "target": "tor0:0"}]}
    config = _config(checkpoint=str(tmp_path), faults=faults)
    with pytest.raises(CheckpointError, match="fault"):
        run_scenario(config)


def test_resolved_checkpoint_forms(monkeypatch):
    assert _config().resolved_checkpoint() is None
    assert _config(checkpoint="/tmp/x").resolved_checkpoint() == {
        "dir": "/tmp/x", "at_ns": None}
    assert _config(checkpoint={"dir": "/tmp/x", "at_ns": 5}
                   ).resolved_checkpoint() == {"dir": "/tmp/x", "at_ns": 5}
    monkeypatch.setenv("TLT_CHECKPOINT", "/tmp/env")
    assert _config().resolved_checkpoint() == {"dir": "/tmp/env",
                                               "at_ns": None}
    with pytest.raises(ValueError):
        _config(checkpoint=7).resolved_checkpoint()


def test_checkpoint_restore_reproduces_uninterrupted_run(tmp_path):
    """The PR's determinism gate: run A (uninterrupted), run B (same
    config, checkpointed mid-run), run C (restored from B's file and
    driven to completion) — all three fingerprints are bit-equal."""
    from repro.experiments.scenarios import run_scenario

    fp_a = service_fingerprint(run_scenario(_config()))
    fp_b = service_fingerprint(
        run_scenario(_config(checkpoint=str(tmp_path))))
    path = default_path(str(tmp_path))
    assert os.path.exists(path)
    fp_c = service_fingerprint(resume_service(path))
    assert fp_a == fp_b
    assert fp_a == fp_c


def test_resume_checks_scenario_key(tmp_path):
    from repro.experiments.scenarios import run_scenario

    run_scenario(_config(checkpoint=str(tmp_path)))
    with pytest.raises(CheckpointError, match="key"):
        resume_service(default_path(str(tmp_path)), expect_key="wrong")


def test_cache_key_excludes_checkpoint(tmp_path):
    """Satellite (a): the checkpoint directory is execution strategy,
    not result identity — same rule as telemetry and shards."""
    from repro.experiments.parallel import Job

    plain = Job(0, _config(), 1).cache_key()
    with_ck = Job(0, _config(checkpoint=str(tmp_path)), 1).cache_key()
    with_at = Job(0, _config(
        checkpoint={"dir": str(tmp_path), "at_ns": 123}), 1).cache_key()
    assert plain == with_ck == with_at
    # ...while actual scenario inputs still change the key.
    other = Job(0, _config(seed=2), 2).cache_key()
    assert other != plain
