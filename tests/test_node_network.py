"""Tests for hosts, NICs, network aggregates and RoCE NACK limiting."""

from repro.net.packet import Packet, PacketKind
from repro.net.topology import star
from repro.sim.engine import Engine
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.dcqcn import DcqcnRateControl
from repro.transport.registry import create_flow

from tests.util import DropFilter, PacketTap, run_flow, small_star


def test_nic_queue_accounting():
    net = star(num_hosts=2)
    host = net.host(0)
    for i in range(3):
        host.nic.queue.append(Packet(1, 0, 1, PacketKind.DATA, seq=i, payload=100))
    assert len(host.nic) == 3
    assert host.nic.pending_bytes() == 3 * 148


def test_unknown_flow_packets_ignored():
    net = star(num_hosts=2)
    net.host(0).send(Packet(999, 0, 1, PacketKind.DATA, payload=100))
    net.engine.run()  # no endpoint registered: must not raise


def test_endpoint_unregister():
    net = star(num_hosts=2)
    sink = []

    class S:
        def on_packet(self, p):
            sink.append(p)

    net.host(1).register_endpoint(5, S())
    net.host(1).unregister_endpoint(5)
    net.host(0).send(Packet(5, 0, 1, PacketKind.DATA, payload=10))
    net.engine.run()
    assert sink == []


def test_network_pause_fraction_zero_without_pfc():
    net = small_star()
    run_flow(net, "tcp", size=50_000)
    assert net.avg_pause_fraction(net.engine.now) == 0.0
    assert net.total_paused_ns() == 0


def test_gbn_receiver_sends_one_nack_per_gap():
    """RoCE receivers rate-limit NACKs: one per out-of-order episode."""
    net = small_star()
    nacks = []
    switch = net.switches[0]
    def tap(packet):
        if packet.kind == PacketKind.NACK:
            nacks.append(packet.ack)

    PacketTap(switch, tap)
    drop = DropFilter(switch)
    drop.drop_seq_once(2)
    _, _, record = run_flow(net, "dcqcn", size=30_000,
                            config=TransportConfig(base_rtt_ns=4_000))
    assert record.completed
    # Many packets followed the hole, but the expected PSN was NACKed
    # at most a handful of times (per retransmission round), not per
    # out-of-order arrival.
    assert nacks.count(2) <= 2


def test_dcqcn_stop_cancels_timers():
    engine = Engine()
    rc = DcqcnRateControl(engine, TransportConfig(base_rtt_ns=4_000))
    rc.start()
    rc.stop()
    engine.run()
    assert engine.now < 1_000_000  # no periodic timers left running


def test_flow_between_same_pair_multiple_flows():
    net = small_star()
    config = TransportConfig(base_rtt_ns=4_000)
    specs = []
    for _ in range(3):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=20_000)
        create_flow("tcp", net, spec, config)
        specs.append(spec)
    net.engine.run()
    assert all(net.stats.flows[s.flow_id].completed for s in specs)
