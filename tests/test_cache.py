"""Tests for the content-addressed experiment result cache."""

import json

import pytest

from repro.core.config import ClockingPolicy, TltConfig
from repro.experiments.cache import ResultCache, encode_value, fingerprint
from repro.experiments.common import run_averaged
from repro.experiments.parallel import execution
from repro.experiments.scale import Scale
from repro.experiments.scenarios import ScenarioConfig

FAST = Scale("fast-cache", 1, 2, 2, 4, 1, 1)


def config(**overrides) -> ScenarioConfig:
    return ScenarioConfig(transport="tcp", scale=FAST, **overrides)


# -- fingerprinting ----------------------------------------------------------


def test_fingerprint_is_deterministic():
    assert fingerprint(config(), 1) == fingerprint(config(), 1)


def test_fingerprint_sensitive_to_config_seed_metrics_and_version():
    base = fingerprint(config(), 1, metrics=None, version="v1")
    assert fingerprint(config(load=0.5), 1, version="v1") != base
    assert fingerprint(config(), 2, version="v1") != base
    assert fingerprint(config(), 1, metrics="m:f", version="v1") != base
    assert fingerprint(config(), 1, version="v2") != base


def test_fingerprint_sees_nested_dataclasses_and_enums():
    adaptive = config(tlt=True, tlt_config=TltConfig(clocking=ClockingPolicy.ADAPTIVE))
    mtu = config(tlt=True, tlt_config=TltConfig(clocking=ClockingPolicy.ALWAYS_MTU))
    assert fingerprint(adaptive, 1) != fingerprint(mtu, 1)


def test_fingerprint_sees_transport_overrides_dict():
    a = config(transport_overrides={"rto_min_ns": 1})
    b = config(transport_overrides={"rto_min_ns": 2})
    assert fingerprint(a, 1) != fingerprint(b, 1)
    assert fingerprint(a, 1) == fingerprint(config(transport_overrides={"rto_min_ns": 1}), 1)


def test_encode_value_canonicalises():
    assert encode_value({"b": 1, "a": 2}) == {"a": 2, "b": 1}
    assert encode_value((1, 2)) == [1, 2]
    assert encode_value(frozenset({"y", "x"})) == ["x", "y"]
    assert encode_value(ClockingPolicy.ADAPTIVE) == \
        {"__enum__": "ClockingPolicy", "value": "adaptive"}
    encoded = encode_value(TltConfig())
    assert encoded["__dataclass__"] == "TltConfig"
    assert encoded["fields"]["periodic_n"] == 96


# -- artifact store ----------------------------------------------------------


def test_cache_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    key = fingerprint(config(), 1)
    path = cache.put(key, {"fct": 1.25}, seed=1, events=100, wall_s=0.5)
    assert path.exists()
    artifact = cache.get(key)
    assert artifact["row"] == {"fct": 1.25}
    assert artifact["events"] == 100
    assert len(cache) == 1
    assert cache.hits == 1


def test_cache_miss_and_corrupt_artifacts_return_none(tmp_path):
    cache = ResultCache(tmp_path)
    key = fingerprint(config(), 1)
    assert cache.get(key) is None
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.get(key) is None
    path.write_text(json.dumps({"key": "wrong", "row": {}}))
    assert cache.get(key) is None
    path.write_text(json.dumps({"key": key}))  # truncated: no row
    assert cache.get(key) is None
    assert cache.misses == 4


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in (1, 2, 3):
        cache.put(fingerprint(config(), seed), {"v": float(seed)})
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


# -- end-to-end through run_averaged -----------------------------------------


def test_second_run_served_from_cache(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    with execution(jobs=1, use_cache=True, cache_dir=cache_dir):
        first = run_averaged(config(), seeds=(1, 2))

    def boom(cfg):
        raise AssertionError("cache miss: run_scenario should not execute")

    monkeypatch.setattr("repro.experiments.parallel.run_scenario", boom)
    with execution(jobs=1, use_cache=True, cache_dir=cache_dir):
        second = run_averaged(config(), seeds=(1, 2))
    assert second == first


def test_config_change_invalidates_cache(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    with execution(jobs=1, use_cache=True, cache_dir=cache_dir):
        run_averaged(config(), seeds=(1,))

    def boom(cfg):
        raise AssertionError("executed")

    monkeypatch.setattr("repro.experiments.parallel.run_scenario", boom)
    with execution(jobs=1, use_cache=True, cache_dir=cache_dir):
        # Identical config: cache hit, boom never fires.
        run_averaged(config(), seeds=(1,))
        # Any config change misses the cache and would execute.
        with pytest.raises(RuntimeError, match="every seed failed"):
            run_averaged(config(load=0.45), seeds=(1,))


def test_no_cache_context_skips_cache_entirely(tmp_path):
    cache_dir = tmp_path / "cache"
    with execution(jobs=1, use_cache=False, cache_dir=str(cache_dir)):
        run_averaged(config(), seeds=(1,))
    assert not cache_dir.exists()
