"""Tests for tools/check_bench_regression.py (the CI benchmark gate)."""

import importlib.util
import json
import os

import pytest

TOOL = os.path.join(os.path.dirname(__file__), "..", "tools",
                    "check_bench_regression.py")

spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL)
tool = importlib.util.module_from_spec(spec)
spec.loader.exec_module(tool)


def write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def pytest_benchmark_doc(rates, backend=None):
    # The fastest round (min) defines the rate; the mean is slower, as
    # on a real noisy runner.
    extra = {} if backend is None else {"backend": backend}
    return {
        "benchmarks": [
            {"name": name,
             "stats": {"min": events / rate, "mean": 1.2 * events / rate},
             "extra_info": {"events": events, **extra}}
            for name, (events, rate) in rates.items()
        ]
    }


def test_load_rates_pytest_benchmark_format(tmp_path):
    path = write(tmp_path / "run.json",
                 pytest_benchmark_doc({"bench_a": (100_000, 50_000.0)}))
    assert tool.load_rates(path) == {"bench_a": pytest.approx(50_000.0)}


def test_load_rates_prefers_fastest_round_over_mean(tmp_path):
    # Scheduling noise only adds time: the gate must rate benchmarks by
    # their fastest round, not a mean dragged down by slow outliers.
    path = write(tmp_path / "run.json", {
        "benchmarks": [{"name": "a", "stats": {"min": 0.5, "mean": 2.0},
                        "extra_info": {"events": 1000}}]
    })
    assert tool.load_rates(path) == {"a": pytest.approx(2000.0)}


def test_load_rates_without_events_uses_runs_per_sec(tmp_path):
    path = write(tmp_path / "run.json",
                 {"benchmarks": [{"name": "b", "stats": {"mean": 0.25}}]})
    assert tool.load_rates(path) == {"b": pytest.approx(4.0)}


def test_load_rates_bench_report_format(tmp_path):
    path = write(tmp_path / "BENCH_tiny.json", {
        "experiments": {
            "fig05": {"wall_s": 10.0, "events_per_sec": 123_456},
            "fig11": {"wall_s": 5.0, "events_per_sec": None},  # cached run
        }
    })
    assert tool.load_rates(path) == {"fig05": 123_456.0}


def test_load_rates_rejects_unknown_format(tmp_path):
    path = write(tmp_path / "junk.json", {"something": 1})
    with pytest.raises(ValueError):
        tool.load_rates(path)


def test_gate_passes_within_threshold(tmp_path, capsys):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 80_000.0)}))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline, "--threshold", "0.25"]) == 0
    assert "gate passed" in capsys.readouterr().out


def test_gate_fails_beyond_threshold(tmp_path, capsys):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 70_000.0)}))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline, "--threshold", "0.25"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_gate_fails_when_benchmark_disappears(tmp_path, capsys):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"other": (1000, 100_000.0)}))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"gone": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline]) == 1
    out = capsys.readouterr().out
    assert "disappeared" in out
    assert "new" in out  # the unexpected benchmark is reported, not gated


def test_new_benchmark_is_reported_but_not_gated(tmp_path, capsys):
    # A benchmark present in the run but absent from the baseline (a
    # freshly added microbenchmark) must not fail the gate: it is
    # listed as "new" and starts being gated once --update records it.
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 100_000.0),
                                          "brand_new": (1000, 5.0)}))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline, "--threshold", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "new" in out
    assert "brand_new" in out


def test_update_writes_normalized_baseline(tmp_path):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 50_000.0)}))
    baseline = tmp_path / "base.json"
    assert tool.main([current, str(baseline), "--update"]) == 0
    saved = json.loads(baseline.read_text())
    assert saved["schema"] == tool.BASELINE_SCHEMA
    # A run without backend annotation records under "pure".
    entry = saved["backends"]["pure"]["benchmarks"]["a"]
    assert entry["events_per_sec"] == pytest.approx(50_000.0)
    # Round-trips through load_baseline and passes against itself.
    assert tool.main([current, str(baseline)]) == 0


def test_empty_current_run_errors(tmp_path):
    current = write(tmp_path / "run.json", {"benchmarks": []})
    baseline = write(tmp_path / "base.json", {"benchmarks": {}})
    assert tool.main([current, baseline]) == 2


# -- per-backend baselines ---------------------------------------------------


def test_run_backend_autodetected_from_extra_info(tmp_path):
    path = write(tmp_path / "run.json",
                 pytest_benchmark_doc({"a": (1000, 50_000.0)},
                                      backend="compiled"))
    rates, backend = tool.load_run(path)
    assert backend == "compiled"
    assert rates == {"a": pytest.approx(50_000.0)}


def test_run_backend_autodetected_from_bench_report(tmp_path):
    path = write(tmp_path / "BENCH_tiny.json", {
        "backend": "compiled",
        "experiments": {"fig05": {"wall_s": 1.0, "events_per_sec": 10_000}},
    })
    assert tool.load_run(path) == ({"fig05": 10_000.0}, "compiled")


def test_compiled_run_gated_against_compiled_entry(tmp_path, capsys):
    # The compiled numbers are several times pure's: the gate must pick
    # the right table or a healthy compiled run would look like a 3x
    # regression (or a pure run like a free 3x win).
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 290_000.0)},
                                         backend="compiled"))
    baseline = write(tmp_path / "base.json", {
        "schema": 2,
        "backends": {
            "pure": {"benchmarks": {"a": {"events_per_sec": 100_000.0}}},
            "compiled": {"benchmarks": {"a": {"events_per_sec": 300_000.0}}},
        },
    })
    assert tool.main([current, baseline, "--threshold", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "backend: compiled" in out
    assert "gate passed" in out


def test_known_backend_missing_from_baseline_hard_errors(tmp_path, capsys):
    # A legacy flat baseline only covers pure; gating a compiled run
    # against it must be a hard error, not a silent pass (or a spurious
    # comparison against pure's numbers).
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 300_000.0)},
                                         backend="compiled"))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline]) == 2
    assert "no entry for backend 'compiled'" in capsys.readouterr().err


def test_unknown_backend_is_reported_but_not_gated(tmp_path, capsys):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 5.0)},
                                         backend="experimental"))
    baseline = write(tmp_path / "base.json",
                     {"benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    assert tool.main([current, baseline]) == 0
    assert "not gated" in capsys.readouterr().out


def test_backend_flag_overrides_detection(tmp_path, capsys):
    current = write(tmp_path / "run.json",
                    pytest_benchmark_doc({"a": (1000, 100_000.0)}))
    baseline = write(tmp_path / "base.json", {
        "schema": 2,
        "backends": {
            "compiled": {"benchmarks": {"a": {"events_per_sec": 100_000.0}}},
        },
    })
    # Auto-detection says pure (no annotation) -> hard error ...
    assert tool.main([current, baseline]) == 2
    # ... but --backend compiled selects the recorded table.
    assert tool.main([current, baseline, "--backend", "compiled"]) == 0


def test_update_preserves_other_backends(tmp_path):
    baseline = tmp_path / "base.json"
    pure = write(tmp_path / "pure.json",
                 pytest_benchmark_doc({"a": (1000, 100_000.0)}, backend="pure"))
    compiled = write(tmp_path / "compiled.json",
                     pytest_benchmark_doc({"a": (1000, 300_000.0)},
                                          backend="compiled"))
    assert tool.main([pure, str(baseline), "--update"]) == 0
    assert tool.main([compiled, str(baseline), "--update"]) == 0
    saved = json.loads(baseline.read_text())
    assert saved["backends"]["pure"]["benchmarks"]["a"]["events_per_sec"] == \
        pytest.approx(100_000.0)
    assert saved["backends"]["compiled"]["benchmarks"]["a"]["events_per_sec"] == \
        pytest.approx(300_000.0)
    # Both runs still pass against the merged baseline.
    assert tool.main([pure, str(baseline)]) == 0
    assert tool.main([compiled, str(baseline)]) == 0


def test_update_migrates_legacy_flat_baseline(tmp_path):
    # Recording compiled numbers into a schema-1 file must not discard
    # the flat table: it becomes the pure entry.
    baseline = tmp_path / "base.json"
    write(baseline, {"schema": 1, "source": "old.json",
                     "benchmarks": {"a": {"events_per_sec": 100_000.0}}})
    compiled = write(tmp_path / "compiled.json",
                     pytest_benchmark_doc({"a": (1000, 300_000.0)},
                                          backend="compiled"))
    assert tool.main([compiled, str(baseline), "--update"]) == 0
    saved = json.loads(baseline.read_text())
    assert saved["backends"]["pure"]["benchmarks"]["a"]["events_per_sec"] == \
        pytest.approx(100_000.0)
    assert saved["backends"]["compiled"]["benchmarks"]["a"]["events_per_sec"] == \
        pytest.approx(300_000.0)
