"""Cross-optimization determinism proof.

The simulator's contract is that a run is a pure function of its
configuration and seeds. The fingerprints below pin the canonical
event order; every optimization and execution strategy (including
``--shards N``) must reproduce them bit-for-bit. If a change
legitimately alters the event sequence (it almost never should),
these values must NOT simply be refreshed — that would defeat the
proof. Find out why the sequence moved.

Pin history: originally captured on the pre-optimization engine
(plain object heap, no timer wheel, no packet pool) and reproduced
unchanged through the hot-path overhaul. Re-pinned ONCE when sharding
landed: same-nanosecond tie-breaking was redefined from global
schedule order to the decomposable wire-sequence key (locally
scheduled events first, then wire arrivals ordered by emitting port
rank and per-port FIFO index — see ``repro.net.link``), which is the
property that makes a spatially partitioned run bit-equal to the
single-core run at any scale. Only tie-sensitive fields moved;
durations, flow counts and loss counters were unchanged.

``dcqcn_pfc`` (alone) was re-pinned a second time when the RoCE
family's RED/ECN marking moved from one fabric-global RNG to
per-switch name-seeded streams (``derive_seed(seed, "ecn.<switch>")``
in ``build_network``): the old shared stream made every marking
decision depend on global packet-arrival order across switches — the
bug that kept dcqcn out of the shard-determinism gate — so the fix
necessarily changes which packets get marked. ``dctcp_tlt`` and
``hpcc_tlt`` (step marking / INT: stateless, no RNG) were reproduced
bit-for-bit through that change, pinning that only the RED RNG
plumbing moved.
"""

import pytest

from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario


def fingerprint(config: ScenarioConfig) -> dict:
    """A deep metrics digest of one scenario run: event counts, every
    loss/mark/pause counter, and order-sensitive sums of the timing
    samples (FCT, RTT, delivery, queue depth)."""
    result = run_scenario(config)
    stats = result.stats
    return {
        "duration_ns": result.duration_ns,
        "events": result.net.engine.events_processed,
        "timeouts": stats.timeouts,
        "fast_retransmits": stats.fast_retransmits,
        "ecn_marks": stats.ecn_marks,
        "pause_frames": stats.pause_frames,
        "resume_frames": stats.resume_frames,
        "drops_green": stats.drops_green,
        "drops_red": stats.drops_red,
        "drop_bytes": stats.drop_bytes,
        "green_data_packets": stats.green_data_packets,
        "red_data_packets": stats.red_data_packets,
        "clocking_packets": stats.clocking_packets,
        "flow_count": stats.flow_count(),
        "incomplete": stats.incomplete_flows(),
        "fct_fg_sum": sum(stats.fct_list("fg")),
        "fct_bg_sum": sum(stats.fct_list("bg")),
        "rtt_fg_sum": sum(stats.rtt_samples_fg),
        "rtt_bg_sum": sum(stats.rtt_samples_bg),
        "delivery_sum": sum(stats.delivery_samples),
        "queue_samples": len(result.queue_samples),
        "queue_sample_sum": sum(result.queue_samples),
    }


# Re-pinned when the wire-sequence tie-break landed with sharding
# (see module docstring); previously captured at commit 136bb3f.
EXPECTED = {
    "dctcp_tlt": {
        "duration_ns": 102854021,
        "events": 123079,
        "timeouts": 0,
        "fast_retransmits": 0,
        "ecn_marks": 725,
        "pause_frames": 0,
        "resume_frames": 0,
        "drops_green": 0,
        "drops_red": 0,
        "drop_bytes": 0,
        "green_data_packets": 104,
        "red_data_packets": 8233,
        "clocking_packets": 18,
        "flow_count": 40,
        "incomplete": 0,
        "fct_fg_sum": 780368,
        "fct_bg_sum": 7186415,
        "rtt_fg_sum": 8319342,
        "rtt_bg_sum": 988181499,
        "delivery_sum": 996500841,
        "queue_samples": 91,
        "queue_sample_sum": 5513871,
    },
    # Re-pinned with the per-switch ECN RNG streams (see module
    # docstring); previously captured with the fabric-global RNG.
    "dcqcn_pfc": {
        "duration_ns": 101937158,
        "events": 725641,
        "timeouts": 0,
        "fast_retransmits": 0,
        "ecn_marks": 354,
        "pause_frames": 0,
        "resume_frames": 0,
        "drops_green": 0,
        "drops_red": 0,
        "drop_bytes": 0,
        "green_data_packets": 0,
        "red_data_packets": 0,
        "clocking_packets": 0,
        "flow_count": 40,
        "incomplete": 0,
        "fct_fg_sum": 335906,
        "fct_bg_sum": 25277635,
        "rtt_fg_sum": 2438256,
        "rtt_bg_sum": 2266898235,
        "delivery_sum": 2269336491,
        "queue_samples": 201,
        "queue_sample_sum": 6553295,
    },
    "hpcc_tlt": {
        "duration_ns": 102101540,
        "events": 1117425,
        "timeouts": 0,
        "fast_retransmits": 8,
        "ecn_marks": 0,
        "pause_frames": 0,
        "resume_frames": 0,
        "drops_green": 0,
        "drops_red": 0,
        "drop_bytes": 0,
        "green_data_packets": 2063,
        "red_data_packets": 70894,
        "clocking_packets": 2023,
        "flow_count": 40,
        "incomplete": 0,
        "fct_fg_sum": 302536,
        "fct_bg_sum": 27101885,
        "rtt_fg_sum": 2856238,
        "rtt_bg_sum": 944769752,
        "delivery_sum": 947625990,
        "queue_samples": 830,
        "queue_sample_sum": 809336,
    },
}

CONFIGS = {
    "dctcp_tlt": lambda: ScenarioConfig(
        transport="dctcp", tlt=True, scale=TINY, seed=3, audit=False
    ),
    "dcqcn_pfc": lambda: ScenarioConfig(
        transport="dcqcn", pfc=True, scale=TINY, seed=5, audit=False
    ),
    "hpcc_tlt": lambda: ScenarioConfig(
        transport="hpcc", tlt=True, scale=TINY, seed=7, audit=False
    ),
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fingerprint_matches_pre_optimization_engine(name):
    assert fingerprint(CONFIGS[name]()) == EXPECTED[name]


def test_repeat_run_is_bit_identical():
    """Same config, same process, back-to-back: identical fingerprints
    (catches state leaking across runs, e.g. through the packet pool)."""
    config = CONFIGS["dctcp_tlt"]
    assert fingerprint(config()) == fingerprint(config())


def test_faulted_run_is_bit_identical():
    """A run with an armed fault schedule (corruption + a link flap +
    a PFC storm) is still a pure function of config and seed — and it
    genuinely diverges from the clean run it is derived from."""
    spec = {"events": [
        {"time_ns": 0, "kind": "corruption_on", "target": "tor0",
         "params": {"model": "gilbert_elliott", "p_enter": 0.001,
                    "p_exit": 0.2, "loss_bad": 1.0}},
        {"time_ns": 40_000_000, "kind": "corruption_off", "target": "tor0"},
        {"time_ns": 5_000_000, "kind": "link_down", "target": "tor1:0"},
        {"time_ns": 15_000_000, "kind": "link_up", "target": "tor1:0"},
        {"time_ns": 20_000_000, "kind": "pfc_storm", "target": "tor0:0",
         "params": {"duration_ns": 2_000_000}},
    ]}

    def config() -> ScenarioConfig:
        return ScenarioConfig(transport="dctcp", tlt=True, scale=TINY,
                              seed=3, audit=False, faults=spec)

    faulted = fingerprint(config())
    assert faulted == fingerprint(config())
    assert faulted != EXPECTED["dctcp_tlt"]
