"""Test-wide fixtures.

Every test runs inside a fresh execution context with the on-disk
result cache disabled, so the suite stays hermetic: no artifacts leak
into (or are served stale from) ``~/.cache/tlt-repro``, and a test
that calls ``parallel.configure`` cannot affect its neighbours. Tests
that exercise the cache pass an explicit ``cache_dir``/``cache``.

The runtime invariant auditor (``repro.audit``) is enabled for every
scenario run in the suite: any violated simulation invariant fails the
test with an :class:`repro.audit.AuditError` and an event trace. A test
that needs an un-audited run sets ``ScenarioConfig(audit=False)``.
"""

import pytest

from repro.experiments import parallel
from repro.net import packet as packet_mod


@pytest.fixture(autouse=True)
def _hermetic_execution(tmp_path, monkeypatch):
    monkeypatch.setenv("TLT_AUDIT", "1")
    with parallel.execution(jobs=1, use_cache=False,
                            cache_dir=str(tmp_path / "tlt-cache")):
        yield


@pytest.fixture
def no_packet_pool():
    """Disable packet recycling for tests whose taps retain Packet
    objects past the run (a recycled packet is reinitialised when the
    pool reuses it, mutating the retained reference)."""
    prev = packet_mod._pool_enabled
    packet_mod.set_pooling(False)
    yield
    packet_mod.set_pooling(prev)
