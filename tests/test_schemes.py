"""Tests for the Fig 5/6 scheme builders."""

from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.schemes import roce_schemes, tcp_schemes
from repro.sim.units import MICROS


def test_tcp_schemes_complete_set():
    schemes = tcp_schemes(ScenarioConfig(transport="dctcp"))
    assert set(schemes) == {
        "baseline", "baseline+pfc", "tlp", "rto200us", "tlt", "tlt+pfc",
    }
    assert schemes["baseline+pfc"].pfc
    assert schemes["tlp"].tlp
    assert schemes["rto200us"].rto_min_ns == 200 * MICROS
    assert schemes["tlt"].tlt and not schemes["tlt"].pfc
    assert schemes["tlt+pfc"].tlt and schemes["tlt+pfc"].pfc


def test_tcp_schemes_do_not_mutate_base():
    base = ScenarioConfig(transport="tcp")
    tcp_schemes(base)
    assert not base.pfc and not base.tlt and not base.tlp


def test_roce_schemes_irn_skips_pfc():
    schemes = roce_schemes(ScenarioConfig(transport="irn"))
    assert set(schemes) == {"baseline", "tlt"}


def test_roce_schemes_full_for_others():
    for transport in ("hpcc", "dcqcn", "dcqcn-sack"):
        schemes = roce_schemes(ScenarioConfig(transport=transport))
        assert set(schemes) == {"baseline", "baseline+pfc", "tlt", "tlt+pfc"}


def test_vanilla_dcqcn_gets_periodic_marking():
    from repro.core.config import TltConfig

    base = ScenarioConfig(transport="dcqcn", tlt_config=TltConfig(periodic_n=None))
    schemes = roce_schemes(base)
    assert schemes["tlt"].tlt_config.periodic_n == 96
