"""EmpiricalCdf.sample: log-linear interpolation, pinned draws, edges."""

import math
import random

import pytest

from repro.workload.distributions import DISTRIBUTIONS, EmpiricalCdf


class FixedU:
    """Stand-in RNG returning one fixed uniform draw."""

    def __init__(self, u: float):
        self.u = u

    def random(self) -> float:
        return self.u


#: Pinned first six draws per distribution for random.Random(42) —
#: computed from the implementation, then frozen: any change to the
#: interpolation math or the knot tables shows up as a diff here.
PINNED_SEED42 = {
    "cache_follower": [8928, 2, 598, 453, 30703, 14139],
    "web_search": [251158, 4, 17282, 14197, 889136, 458098],
    "web_server": [3788, 4, 860, 630, 8290, 4494],
}


def test_pinned_samples_fixed_seed():
    assert set(PINNED_SEED42) == set(DISTRIBUTIONS)
    for name, expected in PINNED_SEED42.items():
        rng = random.Random(42)
        got = [DISTRIBUTIONS[name].sample(rng) for _ in range(len(expected))]
        assert got == expected, name


def test_first_knot_interpolates_from_size_one():
    """Below the first knot the left edge of the interpolation is
    size 1 (not the knot): a tiny u must land near 1, and u exactly at
    the first knot's probability must return the knot size."""
    ws = DISTRIBUTIONS["web_search"]
    assert ws.sample(FixedU(1e-9)) == 1
    assert ws.sample(FixedU(0.15)) == 6_000  # first knot, exact hit
    # Halfway (in probability) to the first knot: log-linear midpoint
    # of [1, 6000], nowhere near the arithmetic midpoint.
    mid = ws.sample(FixedU(0.075))
    assert mid == 77
    assert mid == pytest.approx(math.sqrt(1 * 6_000), rel=0.01)


def test_single_knot_cdf_interpolates_from_size_one():
    """A size-1 CDF still interpolates over [1, knot] instead of
    returning the knot constantly."""
    single = EmpiricalCdf("one", [(1_000, 1.0)])
    assert single.sample(FixedU(1e-12)) == 1
    # u = 0.5: geometric midpoint of [1, 1000] ~= sqrt(1000) ~= 32.
    assert single.sample(FixedU(0.5)) == 32
    rng = random.Random(7)
    draws = [single.sample(rng) for _ in range(6)]
    assert draws == [9, 3, 90, 2, 41, 13]  # pinned; spans the knot range
    assert all(1 <= d <= 1_000 for d in draws)


def test_last_knot_is_the_max():
    ws = DISTRIBUTIONS["web_search"]
    assert ws.sample(FixedU(0.9999999999)) == 30_000_000
    rng = random.Random(3)
    assert all(ws.sample(rng) <= 30_000_000 for _ in range(2_000))


def test_log_linear_between_interior_knots():
    """u halfway (in probability) between two knots lands on the
    geometric — not arithmetic — interpolant."""
    cdf = EmpiricalCdf("two", [(100, 0.5), (10_000, 1.0)])
    got = cdf.sample(FixedU(0.75))
    assert got == pytest.approx(math.sqrt(100 * 10_000), rel=0.01)
    assert got != pytest.approx((100 + 10_000) / 2, rel=0.2)


def test_validation_rejects_bad_tables():
    with pytest.raises(ValueError):
        EmpiricalCdf("empty", [])
    with pytest.raises(ValueError):
        EmpiricalCdf("unsorted", [(100, 0.5), (50, 1.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf("short", [(100, 0.9)])  # doesn't reach 1.0
