"""Tests for the shared-buffer MMU and dynamic thresholds."""

import pytest
from hypothesis import given, strategies as st

from repro.switchsim.buffer import SharedBuffer


def test_dynamic_threshold_shrinks_with_occupancy():
    buf = SharedBuffer(1000, alpha=1.0)
    assert buf.dynamic_threshold() == 1000
    buf.reserve(400)
    assert buf.dynamic_threshold() == 600


def test_alpha_one_limits_single_queue_to_half():
    # With alpha=1, a single hot queue converges to B/2: at occupancy
    # q the threshold is B - q, so admission stops when q >= B - q.
    buf = SharedBuffer(1_000_000, alpha=1.0)
    queue = 0
    while buf.admits(queue, 1500):
        buf.reserve(1500)
        queue += 1500
    assert abs(queue - 500_000) < 3000


def test_admits_respects_total_capacity():
    buf = SharedBuffer(1000, alpha=8.0)
    buf.reserve(900)
    assert not buf.admits(0, 200)
    assert buf.admits(0, 100)


def test_small_alpha_is_stricter():
    buf = SharedBuffer(1000, alpha=0.25)
    assert buf.admits(200, 100)
    buf.reserve(200)
    assert not buf.admits(200, 100)  # threshold = 0.25*800 = 200


def test_release_returns_capacity():
    buf = SharedBuffer(1000)
    buf.reserve(600)
    buf.release(600)
    assert buf.used == 0
    assert buf.free == 1000


def test_overcommit_raises():
    buf = SharedBuffer(100)
    with pytest.raises(AssertionError):
        buf.reserve(200)


def test_underrun_raises():
    buf = SharedBuffer(100)
    with pytest.raises(AssertionError):
        buf.release(1)


def test_peak_tracking():
    buf = SharedBuffer(1000)
    buf.reserve(700)
    buf.release(500)
    buf.reserve(100)
    assert buf.peak_used == 700


def test_invalid_params():
    with pytest.raises(ValueError):
        SharedBuffer(0)
    with pytest.raises(ValueError):
        SharedBuffer(100, alpha=0)


@given(
    ops=st.lists(st.integers(min_value=1, max_value=2000), max_size=60),
    alpha=st.floats(min_value=0.1, max_value=8.0),
)
def test_property_used_never_exceeds_capacity(ops, alpha):
    """Admission-checked reserves can never overcommit the pool."""
    buf = SharedBuffer(10_000, alpha=alpha)
    queue = 0
    for size in ops:
        if buf.admits(queue, size):
            buf.reserve(size)
            queue += size
        assert 0 <= buf.used <= buf.capacity
