"""Behavioral tests for TCP NewReno + SACK on the simulator."""

from repro.sim.units import MILLIS
from repro.transport.base import TransportConfig

from tests.util import DropFilter, run_flow, small_star


def test_flow_completes_and_fct_reasonable():
    net = small_star()
    sender, receiver, record = run_flow(net, "tcp", size=100_000)
    assert record.completed
    assert sender.completed
    # 100 kB at 40G through 2 hops: well under a millisecond.
    assert record.fct_ns < 1_000_000


def test_one_segment_flow():
    net = small_star()
    _, _, record = run_flow(net, "tcp", size=500)
    assert record.completed
    assert record.tx_bytes == 500


def test_zero_loss_means_zero_retransmissions():
    net = small_star()
    sender, _, record = run_flow(net, "tcp", size=500_000)
    assert record.retx_bytes == 0
    assert record.timeouts == 0


def test_slow_start_doubles_window():
    net = small_star()
    sender, _, record = run_flow(net, "tcp", size=2_000_000)
    # After a loss-free 2 MB transfer the window grew well beyond IW10.
    assert sender.cwnd > 20 * sender.mss


def test_cwnd_capped_at_max():
    net = small_star()
    config = TransportConfig(base_rtt_ns=4_000, max_cwnd_bytes=100_000)
    sender, _, record = run_flow(net, "tcp", size=3_000_000, config=config)
    assert record.completed
    assert sender.cwnd <= 100_000


def test_middle_loss_recovers_without_timeout():
    """A hole in the middle triggers SACK-based early retransmit."""
    net = small_star()
    DropFilter(net.switches[0]).drop_seq_once(1460 * 3)
    _, _, record = run_flow(net, "tcp", size=100_000)
    assert record.completed
    assert record.timeouts == 0
    assert record.retx_bytes >= 1460


def test_loss_halves_window():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 3)
    sender, _, record = run_flow(net, "tcp", size=60_000)
    assert record.completed
    assert sender.ssthresh < 1 << 59  # recovery was entered


def test_tail_loss_causes_timeout_without_tlt():
    """Losing the very last segment leaves nothing to trigger dupacks:
    only the RTO recovers it — the paper's core motivation."""
    net = small_star()
    size = 14_600  # 10 segments = exactly the initial window
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(1460 * 9)
    config = TransportConfig(rto_min_ns=4 * MILLIS, base_rtt_ns=4_000)
    _, _, record = run_flow(net, "tcp", size=size, config=config)
    assert record.completed
    assert record.timeouts >= 1
    assert record.fct_ns > 4 * MILLIS  # paid at least one RTO


def test_whole_window_loss_causes_timeout():
    net = small_star()
    drop = DropFilter(net.switches[0])
    for i in range(10):
        drop.drop_seq_once(1460 * i)
    _, _, record = run_flow(net, "tcp", size=14_600)
    assert record.completed
    assert record.timeouts >= 1


def test_timeout_collapses_window_to_one_mss():
    net = small_star()
    drop = DropFilter(net.switches[0])
    for i in range(10):
        drop.drop_seq_once(1460 * i)
    captured = {}
    from repro.transport.tcp import TcpSender

    original = TcpSender._on_timeout

    def spy(self):
        original(self)
        captured.setdefault("cwnd_after", self.cwnd)

    TcpSender._on_timeout = spy
    try:
        _, _, record = run_flow(net, "tcp", size=14_600)
    finally:
        TcpSender._on_timeout = original
    assert captured["cwnd_after"] == 1460


def test_exponential_backoff_on_repeated_timeouts():
    """Dropping the retransmissions too forces doubling RTOs."""
    net = small_star()
    drop = DropFilter(net.switches[0])
    # First segment dropped three times in a row.
    for _ in range(3):
        drop.drop_seq_once(0)
    config = TransportConfig(rto_min_ns=1 * MILLIS, base_rtt_ns=4_000)
    _, _, record = run_flow(net, "tcp", size=1460, config=config)
    assert record.completed
    assert record.timeouts == 3
    # 1 + 2 + 4 ms of backoff before success.
    assert record.fct_ns > 6 * MILLIS


def test_fixed_rto_config():
    net = small_star()
    drop = DropFilter(net.switches[0])
    drop.drop_seq_once(0)
    config = TransportConfig(fixed_rto_ns=200_000, base_rtt_ns=4_000)
    _, _, record = run_flow(net, "tcp", size=1460, config=config)
    assert record.completed
    assert record.timeouts == 1
    assert record.fct_ns < 1 * MILLIS  # recovered by the 200 us timer


def test_rtt_samples_recorded():
    net = small_star()
    run_flow(net, "tcp", size=50_000)
    assert net.stats.rtt_samples_fg
    assert min(net.stats.rtt_samples_fg) >= 4_000  # at least base RTT


def test_delivery_samples_recorded():
    net = small_star()
    run_flow(net, "tcp", size=50_000)
    assert net.stats.delivery_samples


def test_receiver_completion_callback():
    calls = []
    net = small_star()
    from repro.transport.base import FlowSpec, TransportConfig
    from repro.transport.registry import create_flow

    spec = FlowSpec(
        flow_id=net.new_flow_id(), src=0, dst=1, size=10_000,
        on_complete_rx=lambda rec: calls.append(("rx", rec.flow_id)),
        on_complete_ack=lambda rec: calls.append(("ack", rec.flow_id)),
    )
    create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
    net.engine.run()
    assert ("rx", spec.flow_id) in calls
    assert ("ack", spec.flow_id) in calls
    # rx completion happens before the final ACK returns to the sender.
    assert calls.index(("rx", spec.flow_id)) < calls.index(("ack", spec.flow_id))
