"""Tests for the parallel experiment execution engine.

Covers the tentpole guarantees: parallel output is bit-identical to
serial, results come back in submission order, worker crashes/hangs
are retried once and then reported as failed rows, and non-importable
metrics reducers fall back to serial in-process execution.
"""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.common import run_averaged
from repro.experiments.parallel import (
    ExecutionContext,
    Job,
    configure,
    execution,
    get_context,
    metrics_reference,
    resolve_metrics,
    run_jobs,
)
from repro.experiments.scale import Scale
from repro.experiments.scenarios import ScenarioConfig

import tests.util as util

#: Smallest scenario that still runs the full pipeline (~0.2 s/run).
FAST = Scale("fast-par", num_spines=1, num_tors=2, hosts_per_tor=2,
             bg_flows=4, incast_events=1, incast_flows_per_sender=1)


def fast_config(**overrides) -> ScenarioConfig:
    return ScenarioConfig(transport="tcp", scale=FAST, **overrides)


# -- determinism -------------------------------------------------------------


def test_parallel_rows_bit_identical_to_serial():
    config = fast_config()
    with execution(jobs=1, use_cache=False):
        serial = run_averaged(config, seeds=(1, 2, 3))
    with execution(jobs=4, use_cache=False):
        parallel_row = run_averaged(config, seeds=(1, 2, 3))
    assert parallel_row == serial
    assert serial["bg_avg_ms_std"] > 0  # seeds actually differ


def test_run_jobs_returns_submission_order():
    jobs = [Job(i, fast_config(), seed) for i, seed in enumerate((3, 1, 2))]
    results = run_jobs(jobs, jobs_n=3, use_cache=False)
    assert [r.index for r in results] == [0, 1, 2]
    assert all(r.ok and not r.cached and r.events > 0 for r in results)


def test_run_jobs_rejects_duplicate_indices():
    jobs = [Job(0, fast_config(), 1), Job(0, fast_config(), 2)]
    with pytest.raises(ValueError, match="duplicate"):
        run_jobs(jobs, jobs_n=1, use_cache=False)


# -- fault tolerance ---------------------------------------------------------


def test_metrics_exception_reported_as_failed_row():
    jobs = [
        Job(0, fast_config(), 1),
        Job(1, fast_config(), 1, metrics="tests.util:crashing_metrics"),
    ]
    results = run_jobs(jobs, jobs_n=2, use_cache=False)
    assert results[0].ok
    assert not results[1].ok
    assert "injected metrics failure" in results[1].error
    assert results[1].attempts == 2  # retried once before giving up


def test_worker_hard_crash_reported():
    jobs = [Job(0, fast_config(), 1, metrics="tests.util:exiting_metrics")]
    [result] = run_jobs(jobs, jobs_n=2, use_cache=False)
    assert not result.ok
    assert "exited with code 17" in result.error
    assert result.attempts == 2


def test_worker_crash_retry_succeeds(tmp_path, monkeypatch):
    marker = tmp_path / "first-attempt"
    monkeypatch.setenv("TLT_TEST_FLAKY", str(marker))
    jobs = [Job(0, fast_config(), 1, metrics="tests.util:flaky_once_metrics")]
    [result] = run_jobs(jobs, jobs_n=2, use_cache=False)
    assert result.ok
    assert result.attempts == 2
    assert marker.exists()


def test_hung_worker_killed_after_timeout():
    jobs = [Job(0, fast_config(), 1, metrics="tests.util:sleeping_metrics")]
    [result] = run_jobs(jobs, jobs_n=2, use_cache=False, timeout_s=1.5, retries=0)
    assert not result.ok
    assert "timed out" in result.error
    assert result.attempts == 1


def test_serial_inline_failure_does_not_kill_sweep():
    jobs = [
        Job(0, fast_config(), 1, metrics="tests.util:crashing_metrics"),
        Job(1, fast_config(), 1),
    ]
    results = run_jobs(jobs, jobs_n=1, use_cache=False)
    assert not results[0].ok and "injected" in results[0].error
    assert results[1].ok


# -- run_averaged integration ------------------------------------------------


def test_run_averaged_partial_failure_averages_survivors(capsys):
    row = run_averaged(fast_config(), seeds=(1, 2),
                       metrics=util.fail_on_seed2_metrics, jobs=2)
    assert row["fg_p99_ms_std"] == 0.0  # only seed 1 survived
    assert "seed 2" in capsys.readouterr().err


def test_run_averaged_raises_when_every_seed_fails():
    with pytest.raises(RuntimeError, match="every seed failed"):
        run_averaged(fast_config(), seeds=(1, 2),
                     metrics=util.crashing_metrics, jobs=2)


def test_run_averaged_lambda_metrics_falls_back_to_serial():
    row = run_averaged(fast_config(), seeds=(1,), metrics=lambda r: {"x": 2.0})
    assert row == {"x": 2.0, "x_std": 0.0}


def test_run_averaged_std_always_emitted_for_single_seed():
    row = run_averaged(fast_config(), seeds=(1,))
    assert row["fg_p99_ms_std"] == 0.0
    assert set(k for k in row if k.endswith("_std")) == \
        set(k + "_std" for k in row if not k.endswith("_std"))


# -- metrics references & context --------------------------------------------


def test_metrics_reference_round_trip():
    ref = metrics_reference(util.crashing_metrics)
    assert ref == "tests.util:crashing_metrics"
    assert resolve_metrics(ref) is util.crashing_metrics


def test_metrics_reference_rejects_lambdas_and_closures():
    assert metrics_reference(lambda r: {}) is None

    def closure(result):
        return {}

    assert metrics_reference(closure) is None
    assert metrics_reference(None) is None


def test_execution_context_nesting_and_configure():
    outer = get_context()
    with execution(jobs=3) as ctx:
        assert get_context() is ctx
        assert ctx.jobs == 3
        configure(jobs=7, timeout_s=2.0)
        assert ctx.jobs == 7 and ctx.timeout_s == 2.0
        with pytest.raises(TypeError):
            configure(bogus=1)
    assert get_context() is outer


def test_cached_jobs_mix_with_executed_jobs(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = run_jobs([Job(0, fast_config(), 1)], jobs_n=1,
                     use_cache=True, cache=cache)
    assert not first[0].cached
    jobs = [Job(0, fast_config(), 1), Job(1, fast_config(), 2)]
    results = run_jobs(jobs, jobs_n=1, use_cache=True, cache=cache)
    assert results[0].cached and not results[1].cached
    assert results[0].row == first[0].row


def test_execution_context_defaults():
    ctx = ExecutionContext()
    assert ctx.jobs >= 1
    assert ctx.use_cache is True
    assert ctx.retries == 1
    assert ctx.timeout_s is None
