#!/usr/bin/env python
"""Quickstart: TLT in ~40 lines.

Builds a small leaf-spine fabric, fires a synchronized incast of short
DCTCP flows at one host, and compares the tail flow completion time
with and without TLT. Run:

    python examples/quickstart.py
"""

from repro.core.config import TltConfig
from repro.experiments.scale import TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario


def main() -> None:
    print("Running DCTCP incast with and without TLT...\n")
    for tlt in (False, True):
        config = ScenarioConfig(
            transport="dctcp",
            tlt=tlt,
            tlt_config=TltConfig(),
            scale=TINY,
            fg_share=0.10,  # 10% of traffic is incast bursts
            seed=7,
        )
        result = run_scenario(config)
        stats = result.stats
        label = "DCTCP + TLT" if tlt else "DCTCP      "
        print(
            f"{label}  foreground p99 FCT = {result.fg_p99_ms():7.3f} ms   "
            f"p99.9 = {result.fg_p999_ms():7.3f} ms   "
            f"timeouts/1k flows = {stats.timeouts_per_1k_flows():5.1f}   "
            f"drops (red/green) = {stats.drops_red}/{stats.drops_green}"
        )
    print(
        "\nTLT marks ~one packet per flow per RTT as 'important' (green);"
        "\nswitches reserve buffer for green packets via color-aware"
        "\ndropping, so losses never hit the packets whose loss would"
        "\ncause a retransmission timeout."
    )


if __name__ == "__main__":
    main()
