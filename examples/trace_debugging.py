#!/usr/bin/env python
"""Debugging tools: packet tracing and terminal CDFs.

Follows one TLT flow through the fabric with :class:`PacketTracer`
(watch the Important Data / Important Echo ping-pong) and renders the
flow-completion-time CDF of an incast as an ASCII chart. Run:

    python examples/trace_debugging.py
"""

from repro.core.config import TltConfig
from repro.net.topology import TopologyParams, star
from repro.sim.trace import PacketTracer
from repro.stats.ascii import ascii_cdf
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow


def main() -> None:
    params = TopologyParams(
        host_link_delay_ns=1_000,
        switch_config=SwitchConfig(buffer_bytes=500_000, color_threshold_bytes=100_000),
    )
    net = star(num_hosts=9, params=params)
    config = TransportConfig(base_rtt_ns=4_000)

    # The flow we want to watch.
    watched = FlowSpec(flow_id=net.new_flow_id(), src=1, dst=0, size=8_000, group="fg")
    tracer = PacketTracer(net, flow_ids={watched.flow_id})
    create_flow("dctcp", net, watched, config, TltConfig())

    # Background incast pressure from the other hosts.
    for src in range(2, 9):
        for _ in range(4):
            spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0,
                            size=32_000, group="fg")
            create_flow("dctcp", net, spec, config, TltConfig())

    net.engine.run(until=2_000_000_000)
    tracer.detach()

    print("First 14 events of the watched flow (note the IMPORTANT_DATA")
    print("tail of the initial window and its IMPORTANT_ECHO):\n")
    for event in tracer.events[:14]:
        print(event.format())

    fcts = [r.fct_ns / 1e6 for r in net.stats.flows.values() if r.fct_ns is not None]
    print()
    print(ascii_cdf(fcts, label="Incast FCT CDF (ms):", unit=" ms"))
    print(f"\ntimeouts: {net.stats.timeouts}, red drops: {net.stats.drops_red}, "
          f"green drops: {net.stats.drops_green}")


if __name__ == "__main__":
    main()
