#!/usr/bin/env python
"""Testbed-style incast microbenchmark (§7.4, Fig 14).

A client fetches 32 kB blobs from 8 servers with growing fan-in and
three recovery schemes: the 4 ms RTO_min default, an aggressive 200 µs
RTO_min, and TLT. Run:

    python examples/incast_microbenchmark.py
"""

from repro.experiments.fig14_incast_microbench import run_one


def main() -> None:
    print(f"{'scheme':10s} {'flows':>6s} {'p99 (ms)':>10s} {'max (ms)':>10s} {'timeouts':>9s}")
    for flows in (16, 64, 128):
        for scheme in ("rto4ms", "rto200us", "tlt"):
            row = run_one("dctcp", scheme, flows, runs=2)
            print(
                f"{scheme:10s} {flows:6d} {row['p99_ms']:10.3f} "
                f"{row['max_ms']:10.3f} {row['timeouts']:9.0f}"
            )
        print()
    print("TLT sustains the largest fan-in with zero timeouts: the burst")
    print("sheds red packets early while every flow's green packet keeps")
    print("loss detection and ACK-clocking alive.")


if __name__ == "__main__":
    main()
