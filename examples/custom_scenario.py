#!/usr/bin/env python
"""Build a scenario directly against the library API.

Shows the lower-level building blocks (topology, switch features,
transports, TLT attachment) without the experiment harness: a dumbbell
network where an incast toward one right-side host HoL-blocks a victim
flow under PFC, and how TLT relieves it. Run:

    python examples/custom_scenario.py
"""

from repro.core.config import TltConfig
from repro.net.topology import TopologyParams, dumbbell
from repro.sim.units import GBPS, KB, MICROS
from repro.switchsim.ecn import StepEcn
from repro.switchsim.pfc import PfcConfig
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow


def run(tlt: bool) -> None:
    switch_config = SwitchConfig(
        buffer_bytes=2_000 * KB,
        color_threshold_bytes=270 * KB if tlt else None,
        ecn=StepEcn(200 * KB),
        pfc=PfcConfig(enabled=True),
    )
    params = TopologyParams(
        link_rate_bps=40 * GBPS,
        host_link_delay_ns=2 * MICROS,
        fabric_link_delay_ns=2 * MICROS,
        switch_config=switch_config,
    )
    # 7 senders on the left, 2 receivers on the right (testbed §7.4).
    net = dumbbell(left_hosts=7, right_hosts=2, params=params)
    tconfig = TransportConfig(base_rtt_ns=12 * MICROS)
    tlt_config = TltConfig() if tlt else None

    # Six senders blast 100 x 32 kB foreground flows at right host 7.
    for src in range(6):
        for i in range(100):
            spec = FlowSpec(
                flow_id=net.new_flow_id(), src=src, dst=7, size=32 * KB, group="fg"
            )
            create_flow("dctcp", net, spec, tconfig, tlt_config)
    # The seventh sender runs a long background flow to right host 8 —
    # the HoL-blocking victim when PFC pauses the shared trunk.
    victim = FlowSpec(flow_id=net.new_flow_id(), src=6, dst=8, size=8_000 * KB, group="bg")
    create_flow("dctcp", net, victim, tconfig, tlt_config)

    net.engine.run(until=2_000_000_000)
    stats = net.stats
    record = stats.flows[victim.flow_id]
    goodput = record.size * 8 / record.fct_ns if record.fct_ns else 0.0
    label = "DCTCP+TLT" if tlt else "DCTCP    "
    print(
        f"{label}  fg p99 = {stats.fct_summary('fg')['p99'] / 1e6:6.3f} ms   "
        f"victim goodput = {goodput:5.2f} Gbps   "
        f"PAUSE frames = {stats.pause_frames:5d}   "
        f"paused time = {net.total_paused_ns() / 1e6:6.2f} ms"
    )


def main() -> None:
    print("Dumbbell + PFC: incast HoL-blocks an innocent victim flow\n")
    run(tlt=False)
    run(tlt=True)
    print("\nTLT sheds red packets before PFC triggers, so the victim is")
    print("paused far less while the incast's tail stays timeout-free.")


if __name__ == "__main__":
    main()
