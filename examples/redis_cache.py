#!/usr/bin/env python
"""The paper's application scenario (§7.3): a web tier over a cache.

One HTTP client fans requests across 8 web servers; every request makes
its web server push a 32 kB SET into one cache (Redis-like) node. The
fan-in toward the cache is an incast; without TLT it causes timeouts
and multi-millisecond response tails. Run:

    python examples/redis_cache.py
"""

from repro.apps.webtier import WebTier
from repro.experiments.testbed import build_testbed, maybe_tlt, testbed_transport_config
from repro.sim.units import MILLIS


def run_tier(transport: str, tlt: bool, requests: int) -> None:
    net = build_testbed(num_hosts=10, transport=transport, tlt=tlt)
    tier = WebTier(
        net, transport, testbed_transport_config(), maybe_tlt(tlt),
        num_web_servers=8, value_size=32_000,
    )
    tier.issue_requests(requests)
    net.engine.run(until=500 * MILLIS)
    summary = tier.result.summary()
    label = f"{transport}+tlt" if tlt else transport
    print(
        f"{label:10s} {requests:4d} requests: "
        f"p99 = {summary['p99'] / 1e6:7.3f} ms  max = {summary['max'] / 1e6:7.3f} ms  "
        f"timeouts = {net.stats.timeouts}"
    )


def main() -> None:
    print("Client -> 8 web servers -> cache node (32 kB SET per request)\n")
    for requests in (24, 120, 180):
        for tlt in (False, True):
            run_tier("dctcp", tlt, requests)
        print()


if __name__ == "__main__":
    main()
