#!/usr/bin/env python3
"""Sharded-execution determinism gate for CI.

Runs the determinism suite's pinned scenarios (``tests/
test_determinism.py``) through the sharded executor and fails unless
every fingerprint field matches the committed single-core EXPECTED
values bit-for-bit. This is the contract of ``repro.sim.sharding``:
``--shards N`` is an execution strategy, not an approximation.

Every pinned transport family is gated, including the RoCE RED/ECN
family: each switch draws its marking decisions from its own
name-seeded RNG stream (``derive_seed(seed, "ecn.<switch>")``), so
every shard replica derives identical streams and only the owning
shard consumes them — the fabric-global RNG that once excluded
``dcqcn_pfc`` from this gate is gone.

Usage::

    python tools/check_shard_determinism.py --shards 4
    python tools/check_shard_determinism.py --shards 2 --configs dctcp_tlt
    python tools/check_shard_determinism.py --shards 2 --inline

``--inline`` forces the in-process worker path (TLT_SHARD_INLINE);
the default exercises real worker processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))

#: EXPECTED configs that the sharded executor reproduces bit-for-bit.
SHARDABLE = ("dctcp_tlt", "dcqcn_pfc", "hpcc_tlt")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="shard count to verify (default: 2)")
    parser.add_argument("--configs", default=",".join(SHARDABLE), metavar="IDS",
                        help="comma-separated determinism-suite config names "
                             f"(default: {','.join(SHARDABLE)})")
    parser.add_argument("--inline", action="store_true",
                        help="run shard workers inline instead of in worker "
                             "processes")
    args = parser.parse_args(argv)

    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.inline:
        os.environ["TLT_SHARD_INLINE"] = "1"

    from test_determinism import CONFIGS, EXPECTED, fingerprint

    names = [n for n in args.configs.split(",") if n]
    unknown = [n for n in names if n not in CONFIGS]
    if unknown:
        print(f"unknown determinism config(s): {unknown}; "
              f"available: {sorted(CONFIGS)}", file=sys.stderr)
        return 2

    failures = 0
    for name in names:
        config = replace(CONFIGS[name](), shards=args.shards)
        actual = fingerprint(config)
        expected = EXPECTED[name]
        diffs = [(k, actual[k], expected[k])
                 for k in expected if actual[k] != expected[k]]
        if diffs:
            failures += 1
            print(f"{name} shards={args.shards}: MISMATCH")
            for key, got, want in diffs:
                print(f"  {key}: sharded {got} != single-core {want}")
        else:
            print(f"{name} shards={args.shards}: bit-identical "
                  f"({len(expected)} fingerprint fields)")
    if failures:
        print(f"\n{failures} config(s) diverged from the single-core "
              f"fingerprint", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
