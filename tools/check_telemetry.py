#!/usr/bin/env python3
"""Schema-validate telemetry output (JSONL streams + flight dumps).

Usage::

    python tools/check_telemetry.py OUTDIR [OUTDIR ...] [--expect-flight]
    python tools/check_telemetry.py run_foo.jsonl

For a directory, every ``*.jsonl`` stream in it is validated line by
line against the record schema (base fields + per-stream required
fields + value invariants like ``red <= occ``), ``merged.jsonl`` is
additionally checked for deterministic (seed, t, run, i) ordering, and
every ``flight_*.json`` dump is checked for the snapshot schema.
``--expect-flight`` fails unless at least one flight dump is present —
used by CI's faulted telemetry smoke run. Exit status 0 = clean.

The per-stream field lists are the ones the samplers declare
(:data:`repro.telemetry.samplers.STREAM_FIELDS`): one source of truth.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

try:
    from repro.telemetry.samplers import STREAM_FIELDS
    from repro.telemetry.exporters import SCHEMA_VERSION
except ImportError:  # pragma: no cover - tooling convenience
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.telemetry.samplers import STREAM_FIELDS
    from repro.telemetry.exporters import SCHEMA_VERSION

BASE_FIELDS = ("t", "i", "run", "seed", "stream")


def _check_record(record: Dict, where: str, errors: List[str]) -> None:
    for field in BASE_FIELDS:
        if field not in record:
            errors.append(f"{where}: missing base field {field!r}")
            return
    if not isinstance(record["t"], int) or record["t"] < 0:
        errors.append(f"{where}: t must be a non-negative int (sim ns)")
    if not isinstance(record["i"], int) or record["i"] < 0:
        errors.append(f"{where}: i must be a non-negative int")
    stream = record["stream"]
    fields = STREAM_FIELDS.get(stream)
    if fields is None:
        errors.append(f"{where}: unknown stream {stream!r}")
        return
    missing = [f for f in fields if f not in record]
    if missing:
        errors.append(f"{where}: stream {stream!r} missing fields {missing}")
        return
    if stream == "queue":
        if record["occ"] <= 0 or record["red"] < 0 or record["red"] > record["occ"]:
            errors.append(f"{where}: queue row needs 0 <= red <= occ, occ > 0")
        if record["green"] != record["occ"] - record["red"]:
            errors.append(f"{where}: queue green != occ - red")
    elif stream == "buffer":
        if not (0 < record["used"] <= record["capacity"]):
            errors.append(f"{where}: buffer row needs 0 < used <= capacity")
        if record["peak"] > record["capacity"]:
            errors.append(f"{where}: buffer peak exceeds capacity")
    elif stream == "pfc":
        if record["paused"] not in (0, 1) or record["asserted"] not in (0, 1):
            errors.append(f"{where}: pfc paused/asserted must be 0/1")
        if not (record["paused"] or record["asserted"]):
            errors.append(f"{where}: pfc row for a quiet port")
    elif stream == "flow":
        if record["inflight"] < 0 or record["rto_armed"] not in (0, 1):
            errors.append(f"{where}: flow row needs inflight >= 0, rto_armed 0/1")
    elif stream == "link":
        if not (0 <= record["util"] <= 1):
            errors.append(f"{where}: link util out of [0, 1]")


def check_jsonl(path: str, merged: bool = False) -> Tuple[int, List[str]]:
    """Validate one JSONL stream; returns (record count, errors)."""
    errors: List[str] = []
    count = 0
    last_t = -1
    last_i = -1
    last_key: Tuple = ()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{os.path.basename(path)}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: invalid JSON ({exc})")
                continue
            if not isinstance(record, dict):
                errors.append(f"{where}: record is not an object")
                continue
            count += 1
            _check_record(record, where, errors)
            if len(errors) > 20:
                errors.append("(stopping after 20 errors)")
                return count, errors
            if merged:
                key = (record.get("seed", 0), record.get("t", 0),
                       str(record.get("run", "")), record.get("i", 0))
                if key < last_key:
                    errors.append(f"{where}: merged stream out of "
                                  f"(seed, t, run, i) order")
                last_key = key
            else:
                if record.get("t", 0) < last_t:
                    errors.append(f"{where}: sim time went backwards")
                if record.get("i", 0) <= last_i:
                    errors.append(f"{where}: emission seq not increasing")
                last_t = record.get("t", 0)
                last_i = record.get("i", 0)
    return count, errors


def check_flight(path: str) -> List[str]:
    """Validate one flight-recorder dump."""
    errors: List[str] = []
    name = os.path.basename(path)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{name}: unreadable ({exc})"]
    if payload.get("schema") != SCHEMA_VERSION:
        errors.append(f"{name}: schema != {SCHEMA_VERSION}")
    trigger = payload.get("trigger")
    if not isinstance(trigger, dict) or "kind" not in trigger or "time_ns" not in trigger:
        errors.append(f"{name}: trigger must carry kind + time_ns")
    if not isinstance(payload.get("samples"), list):
        errors.append(f"{name}: samples must be a list")
    else:
        for i, record in enumerate(payload["samples"][:64]):
            _check_record(record, f"{name}:samples[{i}]", errors)
    if not isinstance(payload.get("audit_trace"), list):
        errors.append(f"{name}: audit_trace must be a list")
    if "run" not in payload:
        errors.append(f"{name}: missing run id")
    return errors


def check_dir(out_dir: str) -> Tuple[Dict[str, int], int, List[str]]:
    """Validate a telemetry output directory.

    Returns (records per jsonl file, flight-dump count, errors).
    """
    errors: List[str] = []
    counts: Dict[str, int] = {}
    flights = 0
    for name in sorted(os.listdir(out_dir)):
        path = os.path.join(out_dir, name)
        if name.endswith(".jsonl"):
            count, errs = check_jsonl(path, merged=(name == "merged.jsonl"))
            counts[name] = count
            errors.extend(errs)
        elif name.startswith("flight_") and name.endswith(".json"):
            flights += 1
            errors.extend(check_flight(path))
    return counts, flights, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="telemetry output directories or .jsonl files")
    parser.add_argument("--expect-flight", action="store_true",
                        help="fail unless at least one flight-recorder dump "
                             "is present (faulted-run smoke)")
    args = parser.parse_args(argv)

    total = 0
    flights = 0
    errors: List[str] = []
    for path in args.paths:
        if os.path.isdir(path):
            counts, nflights, errs = check_dir(path)
            total += sum(counts.values())
            flights += nflights
            errors.extend(errs)
            for name, count in counts.items():
                print(f"{path}/{name}: {count} records")
        else:
            count, errs = check_jsonl(
                path, merged=os.path.basename(path) == "merged.jsonl")
            total += count
            errors.extend(errs)
            print(f"{path}: {count} records")
    if flights:
        print(f"{flights} flight dump(s) validated")
    if args.expect_flight and not flights:
        errors.append("expected at least one flight-recorder dump, found none")
    if total == 0:
        errors.append("no telemetry records found")
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print(f"OK: {total} records schema-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
