#!/usr/bin/env python3
"""Checkpoint/restore determinism gate for CI.

For each transport config, runs the same tiny service scenario three
ways and insists on bit-for-bit equal fingerprints
(:func:`repro.service.run.service_fingerprint`):

- **A** — uninterrupted run;
- **B** — same config with a mid-run checkpoint saved (saving must not
  perturb the simulation it snapshots);
- **C** — a fresh process-state restore from B's checkpoint file,
  driven to completion.

A == B proves checkpointing is observation-only; A == C proves the
restored object graph — engine heap, timer wheel, transports, switch
state, RNG streams, latency sketches — continues exactly where the
original would have been. The runtime invariant auditor is attached to
every run, so the gate also fails on any violated simulation
invariant.

Usage::

    python tools/check_service_checkpoint.py [--configs dctcp,dcqcn]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SERVICE_SPEC = {
    "requests": 150,
    "rate_rps": 30_000.0,
    "tiers": [
        {"name": "cache", "servers": 4, "fanout": 2, "service_ns": 2_000},
        {"name": "storage", "servers": 3, "fanout": 1,
         "workload": "web_server", "max_bytes": 8_000, "service_ns": 10_000,
         "hedge_ns": 2_000_000},
    ],
}

#: (label, transport, tlt) configurations the gate covers. dcqcn
#: exercises the per-switch RED RNG streams (module-level
#: EcnStreamFactory — the closure that used to make RoCE
#: un-picklable).
CONFIGS = (
    ("dctcp", "dctcp", False),
    ("dctcp_tlt", "dctcp", True),
    ("dcqcn", "dcqcn", False),
)


def check_one(label: str, transport: str, tlt: bool) -> None:
    from repro.experiments.scale import TINY
    from repro.experiments.scenarios import ScenarioConfig, run_scenario
    from repro.service.run import resume_service, service_fingerprint
    from repro.sim.checkpoint import default_path

    def config(**overrides):
        base = dict(transport=transport, tlt=tlt, scale=TINY,
                    service=SERVICE_SPEC, enable_background=False,
                    enable_incast=False, audit=True, seed=1)
        base.update(overrides)
        return ScenarioConfig(**base)

    started = time.perf_counter()
    fp_a = service_fingerprint(run_scenario(config()))
    with tempfile.TemporaryDirectory() as tmp:
        fp_b = service_fingerprint(run_scenario(config(checkpoint=tmp)))
        path = default_path(tmp)
        size_kb = os.path.getsize(path) / 1024
        fp_c = service_fingerprint(resume_service(path))
    wall = time.perf_counter() - started
    if fp_a != fp_b:
        raise SystemExit(
            f"{label}: checkpointed run diverged from uninterrupted run "
            f"(saving perturbed the simulation):\nA={fp_a}\nB={fp_b}")
    if fp_a != fp_c:
        raise SystemExit(
            f"{label}: restored run diverged from uninterrupted run:"
            f"\nA={fp_a}\nC={fp_c}")
    print(f"{label:10s} ok: events={fp_a['events']} now={fp_a['now']}ns "
          f"timeouts={fp_a['timeouts']} checkpoint={size_kb:.0f}kB "
          f"({wall:.1f}s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--configs", default=None, metavar="LABELS",
                        help="comma-separated subset of "
                             + ",".join(label for label, _, _ in CONFIGS))
    args = parser.parse_args(argv)

    wanted = set(args.configs.split(",")) if args.configs else None
    ran = 0
    for label, transport, tlt in CONFIGS:
        if wanted is not None and label not in wanted:
            continue
        check_one(label, transport, tlt)
        ran += 1
    if not ran:
        print(f"no configs matched {args.configs!r}", file=sys.stderr)
        return 2
    print(f"checkpoint/restore determinism: {ran} config(s) bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
