#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a benchmark run against a committed baseline and exits
non-zero when any benchmark's throughput (events/sec) dropped by more
than ``--threshold`` (default 25%).

Baselines are **per backend**: the pure-Python and compiled hot-path
kernels (see ``repro.sim.backend``) have wildly different absolute
rates, so one flat baseline would either never gate the compiled
backend or always fail the pure one. The baseline file keys rates by
backend name::

    {"schema": 2,
     "backends": {"pure":     {"source": ..., "benchmarks": {...}},
                  "compiled": {"source": ..., "benchmarks": {...}}}}

The run's backend is auto-detected — pytest-benchmark reports carry
``extra_info["backend"]`` (stamped by ``benchmarks/conftest.py``) and
``bench-report`` output carries a top-level ``"backend"`` key — and can
be overridden with ``--backend``. Runs without any backend annotation
(legacy reports) are treated as ``pure``, as are legacy schema-1
baselines with a flat ``"benchmarks"`` table. A *known* backend
(pure/compiled) with no baseline entry is a hard error — a gate without
a baseline is no gate — while an unknown/experimental backend name is
reported ungated, like a freshly added benchmark.

Accepted run formats (auto-detected):

- pytest-benchmark ``--benchmark-json`` output — throughput is
  ``extra_info["events"] / stats.min`` when the benchmark recorded an
  event count (see ``benchmarks/conftest.py:record_events``), else
  ``1 / stats.min`` (runs/sec). The fastest round is used rather than
  the mean: scheduling noise and CPU steal on shared runners only ever
  add time, so the minimum is the stablest estimate of the code's true
  cost (and what the stdlib ``timeit`` docs recommend comparing);
- ``tlt-experiment bench-report`` output (``BENCH_*.json``);
- a flat normalized table ``{"benchmarks": {name: {"events_per_sec":
  float}}}`` (the legacy schema-1 baseline format).

Usage::

    python tools/check_bench_regression.py bench.json BENCH_baseline.json
    python tools/check_bench_regression.py bench.json BENCH_baseline.json --update

``--update``/``--write-baseline`` record the run under its backend's
key and preserve every other backend's entry, so refreshing the
compiled numbers never touches the pure ones. Baselines are
machine-dependent: refresh with ``--update`` (run on the reference
machine / CI runner class) whenever the simulator's expected
performance legitimately changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Tuple

BASELINE_SCHEMA = 2

#: Backends the gate insists on having a baseline for. Anything else is
#: reported ungated (same treatment as a brand-new benchmark).
KNOWN_BACKENDS = ("pure", "compiled")


def _read_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return document


def load_run(path: str) -> Tuple[Dict[str, float], Optional[str]]:
    """Normalize a run report to ``({name: events_per_sec}, backend)``.

    ``backend`` is ``None`` when the report carries no annotation (or
    when a pytest-benchmark report disagrees with itself).
    """
    document = _read_json(path)
    rates: Dict[str, float] = {}
    backend: Optional[str] = None
    if isinstance(document.get("benchmarks"), list):
        # pytest-benchmark --benchmark-json format.
        tags = set()
        for bench in document["benchmarks"]:
            stats = bench["stats"]
            # Fastest round: noise on a shared runner is strictly
            # additive, so min is the stablest estimate of true cost.
            best = stats.get("min") or stats["mean"]
            if best <= 0:
                continue
            extra = bench.get("extra_info") or {}
            events = extra.get("events")
            rates[bench["name"]] = (float(events) if events else 1.0) / best
            tags.add(extra.get("backend"))
        if len(tags) == 1:
            backend = tags.pop()
    elif isinstance(document.get("benchmarks"), dict):
        # Normalized flat table (legacy schema-1 baseline format).
        for name, entry in document["benchmarks"].items():
            rate = entry["events_per_sec"] if isinstance(entry, dict) else entry
            if rate:
                rates[name] = float(rate)
        backend = document.get("backend")
    elif isinstance(document.get("experiments"), dict):
        # tlt-experiment bench-report format.
        for name, entry in document["experiments"].items():
            rate = entry.get("events_per_sec")
            if rate:
                rates[name] = float(rate)
        backend = document.get("backend")
    else:
        raise ValueError(f"{path}: unrecognized benchmark report format")
    return rates, backend


def load_rates(path: str) -> Dict[str, float]:
    """Normalize any supported report format to {name: events_per_sec}."""
    return load_run(path)[0]


def load_baseline(path: str) -> Dict[str, Dict[str, float]]:
    """Load a baseline file as ``{backend: {name: events_per_sec}}``.

    Schema-2 files carry the per-backend table directly; legacy
    schema-1 files (one flat ``"benchmarks"`` table) are interpreted as
    pure-backend numbers — the only backend that existed when they were
    written.
    """
    document = _read_json(path)
    if isinstance(document.get("backends"), dict):
        tables: Dict[str, Dict[str, float]] = {}
        for backend, entry in document["backends"].items():
            table: Dict[str, float] = {}
            for name, value in (entry.get("benchmarks") or {}).items():
                rate = value["events_per_sec"] if isinstance(value, dict) else value
                if rate:
                    table[name] = float(rate)
            tables[backend] = table
        return tables
    if isinstance(document.get("benchmarks"), dict):
        return {"pure": load_rates(path)}
    raise ValueError(f"{path}: unrecognized baseline format")


def write_baseline(rates: Dict[str, float], path: str, source: str,
                   backend: str = "pure") -> None:
    """Record ``rates`` under ``backend``, preserving other backends."""
    backends: Dict[str, dict] = {}
    if os.path.exists(path):
        existing = _read_json(path)
        if isinstance(existing.get("backends"), dict):
            backends.update(existing["backends"])
        elif isinstance(existing.get("benchmarks"), dict):
            # Migrate a legacy flat baseline: its numbers were pure's.
            backends["pure"] = {
                "source": existing.get("source", "unknown"),
                "benchmarks": existing["benchmarks"],
            }
    backends[backend] = {
        "source": os.path.basename(source),
        "benchmarks": {
            name: {"events_per_sec": round(rate, 1)}
            for name, rate in sorted(rates.items())
        },
    }
    payload = {
        "schema": BASELINE_SCHEMA,
        "note": "events/sec per benchmark, keyed by hot-path backend; "
                "refresh one backend's numbers with "
                "tools/check_bench_regression.py <run> <this file> --update",
        "backends": backends,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(current: Dict[str, float], baseline: Dict[str, float],
            threshold: float) -> int:
    """Print a comparison table; return the number of gate failures."""
    failures = 0
    width = max((len(n) for n in {*current, *baseline}), default=4)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name in sorted(baseline):
        base_rate = baseline[name]
        if name not in current:
            failures += 1
            print(f"{name.ljust(width)}  {base_rate:12.0f}  {'MISSING':>12}  "
                  f"{'-':>7}  FAIL (benchmark disappeared)")
            continue
        rate = current[name]
        ratio = rate / base_rate
        if ratio < 1.0 - threshold:
            failures += 1
            verdict = f"FAIL (>{threshold:.0%} throughput drop)"
        elif ratio > 1.0 + threshold:
            verdict = "ok (improved — consider --update)"
        else:
            verdict = "ok"
        print(f"{name.ljust(width)}  {base_rate:12.0f}  {rate:12.0f}  "
              f"{ratio:6.2f}x  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name.ljust(width)}  {'-':>12}  {current[name]:12.0f}  "
              f"{'-':>7}  new (not gated; --update to adopt)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="benchmark run to check "
                        "(pytest-benchmark or bench-report JSON)")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                        help="max tolerated relative throughput drop (default 0.25)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="override the run's backend (default: auto-detect "
                             "from the report, falling back to 'pure')")
    parser.add_argument("--update", action="store_true",
                        help="rewrite this backend's entry in the baseline "
                             "from the current run (other backends' entries "
                             "are preserved) and exit")
    parser.add_argument("--write-baseline", action="store_true",
                        help="create the baseline from the current run when "
                             "none exists yet (refuses to overwrite; use "
                             "--update to refresh an existing baseline)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print(f"error: benchmark run {args.current} does not exist",
              file=sys.stderr)
        return 2
    current, detected = load_run(args.current)
    backend = args.backend or detected or "pure"
    if not current:
        print(f"error: no usable benchmarks in {args.current}", file=sys.stderr)
        return 2
    if args.write_baseline:
        if os.path.exists(args.baseline):
            print(f"error: {args.baseline} already exists; use --update to "
                  f"refresh it", file=sys.stderr)
            return 2
        write_baseline(current, args.baseline, source=args.current,
                       backend=backend)
        print(f"baseline created from {args.current} [{backend}]: "
              f"{len(current)} benchmarks -> {args.baseline}")
        return 0
    if args.update:
        write_baseline(current, args.baseline, source=args.current,
                       backend=backend)
        print(f"baseline updated from {args.current} [{backend}]: "
              f"{len(current)} benchmarks -> {args.baseline}")
        return 0

    # A gate without a baseline is no gate: silently passing here would
    # let CI report green while checking nothing.
    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} does not exist; create it "
              f"from a trusted run with --write-baseline", file=sys.stderr)
        return 2
    tables = load_baseline(args.baseline)
    if backend not in tables:
        if backend in KNOWN_BACKENDS:
            print(f"error: baseline {args.baseline} has no entry for backend "
                  f"{backend!r}; record one from a trusted run with --update",
                  file=sys.stderr)
            return 2
        # An experimental backend name: report, don't gate.
        print(f"backend {backend!r} has no baseline (not gated; --update to adopt):")
        width = max((len(n) for n in current), default=4)
        for name in sorted(current):
            print(f"{name.ljust(width)}  {current[name]:12.0f}  new")
        return 0
    baseline = tables[backend]
    if not baseline:
        print(f"error: no usable benchmarks for backend {backend!r} in "
              f"baseline {args.baseline}; refresh it with --update",
              file=sys.stderr)
        return 2
    print(f"backend: {backend}")
    failures = compare(current, baseline, args.threshold)
    if failures:
        print(f"\n{failures} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
