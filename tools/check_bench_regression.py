#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a benchmark run against a committed baseline and exits
non-zero when any benchmark's throughput (events/sec) dropped by more
than ``--threshold`` (default 25%).

Accepted input formats (auto-detected):

- pytest-benchmark ``--benchmark-json`` output — throughput is
  ``extra_info["events"] / stats.min`` when the benchmark recorded an
  event count (see ``benchmarks/conftest.py:record_events``), else
  ``1 / stats.min`` (runs/sec). The fastest round is used rather than
  the mean: scheduling noise and CPU steal on shared runners only ever
  add time, so the minimum is the stablest estimate of the code's true
  cost (and what the stdlib ``timeit`` docs recommend comparing);
- ``tlt-experiment bench-report`` output (``BENCH_*.json``);
- the normalized baseline format this tool writes with ``--update``:
  ``{"benchmarks": {name: {"events_per_sec": float}}, ...}``.

Usage::

    python tools/check_bench_regression.py bench.json BENCH_baseline.json
    python tools/check_bench_regression.py bench.json BENCH_baseline.json --update

Baselines are machine-dependent: refresh with ``--update`` (run on the
reference machine / CI runner class) whenever the simulator's expected
performance legitimately changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

BASELINE_SCHEMA = 1


def load_rates(path: str) -> Dict[str, float]:
    """Normalize any supported report format to {name: events_per_sec}."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")

    rates: Dict[str, float] = {}
    if isinstance(document.get("benchmarks"), list):
        # pytest-benchmark --benchmark-json format.
        for bench in document["benchmarks"]:
            stats = bench["stats"]
            # Fastest round: noise on a shared runner is strictly
            # additive, so min is the stablest estimate of true cost.
            best = stats.get("min") or stats["mean"]
            if best <= 0:
                continue
            events = (bench.get("extra_info") or {}).get("events")
            rates[bench["name"]] = (float(events) if events else 1.0) / best
    elif isinstance(document.get("benchmarks"), dict):
        # Normalized baseline format (written by --update).
        for name, entry in document["benchmarks"].items():
            rate = entry["events_per_sec"] if isinstance(entry, dict) else entry
            if rate:
                rates[name] = float(rate)
    elif isinstance(document.get("experiments"), dict):
        # tlt-experiment bench-report format.
        for name, entry in document["experiments"].items():
            rate = entry.get("events_per_sec")
            if rate:
                rates[name] = float(rate)
    else:
        raise ValueError(f"{path}: unrecognized benchmark report format")
    return rates


def write_baseline(rates: Dict[str, float], path: str, source: str) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "source": os.path.basename(source),
        "note": "events/sec per benchmark; refresh with "
                "tools/check_bench_regression.py <run> <this file> --update",
        "benchmarks": {
            name: {"events_per_sec": round(rate, 1)}
            for name, rate in sorted(rates.items())
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(current: Dict[str, float], baseline: Dict[str, float],
            threshold: float) -> int:
    """Print a comparison table; return the number of gate failures."""
    failures = 0
    width = max((len(n) for n in {*current, *baseline}), default=4)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name in sorted(baseline):
        base_rate = baseline[name]
        if name not in current:
            failures += 1
            print(f"{name.ljust(width)}  {base_rate:12.0f}  {'MISSING':>12}  "
                  f"{'-':>7}  FAIL (benchmark disappeared)")
            continue
        rate = current[name]
        ratio = rate / base_rate
        if ratio < 1.0 - threshold:
            failures += 1
            verdict = f"FAIL (>{threshold:.0%} throughput drop)"
        elif ratio > 1.0 + threshold:
            verdict = "ok (improved — consider --update)"
        else:
            verdict = "ok"
        print(f"{name.ljust(width)}  {base_rate:12.0f}  {rate:12.0f}  "
              f"{ratio:6.2f}x  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name.ljust(width)}  {'-':>12}  {current[name]:12.0f}  "
              f"{'-':>7}  new (not gated; --update to adopt)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="benchmark run to check "
                        "(pytest-benchmark or bench-report JSON)")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                        help="max tolerated relative throughput drop (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the existing baseline from the current "
                             "run and exit")
    parser.add_argument("--write-baseline", action="store_true",
                        help="create the baseline from the current run when "
                             "none exists yet (refuses to overwrite; use "
                             "--update to refresh an existing baseline)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print(f"error: benchmark run {args.current} does not exist",
              file=sys.stderr)
        return 2
    current = load_rates(args.current)
    if not current:
        print(f"error: no usable benchmarks in {args.current}", file=sys.stderr)
        return 2
    if args.write_baseline:
        if os.path.exists(args.baseline):
            print(f"error: {args.baseline} already exists; use --update to "
                  f"refresh it", file=sys.stderr)
            return 2
        write_baseline(current, args.baseline, source=args.current)
        print(f"baseline created from {args.current}: "
              f"{len(current)} benchmarks -> {args.baseline}")
        return 0
    if args.update:
        write_baseline(current, args.baseline, source=args.current)
        print(f"baseline updated from {args.current}: "
              f"{len(current)} benchmarks -> {args.baseline}")
        return 0

    # A gate without a baseline is no gate: silently passing here would
    # let CI report green while checking nothing.
    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} does not exist; create it "
              f"from a trusted run with --write-baseline", file=sys.stderr)
        return 2
    baseline = load_rates(args.baseline)
    if not baseline:
        print(f"error: no usable benchmarks in baseline {args.baseline}; "
              f"refresh it with --update", file=sys.stderr)
        return 2
    failures = compare(current, baseline, args.threshold)
    if failures:
        print(f"\n{failures} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
