"""Benchmark: regenerate Figure 13 (mixed cache + background traffic)."""

from repro.experiments import fig13_mixed_traffic as exp
from repro.experiments.common import format_table


def test_fig13_mixed_traffic(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 13"))
    assert len(rows) == 2
    base, tlt = rows
    assert base["answered"] == tlt["answered"] == 152
    # TLT cuts the foreground 99%-ile (71% in the paper).
    assert tlt["fg_p99_ms"] <= base["fg_p99_ms"]
    # ... without destroying background goodput.
    assert tlt["bg_goodput_gbps"] > 0.5 * base["bg_goodput_gbps"]
