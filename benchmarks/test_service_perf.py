"""Service-path hot loops: streaming-quantile ingest and open-loop
arrival generation.

Both are per-request costs of the service emulator (:mod:`repro.service`)
— every completed request folds latencies into
:class:`repro.stats.streaming.StreamingQuantile` sketches, and every
request starts life as a timer-wheel re-arm in
:class:`repro.service.arrivals.OpenLoopArrivals` — so a regression in
either shows up as lost simulated requests/second in every service-slo
run. Rate-gated against ``BENCH_baseline.json`` via
``tools/check_bench_regression.py`` like every other simulator
benchmark (one sample or arrival counts as one "event").
"""

import random

from repro.sim.backend import create_engine
from repro.stats.streaming import StreamingQuantile, merge_all

#: Samples folded per ingest round; arrivals generated per round.
SAMPLES = 200_000
ARRIVALS = 100_000


def test_streaming_quantile_ingest(benchmark, record_events):
    """add() throughput on a realistic latency stream (integer ns),
    plus the sharded-merge + summarize tail every run pays once."""
    rng = random.Random(42)
    values = [int(rng.lognormvariate(12.0, 1.0)) for _ in range(SAMPLES)]

    def ingest():
        shards = [StreamingQuantile() for _ in range(4)]
        for index, value in enumerate(values):
            shards[index & 3].add(value)
        merged = merge_all(shards)
        assert len(merged) == SAMPLES
        assert merged.summarize()["p99"] > 0
        return SAMPLES

    events = benchmark(ingest)
    record_events(benchmark, events)


def test_open_loop_arrival_rate(benchmark, record_events):
    """Arrival generation on the timer wheel: each request is one
    interarrival draw + one schedule_timer re-arm + one fire."""
    from repro.service.arrivals import OpenLoopArrivals

    def generate():
        engine = create_engine()
        fired = [0]

        def sink():
            fired[0] += 1

        arrivals = OpenLoopArrivals(engine, sink, total=ARRIVALS,
                                    rate_rps=1e6, seed=11)
        arrivals.schedule()
        engine.run(until=10**12)
        assert fired[0] == ARRIVALS
        return engine.events_processed

    events = benchmark(generate)
    record_events(benchmark, events)
