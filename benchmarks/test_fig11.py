"""Benchmark: regenerate Figure 11 (important fraction & queue sizes)."""

from repro.experiments import fig11_queue_behavior as exp
from repro.experiments.common import format_table


def test_fig11_queue_behavior(benchmark, bench_scale):
    results = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                                 iterations=1, rounds=1)
    print()
    print(format_table(results["fraction"], exp.COLUMNS_A, "Figure 11a"))
    print(format_table(results["queues"], exp.COLUMNS_B, "Figure 11b"))
    queues = {r["scheme"]: r for r in results["queues"]}
    # TLT caps the red queue at/below the 400 kB threshold and keeps the
    # total maximum queue below vanilla DCTCP's.
    assert queues["dctcp+tlt"]["max_red_queue_kB"] <= 400
    assert queues["dctcp+tlt"]["max_queue_kB"] <= queues["dctcp"]["max_queue_kB"]
