"""Benchmark: regenerate Figure 5 (TCP/DCTCP FCT per recovery scheme)."""

from repro.experiments import fig05_tcp_family as exp
from repro.experiments.common import format_table


def test_fig05_tcp_family(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 5"))
    assert len(rows) == 12  # 2 transports x 6 schemes
    for transport in ("dctcp", "tcp"):
        base = next(r for r in rows if r["transport"] == transport and r["scheme"] == "baseline")
        tlt = next(r for r in rows if r["transport"] == transport and r["scheme"] == "tlt")
        # TLT (virtually) eliminates timeouts versus the baseline.
        assert tlt["timeouts_per_1k"] <= base["timeouts_per_1k"]
        assert tlt["incomplete"] == 0
