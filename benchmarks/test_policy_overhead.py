"""Admission-policy dispatch overhead on the switch hot path.

The default configuration (``admission=None``) must keep the open-coded
fast path: the policy choice is bound at switch construction, never
branched per packet. These benchmarks put the default path and the
semantically identical generic dispatch (``admission="ch-static-k"``)
side by side on the same incast kernel as
``test_incast_simulation_rate`` — the default must stay within noise of
``BENCH_baseline.json``, and the dispatch variant documents what the
policy lab pays for its flexibility.
"""

from repro.core.config import TltConfig
from repro.net.topology import TopologyParams, star
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow


def _run_incast(admission):
    params = TopologyParams(
        switch_config=SwitchConfig(
            buffer_bytes=1_000_000,
            color_threshold_bytes=100_000,
            admission=admission,
        ),
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
    )
    net = star(num_hosts=9, params=params)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=128_000)
        create_flow("dctcp", net, spec, config, TltConfig())
    net.engine.run(until=5_000_000_000)
    assert net.stats.incomplete_flows() == 0
    return net.engine.events_processed


def test_default_policy_incast_rate(benchmark, record_events):
    """The production path: open-coded Choudhury–Hahne + static-K."""
    events = benchmark(_run_incast, None)
    record_events(benchmark, events)


def test_explicit_policy_dispatch_incast_rate(benchmark, record_events):
    """The same math through the generic AdmissionPolicy dispatch."""
    events = benchmark(_run_incast, "ch-static-k")
    record_events(benchmark, events)
