"""Benchmarks: extension/ablation experiments beyond the paper's
evaluation section (incremental deployment §5.3; periodic-N footnote)."""

from repro.experiments import ext_incremental, ext_periodic_n
from repro.experiments.common import format_table


def test_ext_incremental_deployment(benchmark, bench_scale):
    rows = benchmark.pedantic(ext_incremental.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, ext_incremental.COLUMNS, "Incremental deployment"))
    by = {r["deployment"]: r for r in rows}
    # Isolated deployment must not hurt legacy traffic more than the
    # misconfigured shared queue does.
    assert by["isolated"]["legacy_timeouts"] <= by["shared-bad"]["legacy_timeouts"]


def test_ext_corruption_fallback(benchmark, bench_scale):
    from repro.experiments import ext_corruption

    rows = benchmark.pedantic(ext_corruption.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, ext_corruption.COLUMNS, "Corruption fallback"))
    # The fallback is graceful: every flow still completes at every rate.
    assert all(r["incomplete"] == 0 for r in rows)
    # Heavy corruption brings (at least as many) timeouts back.
    assert rows[-1]["timeouts_per_1k"] >= rows[0]["timeouts_per_1k"]


def test_ext_periodic_n(benchmark, bench_scale):
    rows = benchmark.pedantic(ext_periodic_n.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, ext_periodic_n.COLUMNS, "Periodic marking N"))
    assert len(rows) == 5
    # Smaller N marks more packets important.
    n48 = next(r for r in rows if r["periodic_n"] == 48)
    n384 = next(r for r in rows if r["periodic_n"] == 384)
    assert n48["important_fraction"] >= n384["important_fraction"]
