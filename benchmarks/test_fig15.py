"""Benchmark: regenerate Figure 15 (workload/load grid).

The default covers a representative subset; run the module's ``main``
with ``loads=(0.2,0.3,0.4,0.5), full_schemes=True`` for the full grid.
"""

from repro.experiments import fig15_workloads as exp
from repro.experiments.common import format_table


def test_fig15_workloads(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 15 (subset)"))
    # 3 workloads x 1 load x 5 transports x 2 schemes.
    assert len(rows) == 30
    # (DC)TCP/IRN: TLT beats the baseline tail in every workload.
    for workload in exp.WORKLOADS:
        for transport in ("dctcp", "irn"):
            pair = [r for r in rows
                    if r["workload"] == workload and r["transport"] == transport]
            base = next(r for r in pair if r["scheme"] != "tlt")
            tlt = next(r for r in pair if r["scheme"] == "tlt")
            assert tlt["fg_p999_ms"] <= base["fg_p999_ms"] * 1.5
