"""Micro-benchmarks of the simulator itself (not a paper figure).

Tracks the engine's raw event throughput and the end-to-end packet
forwarding rate, so performance regressions in the hot paths show up
in the benchmark report alongside the figure regenerations.

Each test records its engine-event count via ``record_events`` so
``--benchmark-json`` reports carry events/sec; CI gates these against
``BENCH_baseline.json`` with ``tools/check_bench_regression.py``.
"""

from repro.net.topology import TopologyParams, star
from repro.sim.backend import create_engine
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow


def _star(num_hosts=4, **switch_kwargs):
    switch_kwargs.setdefault("buffer_bytes", 1_000_000)
    params = TopologyParams(
        switch_config=SwitchConfig(**switch_kwargs),
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
    )
    return star(num_hosts=num_hosts, params=params)


def test_engine_event_throughput(benchmark, record_events):
    def run_events():
        engine = create_engine()

        def chain(n):
            if n:
                engine.schedule(1, chain, n - 1)

        engine.schedule(0, chain, 100_000)
        engine.run()
        return engine.events_processed

    events = benchmark(run_events)
    record_events(benchmark, events)
    assert events == 100_001


def test_flow_forwarding_rate(benchmark, record_events):
    """One 5 MB TCP flow across a star switch: ~7k packets round trip."""

    def run_flow_once():
        net = _star()
        spec = FlowSpec(flow_id=net.new_flow_id(), src=0, dst=1, size=5_000_000)
        create_flow("tcp", net, spec, TransportConfig(base_rtt_ns=4_000))
        net.engine.run()
        assert net.stats.flows[spec.flow_id].completed
        return net.engine.events_processed

    events = benchmark(run_flow_once)
    record_events(benchmark, events)
    assert events > 10_000


def test_incast_simulation_rate(benchmark, record_events):
    """An 8-to-1 DCTCP incast with TLT — the common experiment kernel."""
    from repro.core.config import TltConfig

    def run_incast():
        net = _star(num_hosts=9, color_threshold_bytes=100_000)
        config = TransportConfig(base_rtt_ns=4_000)
        for src in range(1, 9):
            spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=128_000)
            create_flow("dctcp", net, spec, config, TltConfig())
        net.engine.run(until=5_000_000_000)
        assert net.stats.incomplete_flows() == 0
        return net.engine.events_processed

    events = benchmark(run_incast)
    record_events(benchmark, events)


def test_timer_churn_throughput(benchmark, record_events):
    """Chained events that each re-arm a coarse timer — the RTO pattern
    (schedule, then cancel-and-reschedule on every ACK). Exercises the
    timer wheel's O(1) cancel/re-add path; before the wheel, every
    re-arm left a dead entry in the heap."""

    def run_churn():
        engine = create_engine()
        state = {"timer": None, "fired": 0}

        def on_timeout():
            state["fired"] += 1

        def chain(n):
            if state["timer"] is not None:
                state["timer"].cancel()
            state["timer"] = engine.schedule_timer(1_000_000, on_timeout)
            if n:
                engine.schedule(100, chain, n - 1)

        engine.schedule(0, chain, 50_000)
        engine.run()
        # Every re-arm cancelled its predecessor; only the last fires.
        assert state["fired"] == 1
        return engine.events_processed

    events = benchmark(run_churn)
    record_events(benchmark, events)
    assert events == 50_002


def test_packet_alloc_churn(benchmark, record_events):
    """Many small flows through one switch: allocation-dominated — every
    data packet and ACK goes through the free-list packet pool, and the
    segment scoreboards churn. Catches regressions in alloc/recycle."""

    def run_flows():
        net = _star(num_hosts=5)
        config = TransportConfig(base_rtt_ns=4_000)
        for i in range(48):
            spec = FlowSpec(
                flow_id=net.new_flow_id(), src=i % 4 + 1, dst=0, size=16_000
            )
            create_flow("tcp", net, spec, config)
        net.engine.run(until=2_000_000_000)
        assert net.stats.incomplete_flows() == 0
        return net.engine.events_processed

    events = benchmark(run_flows)
    record_events(benchmark, events)
