"""Benchmark configuration.

Each benchmark regenerates one figure/table of the paper at the
``small`` scale (see ``repro.experiments.scale``) and prints the rows,
so ``pytest benchmarks/ --benchmark-only`` reproduces the evaluation.
Set ``TLT_BENCH_SCALE=tiny`` for a quick pass or ``medium``/``paper``
for larger runs, and ``TLT_BENCH_JOBS=N`` to fan seeded runs out over
N worker processes (see ``repro.experiments.parallel``).

The on-disk result cache is disabled while benchmarking — a cache hit
would report artifact-read time as simulation time — unless
``TLT_BENCH_CACHE=1`` explicitly opts in.
"""

import os

import pytest

from repro.experiments import parallel
from repro.sim import backend as backend_mod


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("TLT_BENCH_SCALE", "small")


@pytest.fixture(autouse=True, scope="session")
def bench_execution():
    """Benchmark-wide execution context: optional parallelism, no cache.

    The runtime invariant auditor is switched off explicitly: audited
    switches run the hooked data-path variants, and a benchmark taken
    with ``TLT_AUDIT`` leaking in from the environment would silently
    measure the wrong code path. The same goes for every other
    behavior-changing knob — ``TLT_TELEMETRY`` (samplers + JSONL
    streaming), ``TLT_SHARDS`` (worker processes + window barriers) and
    ``TLT_FAULTS`` (fault interceptors on the data path) are scrubbed
    for the session and restored afterwards.

    The hot-path backend is the one deliberate exception: it is part of
    what a benchmark *measures*, so ``TLT_BACKEND`` is resolved ONCE
    here — pinned programmatically via :func:`repro.sim.backend.set_backend`
    (which fails loudly if a compiled build was requested but is
    absent) and then scrubbed from the environment like the rest. Every
    benchmark's JSON entry records the resolved name in
    ``extra_info["backend"]`` so reports and the regression gate can
    never attribute numbers to the wrong backend.
    """
    prev_audit = os.environ.get("TLT_AUDIT")
    os.environ["TLT_AUDIT"] = "0"
    # Likewise telemetry: a leaked TLT_TELEMETRY would attach samplers
    # (and stream JSONL) to every scenario run being timed.
    prev_telemetry = os.environ.pop("TLT_TELEMETRY", None)
    prev_shards = os.environ.pop("TLT_SHARDS", None)
    prev_faults = os.environ.pop("TLT_FAULTS", None)
    prev_backend = os.environ.pop("TLT_BACKEND", None)
    requested = prev_backend or "pure"
    backend_mod.set_backend(requested)  # loud ValueError/RuntimeError
    try:
        with parallel.execution(
            jobs=max(1, int(os.environ.get("TLT_BENCH_JOBS", "1"))),
            use_cache=os.environ.get("TLT_BENCH_CACHE", "0") == "1",
        ):
            yield
    finally:
        backend_mod.set_backend(None)
        if prev_audit is None:
            os.environ.pop("TLT_AUDIT", None)
        else:
            os.environ["TLT_AUDIT"] = prev_audit
        if prev_telemetry is not None:
            os.environ["TLT_TELEMETRY"] = prev_telemetry
        if prev_shards is not None:
            os.environ["TLT_SHARDS"] = prev_shards
        if prev_faults is not None:
            os.environ["TLT_FAULTS"] = prev_faults
        if prev_backend is not None:
            os.environ["TLT_BACKEND"] = prev_backend


@pytest.fixture(autouse=True)
def bench_backend_tag(request):
    """Stamp the resolved backend on every benchmark's ``extra_info``."""
    yield
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        benchmark.extra_info.setdefault("backend", backend_mod.current_backend())


@pytest.fixture
def record_events():
    """Attach an engine-event count to a benchmark so reports carry
    throughput (events/sec), which ``tools/check_bench_regression.py``
    gates on instead of raw wall time."""

    def _record(benchmark, events) -> None:
        if events:
            benchmark.extra_info["events"] = int(events)

    return _record


def run_and_print(benchmark, fn, printer, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and print its rows."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
    printer(result)
    return result
