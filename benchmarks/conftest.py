"""Benchmark configuration.

Each benchmark regenerates one figure/table of the paper at the
``small`` scale (see ``repro.experiments.scale``) and prints the rows,
so ``pytest benchmarks/ --benchmark-only`` reproduces the evaluation.
Set ``TLT_BENCH_SCALE=tiny`` for a quick pass or ``medium``/``paper``
for larger runs.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("TLT_BENCH_SCALE", "small")


def run_and_print(benchmark, fn, printer, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and print its rows."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
    printer(result)
    return result
