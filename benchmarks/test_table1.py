"""Benchmark: regenerate Table 1 (important-packet loss rate)."""

from repro.experiments import table1_important_loss as exp
from repro.experiments.common import format_table


def test_table1_important_loss(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Table 1"))
    assert len(rows) == 2 * (2 * 3 + 2)  # paper grid + stress rows
    # At the paper's recommended 400 kB threshold with 5% foreground,
    # DCTCP shows no important packet drops.
    dctcp_400 = next(r for r in rows if r["transport"] == "dctcp"
                     and r["threshold_kB"] == 400 and r["fg_share"] == 0.05)
    assert dctcp_400["important_loss_rate"] < 1e-4
