"""Benchmark: regenerate Figure 14 (testbed incast microbenchmark)."""

from repro.experiments import fig14_incast_microbench as exp
from repro.experiments.common import format_table


def test_fig14_incast(benchmark, bench_scale):
    counts = (8, 40, 100, 160)
    rows = benchmark.pedantic(
        exp.run, kwargs={"scale": bench_scale, "flow_counts": counts},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 14"))
    assert len(rows) == 2 * 3 * len(counts)
    for transport in ("tcp", "dctcp"):
        tlt_rows = [r for r in rows if r["transport"] == transport and r["scheme"] == "tlt"]
        # TLT handles the highest fan-in without a single timeout.
        assert all(r["timeouts"] == 0 for r in tlt_rows)


def test_fig14_cdf(benchmark, bench_scale):
    rows = benchmark.pedantic(
        exp.run_cdf, kwargs={"scale": bench_scale, "flows": 128},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, ["scheme", "p50_ms", "p90_ms", "p96_ms", "p99_ms", "p100_ms"],
                       "Figure 14c: FCT CDF at 128 flows"))
    tlt = next(r for r in rows if r["scheme"] == "tlt")
    base = next(r for r in rows if r["scheme"] == "rto4ms")
    if base["p99_ms"] > 2.0:  # baseline tail is timeout-dominated
        assert tlt["p99_ms"] < base["p99_ms"]
    else:  # light congestion: TLT must stay in the same ballpark
        assert tlt["p99_ms"] <= base["p99_ms"] * 1.5
