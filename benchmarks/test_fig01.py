"""Benchmark: regenerate Figure 1 (RTT vs estimated RTO CDFs)."""

from repro.experiments import fig01_rto_cdf as exp
from repro.experiments.common import format_table


def test_fig01_rto_cdf(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, ["group", "metric", "p50", "p90", "p99"],
                       "Figure 1: RTT vs estimated RTO"))
    assert len(rows) == 4
    # Estimated RTOs sit above typical RTTs (the paper's point).
    bg_rtt = next(r for r in rows if r["group"] == "bg" and r["metric"] == "rtt_us")
    bg_rto = next(r for r in rows if r["group"] == "bg" and r["metric"] == "rto_us")
    assert bg_rto["p90"] >= bg_rtt["p50"]
