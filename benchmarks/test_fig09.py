"""Benchmark: regenerate Figure 9 (load sweep, PFC on)."""

from repro.experiments import fig09_load_sweep as exp
from repro.experiments.common import format_table


def test_fig09_load_sweep(benchmark, bench_scale):
    loads = (0.2, 0.4, 0.6)
    rows = benchmark.pedantic(
        exp.run, kwargs={"scale": bench_scale, "loads": loads},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 9"))
    assert len(rows) == 2 * 2 * len(loads)
