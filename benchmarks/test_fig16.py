"""Benchmark: regenerate Figure 16 (segment delivery time CDF)."""

from repro.experiments import fig16_delivery_cdf as exp
from repro.experiments.common import format_table


def test_fig16_delivery_cdf(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 16"))
    base = next(r for r in rows if r["scheme"] == "dctcp")
    tlt = next(r for r in rows if r["scheme"] == "dctcp+tlt")
    # TLT improves the delivery-time tail (57.6% at p99.9 in the paper)
    # whenever the baseline tail is timeout-dominated; under light
    # congestion TLT's proactive red drops may add a little.
    if base["p99.9_us"] > 2_000:
        assert tlt["p99.9_us"] < base["p99.9_us"]
    else:
        assert tlt["p99.9_us"] <= base["p99.9_us"] * 2.0
