"""Benchmark: regenerate Figure 18 (incast degree sweep)."""

from repro.experiments import fig18_incast_degree as exp
from repro.experiments.common import format_table


def test_fig18_incast_degree(benchmark, bench_scale):
    degrees = (2, 6, 10)
    rows = benchmark.pedantic(
        exp.run, kwargs={"scale": bench_scale, "degrees": degrees},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 18"))
    assert len(rows) == 2 * 2 * len(degrees)
    # At the highest incast degree TLT lowers the foreground tail.
    for transport in ("tcp", "hpcc"):
        base = next(r for r in rows if r["transport"] == transport
                    and not r["tlt"] and r["degree"] == 10)
        tlt = next(r for r in rows if r["transport"] == transport
                   and r["tlt"] and r["degree"] == 10)
        assert tlt["fg_p999_ms"] <= base["fg_p999_ms"]
