"""Telemetry overhead benchmark: off vs sampling at 10 µs cadence.

Two runs of the same incast kernel as
``test_simulator_perf.test_incast_simulation_rate``:

- **off**: no telemetry attached — the zero-cost disabled path the
  acceptance criteria gate (< 2% vs baseline; the only residual cost is
  the ``stats.on_rto_fire is not None`` check off the hot path);
- **10 µs**: a full :class:`repro.telemetry.Telemetry` attachment
  (every sampler + streaming JSONL) at an aggressive 10 µs cadence —
  the price of watching a run, reported side by side so regressions in
  sampler cost show up in CI's benchmark artifact.

Both are rate-gated against ``BENCH_baseline.json`` via
``tools/check_bench_regression.py`` like every other simulator
benchmark.
"""

from repro.core.config import TltConfig
from repro.net.topology import TopologyParams, star
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow


def _incast_net():
    params = TopologyParams(
        switch_config=SwitchConfig(buffer_bytes=1_000_000,
                                   color_threshold_bytes=100_000),
        host_link_delay_ns=1_000,
        fabric_link_delay_ns=1_000,
    )
    net = star(num_hosts=9, params=params)
    config = TransportConfig(base_rtt_ns=4_000)
    for src in range(1, 9):
        spec = FlowSpec(flow_id=net.new_flow_id(), src=src, dst=0, size=128_000)
        create_flow("dctcp", net, spec, config, TltConfig())
    return net


def test_incast_telemetry_off(benchmark, record_events):
    """The incast kernel with telemetry disabled (nothing installed)."""

    def run_incast():
        net = _incast_net()
        net.engine.run(until=5_000_000_000)
        assert net.stats.incomplete_flows() == 0
        return net.engine.events_processed

    events = benchmark(run_incast)
    record_events(benchmark, events)


def test_incast_telemetry_10us(benchmark, record_events, tmp_path):
    """The same kernel with every sampler armed at 10 µs + JSONL on."""
    from repro.telemetry import Telemetry, TelemetryConfig

    config = TelemetryConfig(
        out_dir=str(tmp_path), interval_ns=10_000,
        prometheus=False, report=False,
    )

    def run_incast():
        net = _incast_net()
        telemetry = Telemetry(net, config).install()
        net.engine.run(until=5_000_000_000)
        assert net.stats.incomplete_flows() == 0
        summary = telemetry.finalize()
        assert summary["emitted"] > 0
        return net.engine.events_processed

    events = benchmark(run_incast)
    record_events(benchmark, events)
