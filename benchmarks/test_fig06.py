"""Benchmark: regenerate Figure 6 (RoCE transports FCT)."""

from repro.experiments import fig06_roce_family as exp
from repro.experiments.common import format_table


def test_fig06_roce_family(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 6"))
    # hpcc/dcqcn-sack/dcqcn have 4 schemes, irn has 2.
    assert len(rows) == 4 + 2 + 4 + 4
    for transport in ("hpcc", "irn", "dcqcn-sack", "dcqcn"):
        base = next(r for r in rows if r["transport"] == transport and r["scheme"] == "baseline")
        tlt = next(r for r in rows if r["transport"] == transport and r["scheme"] == "tlt")
        assert tlt["timeouts_per_1k"] <= base["timeouts_per_1k"]
