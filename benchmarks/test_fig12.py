"""Benchmark: regenerate Figure 12 (Redis/web-tier incast)."""

from repro.experiments import fig12_redis_incast as exp
from repro.experiments.common import format_table


def test_fig12_redis_incast(benchmark, bench_scale):
    counts = (8, 60, 180)
    rows = benchmark.pedantic(
        exp.run, kwargs={"scale": bench_scale, "request_counts": counts},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 12"))
    assert len(rows) == 2 * 2 * len(counts)
    assert all(r["answered"] > 0 for r in rows)
    # TLT keeps the high-fan-in case timeout-free.
    for transport in ("tcp", "dctcp"):
        tlt_max = next(r for r in rows
                       if r["transport"] == transport and r["tlt"] and r["requests"] == 180)
        assert tlt_max["timeouts"] == 0
