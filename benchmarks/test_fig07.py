"""Benchmark: regenerate Figure 7 (timeouts, PAUSE frames, paused time)."""

from repro.experiments import fig07_timeouts_pauses as exp
from repro.experiments.common import format_table


def test_fig07_timeouts_pauses(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 7"))
    assert len(rows) == 12
    for transport in ("dctcp", "tcp"):
        tlt = next(r for r in rows if r["transport"] == transport and r["scheme"] == "tlt")
        pfc = next(r for r in rows if r["transport"] == transport and r["scheme"] == "pfc")
        tlt_pfc = next(r for r in rows if r["transport"] == transport and r["scheme"] == "tlt+pfc")
        assert tlt["timeouts_per_1k"] == 0  # TLT virtually eliminates timeouts
        # TLT reduces PAUSE pressure under PFC.
        assert tlt_pfc["pause_per_1k"] <= pfc["pause_per_1k"]
