"""Benchmark: regenerate Figure 8 (color-aware threshold sweep)."""

from repro.experiments import fig08_threshold_sweep as exp
from repro.experiments.common import format_table


def test_fig08_threshold_sweep(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 8"))
    assert len(rows) == 10  # 5 thresholds x {no-PFC, PFC}
    no_pfc = [r for r in rows if not r["pfc"]]
    # A larger threshold leaves more room for red packets: the average
    # background FCT should not get worse as K grows (paper Fig 8a).
    assert no_pfc[-1]["bg_avg_ms"] <= no_pfc[0]["bg_avg_ms"] * 1.5
