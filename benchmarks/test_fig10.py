"""Benchmark: regenerate Figure 10 (important fraction vs fg share)."""

from repro.experiments import fig10_fg_share as exp
from repro.experiments.common import format_table


def test_fig10_fg_share(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 10"))
    assert len(rows) == 6
    # More foreground -> more important packets (paper Fig 10).
    assert rows[-1]["important_fraction"] > rows[0]["important_fraction"]
    # Background-only traffic marks only a small fraction.
    assert rows[0]["important_fraction"] < 0.15
