"""Benchmark: regenerate Figure 17 (ACK-clocking policy ablation)."""

from repro.experiments import fig17_clocking_ablation as exp
from repro.experiments.common import format_table


def test_fig17_clocking_ablation(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, exp.COLUMNS, "Figure 17"))
    by_policy = {r["policy"]: r for r in rows}
    # Adaptive clocking uses (much) less clocking bandwidth than 1-MTU
    # (6.9x in the paper).
    assert by_policy["adaptive"]["clocking_kB"] <= by_policy["mtu"]["clocking_kB"]
    # And recovers (much) faster than 1-byte clocking at the tail.
    assert by_policy["adaptive"]["fg_p999_ms"] <= by_policy["1b"]["fg_p999_ms"] * 1.5
