"""Benchmark: regenerate Figure 2 (fixed 160us RTO strawman)."""

from repro.experiments import fig02_fixed_rto as exp
from repro.experiments.common import format_table


def test_fig02_fixed_rto(benchmark, bench_scale):
    rows = benchmark.pedantic(exp.run, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    print()
    print(format_table(rows, ["scheme", "fg_p99_ms", "bg_avg_ms",
                              "timeouts_per_1k", "timeout_ratio_vs_baseline"],
                       "Figure 2"))
    assert len(rows) == 2
    fixed = next(r for r in rows if r["scheme"] == "fixed_160us")
    base = next(r for r in rows if r["scheme"] == "baseline_4ms")
    # The aggressive timer fires far more often (51x in the paper).
    assert fixed["timeouts_per_1k"] > base["timeouts_per_1k"]
