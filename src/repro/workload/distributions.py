"""Flow-size distributions.

The paper draws background flow sizes from three published datacenter
workloads: *web search* (DCTCP [17]), *web server* and *cache follower*
(Facebook [49]). The original trace files are not distributed with the
paper; the piecewise CDFs below are synthesized from the published
figures (a documented substitution — see DESIGN.md). The web-search
distribution is calibrated to the paper's stated 1.72 MB mean.

Sampling interpolates log-linearly in size between CDF knots, which
preserves the heavy tail without step artifacts.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple


class EmpiricalCdf:
    """Piecewise CDF over flow sizes (bytes)."""

    def __init__(self, name: str, points: Sequence[Tuple[int, float]]):
        if not points:
            raise ValueError("need at least one CDF point")
        prev_size, prev_p = 0, 0.0
        for size, p in points:
            if size <= prev_size or p < prev_p or p > 1.0:
                raise ValueError(f"CDF points must be increasing: {points}")
            prev_size, prev_p = size, p
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError("last CDF point must have probability 1.0")
        self.name = name
        self.points: List[Tuple[int, float]] = [(int(s), float(p)) for s, p in points]

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size."""
        u = rng.random()
        prev_size, prev_p = 1, 0.0
        for size, p in self.points:
            if u <= p:
                if p == prev_p:
                    return size
                frac = (u - prev_p) / (p - prev_p)
                # Log-linear interpolation between knots.
                log_size = math.log(prev_size) + frac * (math.log(size) - math.log(prev_size))
                return max(1, int(round(math.exp(log_size))))
            prev_size, prev_p = size, p
        return self.points[-1][0]

    def mean(self, samples: int = 200_000, seed: int = 7) -> float:
        """Monte-Carlo mean of the distribution."""
        rng = random.Random(seed)
        total = 0
        for _ in range(samples):
            total += self.sample(rng)
        return total / samples


#: Web search (DCTCP [17]); calibrated to a ~1.7 MB mean.
WEB_SEARCH = EmpiricalCdf(
    "web_search",
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_467_000, 0.80),
        (2_107_000, 0.90),
        (6_667_000, 0.95),
        (20_000_000, 0.98),
        (30_000_000, 1.00),
    ],
)

#: Web server (Facebook [49]): dominated by small responses.
WEB_SERVER = EmpiricalCdf(
    "web_server",
    [
        (300, 0.10),
        (1_000, 0.30),
        (2_000, 0.50),
        (5_000, 0.70),
        (20_000, 0.80),
        (100_000, 0.90),
        (500_000, 0.97),
        (5_000_000, 1.00),
    ],
)

#: Cache follower (Facebook [49]): bimodal small gets / larger objects.
CACHE_FOLLOWER = EmpiricalCdf(
    "cache_follower",
    [
        (400, 0.20),
        (2_000, 0.50),
        (10_000, 0.65),
        (70_000, 0.80),
        (400_000, 0.90),
        (1_500_000, 0.97),
        (10_000_000, 1.00),
    ],
)

DISTRIBUTIONS: Dict[str, EmpiricalCdf] = {
    "web_search": WEB_SEARCH,
    "web_server": WEB_SERVER,
    "cache_follower": CACHE_FOLLOWER,
}
