"""Background traffic: Poisson arrivals over an empirical size CDF.

Flows run between a uniformly random (sender, receiver) pair, as in the
paper's simulation setup. The aggregate arrival rate is derived from
the target load on host links:

    lambda = load * num_hosts * link_rate / (8 * mean_flow_size)

Transport objects are created lazily at each flow's start time so
large flow populations don't allocate everything up front.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.topology import Network
from repro.transport.base import FlowSpec


class BackgroundTraffic:
    """Schedules Poisson background flows on a network."""

    def __init__(
        self,
        net: Network,
        cdf,
        create: Callable[[FlowSpec], None],
        load: float = 0.4,
        num_flows: int = 1000,
        mean_size: Optional[float] = None,
        link_rate_bps: int = 40_000_000_000,
        hosts: Optional[List[int]] = None,
        start_ns: int = 0,
    ):
        if not 0 < load < 1:
            raise ValueError("load must be in (0, 1)")
        self.net = net
        self.cdf = cdf
        self.create = create
        self.load = load
        self.num_flows = num_flows
        self.hosts = hosts if hosts is not None else [h.host_id for h in net.hosts]
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        mean = mean_size if mean_size is not None else cdf.mean(samples=20_000)
        rate_total = load * len(self.hosts) * link_rate_bps
        self.lambda_per_ns = rate_total / (8 * mean) / 1e9  # arrivals per ns
        self.start_ns = start_ns
        self.window_ns = int(num_flows / self.lambda_per_ns) if self.lambda_per_ns > 0 else 0
        self.specs: List[FlowSpec] = []

    def schedule(self) -> List[FlowSpec]:
        """Draw all arrivals and schedule lazy flow creation events."""
        rng_arrival = self.net.rng.stream("bg_arrival")
        rng_size = self.net.rng.stream("bg_size")
        rng_pair = self.net.rng.stream("bg_pair")
        engine = self.net.engine
        t = float(self.start_ns)
        for _ in range(self.num_flows):
            t += rng_arrival.expovariate(self.lambda_per_ns)
            src = rng_pair.choice(self.hosts)
            dst = rng_pair.choice(self.hosts)
            while dst == src:
                dst = rng_pair.choice(self.hosts)
            spec = FlowSpec(
                flow_id=self.net.new_flow_id(),
                src=src,
                dst=dst,
                size=self.cdf.sample(rng_size),
                start_ns=int(t),
                group="bg",
            )
            self.specs.append(spec)
            engine.schedule_at(spec.start_ns, self.create, spec)
        return self.specs

    @property
    def end_of_arrivals_ns(self) -> int:
        if not self.specs:
            return self.start_ns
        return self.specs[-1].start_ns
