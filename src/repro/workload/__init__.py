"""Traffic generation: flow-size distributions, Poisson background
traffic and synchronized incast foreground traffic."""

from repro.workload.distributions import DISTRIBUTIONS, EmpiricalCdf
from repro.workload.background import BackgroundTraffic
from repro.workload.incast import IncastTraffic

__all__ = ["DISTRIBUTIONS", "EmpiricalCdf", "BackgroundTraffic", "IncastTraffic"]
