"""Foreground traffic: synchronized incast bursts (on/off arrival).

Each incast event makes every sender host open ``flows_per_sender``
flows of ``flow_size`` bytes toward a single receiver simultaneously —
the paper's model of user-facing fan-in (95 senders x 8 flows x 8 kB at
paper scale). The event frequency is derived from the desired share of
total traffic volume taken by foreground flows.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.topology import Network
from repro.transport.base import FlowSpec


class IncastTraffic:
    """Schedules periodic synchronized incast bursts."""

    def __init__(
        self,
        net: Network,
        create: Callable[[FlowSpec], None],
        flow_size: int = 8_000,
        flows_per_sender: int = 8,
        num_events: int = 10,
        interval_ns: int = 10_000_000,
        receiver: Optional[int] = None,
        senders: Optional[List[int]] = None,
        start_ns: int = 1_000_000,
        jitter_ns: int = 0,
    ):
        self.net = net
        self.create = create
        self.flow_size = flow_size
        self.flows_per_sender = flows_per_sender
        self.num_events = num_events
        self.interval_ns = interval_ns
        self.receiver = receiver
        self.senders = senders
        self.start_ns = start_ns
        self.jitter_ns = jitter_ns
        self.specs: List[FlowSpec] = []

    @staticmethod
    def volume_per_event(flow_size: int, flows_per_sender: int, num_senders: int) -> int:
        return flow_size * flows_per_sender * num_senders

    @classmethod
    def interval_for_share(
        cls,
        fg_share: float,
        bg_load: float,
        num_hosts: int,
        link_rate_bps: int,
        flow_size: int,
        flows_per_sender: int,
        num_senders: int,
    ) -> int:
        """Incast period that makes foreground traffic ``fg_share`` of
        the total volume, given background load ``bg_load``."""
        if not 0 < fg_share < 1:
            raise ValueError("fg_share must be in (0, 1)")
        bg_bytes_per_ns = bg_load * num_hosts * link_rate_bps / 8 / 1e9
        # fg / (fg + bg) = fg_share  =>  fg_rate = bg_rate * share/(1-share)
        fg_bytes_per_ns = bg_bytes_per_ns * fg_share / (1 - fg_share)
        event_bytes = cls.volume_per_event(flow_size, flows_per_sender, num_senders)
        return max(1, int(event_bytes / fg_bytes_per_ns))

    def schedule(self) -> List[FlowSpec]:
        rng = self.net.rng.stream("incast")
        engine = self.net.engine
        all_hosts = [h.host_id for h in self.net.hosts]
        t = self.start_ns
        for _ in range(self.num_events):
            receiver = (
                self.receiver if self.receiver is not None else rng.choice(all_hosts)
            )
            senders = self.senders or [h for h in all_hosts if h != receiver]
            for src in senders:
                if src == receiver:
                    continue
                for _ in range(self.flows_per_sender):
                    jitter = rng.randrange(self.jitter_ns + 1) if self.jitter_ns else 0
                    spec = FlowSpec(
                        flow_id=self.net.new_flow_id(),
                        src=src,
                        dst=receiver,
                        size=self.flow_size,
                        start_ns=t + jitter,
                        group="fg",
                    )
                    self.specs.append(spec)
                    engine.schedule_at(spec.start_ns, self.create, spec)
            t += self.interval_ns
        return self.specs
