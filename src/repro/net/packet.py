"""Packets and on-wire metadata.

A single packet class serves every transport in the suite. TLT marks
(``TltMark``) are transport-layer message types (§5 of the paper); the
network-layer *color* is what switches act on, derived from the mark by
the ACL in :mod:`repro.core.marks` (the analogue of DSCP-to-color
mapping in the testbed).
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Tuple

#: Link/IP/transport header overhead charged per packet, bytes.
HEADER_BYTES = 48
#: Wire size of a pure acknowledgment (header + options).
ACK_BYTES = 60
#: Wire size of a DCQCN Congestion Notification Packet.
CNP_BYTES = 60


class PacketKind(IntEnum):
    """What a packet is, at the transport level."""

    DATA = 0
    ACK = 1
    NACK = 2  # RoCE out-of-order notification (go-back-N / selective)
    CNP = 3  # DCQCN congestion notification packet
    SYN = 4  # connection setup (optional handshake modeling)
    SYN_ACK = 5
    FIN = 6  # connection teardown


class TltMark(IntEnum):
    """TLT transport-layer message types (§5.1, Algorithm 1)."""

    NONE = 0
    IMPORTANT_DATA = 1
    IMPORTANT_ECHO = 2
    IMPORTANT_CLOCK_DATA = 3
    IMPORTANT_CLOCK_ECHO = 4
    CONTROL = 5  # SYN/FIN/pure ACK/NACK/CNP — always important


class Color(IntEnum):
    """Switch colors used by color-aware dropping (§4.1).

    Commodity chips support three colors; TLT uses two: green for
    important packets, red for unimportant ones.
    """

    GREEN = 0
    RED = 1


class IntRecord:
    """One hop's in-band network telemetry record (HPCC)."""

    __slots__ = ("qlen", "tx_bytes", "ts", "rate_bps")

    def __init__(self, qlen: int, tx_bytes: int, ts: int, rate_bps: int):
        self.qlen = qlen
        self.tx_bytes = tx_bytes
        self.ts = ts
        self.rate_bps = rate_bps

    def __repr__(self) -> str:  # pragma: no cover
        return f"IntRecord(qlen={self.qlen}, tx={self.tx_bytes}, ts={self.ts})"


class Packet:
    """A simulated packet.

    ``seq`` is a byte offset for the TCP family and a packet sequence
    number (PSN) for the RoCE family; ``payload`` is the number of data
    bytes carried. ``size`` (the wire size used for buffer accounting
    and serialization) is ``payload + HEADER_BYTES`` for data packets
    and a fixed small size for control packets.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "kind",
        "seq",
        "payload",
        "size",
        "ack",
        "sack",
        "tclass",
        "ecn_capable",
        "ce",
        "ecn_echo",
        "mark",
        "color",
        "is_retx",
        "ts_sent",
        "ts_echo",
        "int_records",
        "int_echo",
        "_pooled",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        kind: PacketKind,
        seq: int = 0,
        payload: int = 0,
        ack: int = 0,
        size: Optional[int] = None,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.payload = payload
        if size is not None:
            self.size = size
        elif kind == PacketKind.DATA:
            self.size = payload + HEADER_BYTES
        elif kind == PacketKind.CNP:
            self.size = CNP_BYTES
        else:
            self.size = ACK_BYTES
        self.ack = ack
        self.tclass = 0  # traffic class: selects the egress queue
        self.sack: Tuple[Tuple[int, int], ...] = ()
        self.ecn_capable = False
        self.ce = False
        self.ecn_echo = False
        self.mark = TltMark.NONE
        self.color = Color.GREEN
        self.is_retx = False
        self.ts_sent = 0
        self.ts_echo = 0
        self.int_records: Optional[List[IntRecord]] = None
        self.int_echo: Optional[List[IntRecord]] = None
        self._pooled = False

    def add_int_record(self, record: IntRecord) -> None:
        """Append an INT record (used by HPCC-enabled switches)."""
        if self.int_records is None:
            self.int_records = []
        self.int_records.append(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(flow={self.flow_id}, {self.kind.name}, seq={self.seq}, "
            f"pl={self.payload}, ack={self.ack}, mark={self.mark.name}, "
            f"color={self.color.name})"
        )


# -- flat wire encoding (sharding) ----------------------------------------------
#
# Cross-shard packets (repro.sim.sharding) travel between worker
# processes as flat tuples of ints/tuples — no Packet pickling, and the
# receiving shard rebuilds through the pool allocator so remote arrivals
# recycle exactly like local ones.


def packet_to_wire(packet: Packet) -> tuple:
    """Encode a packet as a flat tuple (see :func:`packet_from_wire`)."""
    ints = packet.int_records
    echo = packet.int_echo
    return (
        packet.flow_id,
        packet.src,
        packet.dst,
        int(packet.kind),
        packet.seq,
        packet.payload,
        packet.size,
        packet.ack,
        packet.sack,
        packet.tclass,
        packet.ecn_capable,
        packet.ce,
        packet.ecn_echo,
        int(packet.mark),
        int(packet.color),
        packet.is_retx,
        packet.ts_sent,
        packet.ts_echo,
        None if ints is None else tuple((r.qlen, r.tx_bytes, r.ts, r.rate_bps) for r in ints),
        None if echo is None else tuple((r.qlen, r.tx_bytes, r.ts, r.rate_bps) for r in echo),
    )


def packet_from_wire(wire: tuple) -> Packet:
    """Rebuild a packet from :func:`packet_to_wire` output (pool-aware)."""
    packet = alloc_packet(wire[0], wire[1], wire[2], PacketKind(wire[3]),
                          wire[4], wire[5], size=wire[6], ack=wire[7])
    packet.sack = tuple(tuple(block) for block in wire[8])
    packet.tclass = wire[9]
    packet.ecn_capable = wire[10]
    packet.ce = wire[11]
    packet.ecn_echo = wire[12]
    packet.mark = TltMark(wire[13])
    packet.color = Color(wire[14])
    packet.is_retx = wire[15]
    packet.ts_sent = wire[16]
    packet.ts_echo = wire[17]
    if wire[18] is not None:
        packet.int_records = [IntRecord(*fields) for fields in wire[18]]
    if wire[19] is not None:
        packet.int_echo = [IntRecord(*fields) for fields in wire[19]]
    return packet


# -- packet pool ----------------------------------------------------------------
#
# Transports allocate a Packet per transmission; at tens of thousands of
# packets per simulated millisecond the allocator and GC dominate. The
# free list recycles packets at their two terminal points — sink
# delivery (Host.receive, after the endpoint handler returns) and switch
# drop — and reinitialises on *allocation*, so a recycled packet's
# fields stay readable until the object is actually reused (tests and
# trace rings that inspect a delivered packet keep working).
#
# A recycled packet's ``int_records`` list may still be aliased by an
# ACK's ``int_echo`` (HPCC); reinitialisation only drops the reference,
# never mutates the list, so those aliases stay valid.

_POOL: List[Packet] = []
_POOL_MAX = 4096
_pool_enabled = True


def set_pooling(enabled: bool) -> None:
    """Enable/disable packet recycling globally.

    Disabling also empties the free list, so packet objects already
    handed out (e.g. retained by a :class:`repro.sim.trace.PacketTracer`)
    are never reused behind the holder's back.
    """
    global _pool_enabled
    _pool_enabled = enabled
    if not enabled:
        _POOL.clear()


def alloc_packet(
    flow_id: int,
    src: int,
    dst: int,
    kind: PacketKind,
    seq: int = 0,
    payload: int = 0,
    ack: int = 0,
    size: Optional[int] = None,
) -> Packet:
    """Pool-aware :class:`Packet` constructor (same signature)."""
    if _POOL:
        packet = _POOL.pop()
        packet.__init__(flow_id, src, dst, kind, seq, payload, ack, size)
        return packet
    return Packet(flow_id, src, dst, kind, seq, payload, ack, size)


def recycle(packet: Packet) -> None:
    """Return a packet that left the network to the free list.

    Idempotent per lifetime (``_pooled`` guards double-recycle); a
    no-op when pooling is disabled or the free list is full.
    """
    if packet._pooled or not _pool_enabled:
        return
    packet._pooled = True
    if len(_POOL) < _POOL_MAX:
        _POOL.append(packet)
