"""Devices: the common device interface, hosts and host NICs."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.net.link import Port
from repro.net.packet import Packet, recycle
from repro.sim.engine import Engine


class Device:
    """Anything with ports: a host or a switch.

    Subclasses implement :meth:`receive` (packet arrived on ``in_port``)
    and :meth:`poll` (the port asks for the next packet to serialize).
    """

    def __init__(self, engine: Engine, name: str):
        self.engine = engine
        self.name = name
        self.ports: list = []

    def add_port(self, rate_bps: int, delay_ns: int) -> Port:
        port = Port(self.engine, self, len(self.ports), rate_bps, delay_ns)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, in_port: Port) -> None:
        raise NotImplementedError

    def poll(self, port: Port) -> Optional[Packet]:
        raise NotImplementedError

    def receive_pause(self, duration_ns: int, in_port: Port) -> None:
        """A PFC PAUSE arrived: stop transmitting out of ``in_port``."""
        in_port.apply_pause(duration_ns)

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


class HostNic:
    """The host's transmit queue.

    Transports hand fully formed packets to the NIC; the attached port
    drains the queue at line rate. The queue is unbounded (host memory),
    and it is the entity PFC pauses when a ToR pushes back on a host.
    """

    def __init__(self, host: "Host"):
        self.host = host
        self.queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)
        self.host.port.kick()

    def pending_bytes(self) -> int:
        return sum(p.size for p in self.queue)

    def __len__(self) -> int:
        return len(self.queue)


class Host(Device):
    """An end host: one NIC port plus a demux table of transport endpoints."""

    def __init__(self, engine: Engine, host_id: int, name: Optional[str] = None):
        super().__init__(engine, name or f"host{host_id}")
        self.host_id = host_id
        self.nic = HostNic(self)
        self.endpoints: Dict[int, "SupportsOnPacket"] = {}
        # Bound-method alias for the per-delivery demux lookup (the
        # dict itself is mutated in place, so the binding stays valid).
        self._endpoint_for = self.endpoints.get
        self.port: Optional[Port] = None  # set by topology builder

    def attach_port(self, rate_bps: int, delay_ns: int) -> Port:
        self.port = self.add_port(rate_bps, delay_ns)
        return self.port

    # -- device interface ------------------------------------------------------

    def receive(self, packet: Packet, in_port: Port) -> None:
        endpoint = self._endpoint_for(packet.flow_id)
        if endpoint is not None:
            endpoint.on_packet(packet)
        # The host is the packet's sink: return it to the free list once
        # the endpoint handler is done with it.
        recycle(packet)

    def poll(self, port: Port) -> Optional[Packet]:
        queue = self.nic.queue
        if queue:
            return queue.popleft()
        return None

    # -- transport helpers --------------------------------------------------------

    def register_endpoint(self, flow_id: int, endpoint: "SupportsOnPacket") -> None:
        self.endpoints[flow_id] = endpoint

    def unregister_endpoint(self, flow_id: int) -> None:
        self.endpoints.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Queue a packet on the NIC for transmission."""
        # Flattened nic.enqueue: this is once-per-packet-sent. The
        # busy-guard is hoisted out of kick(): while a burst drains, every
        # send after the first finds the port mid-serialization.
        self.nic.queue.append(packet)
        port = self.port
        if not port.busy and not port.paused:
            port.kick()


class SupportsOnPacket:
    """Protocol for transport endpoints registered at a host."""

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - interface
        raise NotImplementedError


Callback = Callable[..., None]
