"""Devices: the common device interface, hosts and host NICs.

Receive-path interception
-------------------------

Every :class:`Device` carries an ordered list of *interceptors* between
the wire and its receive implementation. Loss models
(:class:`repro.faults.FaultInjector`), debugging taps
(:class:`repro.sim.trace.PacketTracer`) and test drop filters all
install through :meth:`Device.add_interceptor` instead of
monkey-patching ``device.receive`` — so they compose in a defined
order, survive the switch rebinding its audited/fast data-path
variants, and can be added or removed mid-run.

The chain is compiled into nested closures whenever it changes: with no
interceptors installed, ``device.receive`` *is* the base implementation
(the uninstrumented hot path pays nothing). Links dispatch through the
device at delivery time (see :meth:`repro.net.link.Port._deliver`), so
a packet already in flight still traverses an interceptor installed
before it lands.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.net.link import Port
from repro.net.packet import Packet, recycle
from repro.sim.engine import Engine


class Interceptor:
    """Base class for receive-path interceptors.

    Subclasses override :meth:`on_packet` and either call
    ``forward(packet, in_port)`` to pass the packet down the chain or
    return without calling it to consume (drop) the packet. An
    interceptor that drops is responsible for accounting and for
    returning the packet to the free list (``recycle``).
    """

    def on_packet(self, packet: Packet, in_port: Port, forward: Callable) -> None:
        forward(packet, in_port)


def _stage(interceptor: Interceptor, nxt: Callable) -> Callable:
    """One compiled chain stage: interceptor -> rest of the chain."""

    def stage(packet, in_port, _on_packet=interceptor.on_packet, _next=nxt):
        _on_packet(packet, in_port, _next)

    return stage


class Device:
    """Anything with ports: a host or a switch.

    Subclasses implement the receive path (packet arrived on
    ``in_port``) — registered via :meth:`_set_base_receive` — and
    :meth:`poll` (the port asks for the next packet to serialize).
    ``self.receive`` is always the effective entry point: the base
    implementation with the interceptor chain (if any) compiled in
    front of it.
    """

    def __init__(self, engine: Engine, name: str):
        self.engine = engine
        self.name = name
        self.ports: list = []
        self._interceptors: List[Interceptor] = []
        self._base_receive: Optional[Callable] = None

    def add_port(self, rate_bps: int, delay_ns: int) -> Port:
        port = Port(self.engine, self, len(self.ports), rate_bps, delay_ns)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, in_port: Port) -> None:
        raise NotImplementedError

    def poll(self, port: Port) -> Optional[Packet]:
        raise NotImplementedError

    def receive_pause(self, duration_ns: int, in_port: Port) -> None:
        """A PFC PAUSE arrived: stop transmitting out of ``in_port``."""
        in_port.apply_pause(duration_ns)

    # -- receive-path interception ---------------------------------------------

    def _set_base_receive(self, fn: Callable) -> None:
        """Register (or swap) the base receive implementation.

        The interceptor chain is preserved across swaps — this is how
        :meth:`repro.switchsim.switch.Switch.set_auditor` rebinds its
        fast/audited variants without dropping installed interceptors.
        """
        self._base_receive = fn
        self._rebuild_receive()

    def _rebuild_receive(self) -> None:
        chain = self._base_receive
        for interceptor in reversed(self._interceptors):
            chain = _stage(interceptor, chain)
        self.receive = chain  # type: ignore[method-assign]

    def add_interceptor(self, interceptor: Interceptor, index: Optional[int] = None) -> None:
        """Install ``interceptor``; earliest-installed runs first.

        ``index`` inserts at a specific chain position (0 = closest to
        the wire). Takes effect immediately, including for packets
        already in flight toward this device.
        """
        if interceptor in self._interceptors:
            raise ValueError(f"{interceptor!r} is already installed on {self.name}")
        if index is None:
            self._interceptors.append(interceptor)
        else:
            self._interceptors.insert(index, interceptor)
        self._rebuild_receive()

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Uninstall ``interceptor``; raises ValueError if absent."""
        self._interceptors.remove(interceptor)
        self._rebuild_receive()

    @property
    def interceptors(self) -> tuple:
        """The installed interceptors, in traversal order."""
        return tuple(self._interceptors)

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


class HostNic:
    """The host's transmit queue.

    Transports hand fully formed packets to the NIC; the attached port
    drains the queue at line rate. The queue is unbounded (host memory),
    and it is the entity PFC pauses when a ToR pushes back on a host.
    """

    def __init__(self, host: "Host"):
        self.host = host
        self.queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)
        self.host.port.kick()

    def pending_bytes(self) -> int:
        return sum(p.size for p in self.queue)

    def __len__(self) -> int:
        return len(self.queue)


class Host(Device):
    """An end host: one NIC port plus a demux table of transport endpoints."""

    def __init__(self, engine: Engine, host_id: int, name: Optional[str] = None):
        super().__init__(engine, name or f"host{host_id}")
        self.host_id = host_id
        self.nic = HostNic(self)
        self.endpoints: Dict[int, "SupportsOnPacket"] = {}
        # Bound-method alias for the per-delivery demux lookup (the
        # dict itself is mutated in place, so the binding stays valid).
        self._endpoint_for = self.endpoints.get
        self.port: Optional[Port] = None  # set by topology builder
        self._set_base_receive(self._sink_receive)

    def attach_port(self, rate_bps: int, delay_ns: int) -> Port:
        self.port = self.add_port(rate_bps, delay_ns)
        return self.port

    # -- device interface ------------------------------------------------------

    def _sink_receive(self, packet: Packet, in_port: Port) -> None:
        endpoint = self._endpoint_for(packet.flow_id)
        if endpoint is not None:
            endpoint.on_packet(packet)
        # The host is the packet's sink: return it to the free list once
        # the endpoint handler is done with it.
        recycle(packet)

    def poll(self, port: Port) -> Optional[Packet]:
        queue = self.nic.queue
        if queue:
            return queue.popleft()
        return None

    # -- transport helpers --------------------------------------------------------

    def register_endpoint(self, flow_id: int, endpoint: "SupportsOnPacket") -> None:
        self.endpoints[flow_id] = endpoint

    def unregister_endpoint(self, flow_id: int) -> None:
        self.endpoints.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Queue a packet on the NIC for transmission."""
        # Flattened nic.enqueue: this is once-per-packet-sent. The
        # busy-guard is hoisted out of kick(): while a burst drains, every
        # send after the first finds the port mid-serialization.
        self.nic.queue.append(packet)
        port = self.port
        if not port.busy and not port.paused:
            port.kick()


class SupportsOnPacket:
    """Protocol for transport endpoints registered at a host."""

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - interface
        raise NotImplementedError


Callback = Callable[..., None]
