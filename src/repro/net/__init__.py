"""Network substrate: packets, links, hosts, routing and topologies."""

from repro.net.packet import (
    ACK_BYTES,
    CNP_BYTES,
    Color,
    HEADER_BYTES,
    Packet,
    PacketKind,
    TltMark,
)
from repro.net.link import Port, connect
from repro.net.node import Device, Host, HostNic

# NOTE: repro.net.topology is intentionally not re-exported here — it
# depends on repro.switchsim, whose modules import repro.net.packet;
# re-exporting it would create an import cycle. Import it directly:
#   from repro.net.topology import leaf_spine, star, dumbbell

__all__ = [
    "ACK_BYTES",
    "CNP_BYTES",
    "Color",
    "HEADER_BYTES",
    "Packet",
    "PacketKind",
    "TltMark",
    "Port",
    "connect",
    "Device",
    "Host",
    "HostNic",
]
