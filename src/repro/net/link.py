"""Full-duplex links modeled as a pair of unidirectional ports.

A :class:`Port` pulls packets from its owning device (host NIC or
switch egress queue) whenever it is idle and not paused by PFC, fully
serializes each packet at the link rate, then delivers it to the peer
device after the propagation delay (store-and-forward).

Delivery dispatches *through the receiving device at delivery time*:
``owner.receive`` is resolved when the packet lands, so an interceptor
(or audit rebinding) installed while a packet is on the wire still sees
it — capturing the bound receive method at schedule time would silently
bypass anything installed mid-flight. Heap entries stay bare 4-tuples
(the raw-tuple fast path of ``Engine.schedule_anon``).

Batched delivery (default): frames a port puts on the wire are queued
in a per-port in-flight FIFO ``(arrival_ns, wire_seq, kind, payload)``
and the engine heap holds *at most one* entry per port — keyed by the
FIFO head's ``(arrival_ns, wire_seq)`` — whose callback
(:meth:`Port._drain`) delivers the whole same-nanosecond due-burst in
one call instead of one heap transaction per frame. Because each
port's wire sequence numbers are contiguous and its arrival times are
monotone (serialization orders emissions; the propagation delay is
constant), no foreign heap key can sort strictly between two
consecutive in-flight entries of one port, and the per-port
``WIRE_SEQ_BASE`` bands are disjoint — so the burst pops in exactly
the ``(time, wire_seq)`` order the unbatched path would have used
(property-tested in ``tests/test_link_batching.py``). The invariant is
*deque non-empty ⇔ drain entry armed*: emitters arm the head when they
append to an empty deque, and the drain re-arms the next head *before*
dispatching, so re-entrant emissions during dispatch observe a covered
deque. Set ``TLT_LINK_BATCH=0`` (or :func:`set_batching`) to fall back
to the historical one-heap-entry-per-frame path; both paths are
fingerprint-identical.

PFC PAUSE/RESUME frames are delivered out-of-band: they are tiny, are
sent at the highest priority on real hardware, and modeling them as
instantaneously serialized control messages (propagation delay only) is
the standard simulator simplification. They ride the same in-flight
FIFO (kind 1), preserving their wire-sequence order against data.

Fault injection can take a link administratively *down*
(:meth:`Port.set_link_state`): a down port stops starting new
transmissions until it comes back up. Packets already serialized keep
propagating — the fault layer blackholes them at the receiving device,
which is where a cut fiber actually loses them.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Optional

from heapq import heappush

from repro.sim.engine import WIRE_SEQ_BASE, Engine
from repro.sim.units import tx_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Device
    from repro.net.packet import Packet

#: In-flight FIFO entry kinds (mirrors repro.sim.sharding MSG_*).
FRAME_PACKET = 0
FRAME_PAUSE = 1

#: Shared empty args tuple for drain heap entries.
_EMPTY: tuple = ()

_BATCH = os.environ.get("TLT_LINK_BATCH", "1") != "0"


def set_batching(enabled: bool) -> None:
    """Select batched (default) or legacy per-frame delivery for ports
    constructed *after* this call. Used by tests and benchmarks to A/B
    the two paths; both are fingerprint-identical."""
    global _BATCH
    _BATCH = bool(enabled)


def batching_enabled() -> bool:
    return _BATCH


class Port:
    """One direction of a link, owned by the transmitting device."""

    __slots__ = (
        "engine",
        "owner",
        "port_no",
        "peer",
        "rate_bps",
        "delay_ns",
        "busy",
        "paused",
        "down",
        "tx_bytes",
        "tx_packets",
        "pause_frames_rx",
        "paused_ns",
        "_pause_started",
        "_pause_timer",
        "_peer_deliver",
        "wire_seq",
        "cut_id",
        "shard_out",
        "_inflight",
        "_tx_cb",
        "_drain_cb",
        "_batched",
        "_equeue",
    )

    def __init__(self, engine: Engine, owner: "Device", port_no: int, rate_bps: int, delay_ns: int):
        self.engine = engine
        self.owner = owner
        self.port_no = port_no
        self.peer: Optional["Port"] = None
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.busy = False
        self.paused = False
        self.down = False  # administratively down (fault injection)
        self.tx_bytes = 0
        self.tx_packets = 0
        # PFC bookkeeping (this port being the *paused* side).
        self.pause_frames_rx = 0
        self.paused_ns = 0
        self._pause_started = 0
        self._pause_timer = None
        # Bound `peer._deliver`, cached at connect() time. The batched
        # path resolves the peer inline instead, but sharding and the
        # legacy path still schedule through this trampoline.
        self._peer_deliver = None
        # Next heap key for frames this port puts on the wire:
        # WIRE_SEQ_BASE + (construction rank << 33) + frames emitted.
        # Same-nanosecond arrivals anywhere in the fabric are thereby
        # ordered by (emitting port, FIFO index) — a key both a single
        # engine and the shard owning this port compute identically —
        # instead of by global push order, which no spatial partition
        # could reproduce.
        rank = engine._port_rank
        engine._port_rank = rank + 1
        self.wire_seq = WIRE_SEQ_BASE + (rank << 33)
        # Sharding (repro.sim.sharding): declared here so CutPort can
        # retarget a built port via __class__ assignment (identical
        # object layout). -1 / None on every port of an unsharded run.
        self.cut_id = -1
        self.shard_out = None
        # Batched delivery state: frames on the wire toward the peer,
        # as (arrival_ns, wire_seq, kind, payload). Invariant: the
        # engine heap holds a (head_arrival, head_seq, self._drain_cb,
        # ()) entry iff this deque is non-empty.
        self._inflight: deque = deque()
        self._drain_cb = self._drain
        # The serialization-complete callback kick() pushes. A slot —
        # not a per-call method resolution — so the compiled backend
        # can substitute a C kernel per port; repro.sim.sharding
        # rebinds it after retargeting a port to CutPort.
        batched = _BATCH
        self._batched = batched
        self._tx_cb = self._tx_done if batched else self._tx_done_direct
        # The engine's heap list, cached: both engines bind it once at
        # construction and compact it in place (the run loop aliases it
        # the same way), so the list object is stable for the lifetime
        # of the engine.
        self._equeue = engine._queue

    # -- transmission ----------------------------------------------------------

    # The serialization/propagation events below push bare anonymous
    # entries straight onto the engine heap (the documented layout of
    # Engine.schedule_anon) instead of calling it: these two or three
    # pushes per transmitted packet are the simulator's innermost loop.

    def kick(self) -> None:
        """Try to start transmitting the owner's next packet."""
        if self.busy or self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            self._equeue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_cb, (packet,)),
        )

    def _tx_done(self, packet: "Packet") -> None:
        """Serialization finished: put the frame on the wire (batched)."""
        engine = self.engine
        queue = self._equeue
        if self._peer_deliver is not None:
            seq = self.wire_seq
            self.wire_seq = seq + 1
            arrival = engine.now + self.delay_ns
            inflight = self._inflight
            if not inflight:
                heappush(queue, (arrival, seq, self._drain_cb, _EMPTY))
            inflight.append((arrival, seq, FRAME_PACKET, packet))
        self.busy = False
        # Inlined kick() — this runs once per transmitted packet.
        if self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            queue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_cb, (packet,)),
        )

    def _drain(self) -> None:
        """Deliver this port's due in-flight burst (the armed callback).

        Fires at the FIFO head's exact ``(arrival_ns, wire_seq)`` heap
        key. Every frame whose arrival equals the current instant is
        delivered in FIFO (= wire-sequence) order; the next head, if
        any, is re-armed *before* dispatch so the deque is never
        observably uncovered by re-entrant emissions.
        """
        inflight = self._inflight
        arrival, _seq, kind, payload = inflight.popleft()
        if inflight:
            nxt = inflight[0]
            if nxt[0] == arrival:
                # Same-ns burst (rare: serialization separates frames;
                # only PFC frames can share an arrival ns with data).
                engine = self.engine
                due = [(kind, payload)]
                while inflight and inflight[0][0] == arrival:
                    entry = inflight.popleft()
                    due.append((entry[2], entry[3]))
                if inflight:
                    nxt = inflight[0]
                    heappush(self._equeue, (nxt[0], nxt[1], self._drain_cb, _EMPTY))
                # Each frame is logically one delivery event; keep
                # events_processed identical to the unbatched path.
                engine._events_processed += len(due) - 1
                peer = self.peer
                for kind, payload in due:
                    if kind == FRAME_PACKET:
                        peer.owner.receive(payload, peer)
                    else:
                        peer.owner.receive_pause(payload, peer)
                return
            heappush(self._equeue, (nxt[0], nxt[1], self._drain_cb, _EMPTY))
        peer = self.peer
        if kind == FRAME_PACKET:
            # Resolved here, at delivery time, so the packet traverses
            # whatever interceptor chain / data-path variant is
            # installed when it lands (see module docstring).
            peer.owner.receive(payload, peer)
        else:
            peer.owner.receive_pause(payload, peer)

    def _tx_done_direct(self, packet: "Packet") -> None:
        """Legacy per-frame delivery (``TLT_LINK_BATCH=0``): one heap
        entry per frame, scheduled through the peer's trampoline."""
        engine = self.engine
        queue = self._equeue
        deliver = self._peer_deliver
        if deliver is not None:
            seq = self.wire_seq
            self.wire_seq = seq + 1
            heappush(
                queue,
                (engine.now + self.delay_ns, seq, deliver, (packet,)),
            )
        self.busy = False
        if self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            queue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_cb, (packet,)),
        )

    def _deliver(self, packet: "Packet") -> None:
        """Hand an arriving packet to the owning device.

        The legacy/sharding propagation callback (``self`` is the
        *receiving* side's port; the batched path dispatches from
        :meth:`_drain` on the transmitting side instead, with identical
        delivery-time resolution of ``owner.receive``).
        """
        self.owner.receive(packet, self)

    # -- link state (fault injection) ------------------------------------------

    def set_link_state(self, up: bool) -> None:
        """Administratively raise or cut this direction of the link."""
        if up:
            if self.down:
                self.down = False
                self.kick()
        else:
            self.down = True

    # -- PFC -------------------------------------------------------------------

    def send_pause(self, duration_ns: int) -> None:
        """Send a PFC PAUSE (or RESUME when duration is 0) to the peer."""
        peer = self.peer
        if peer is None:
            return
        engine = self.engine
        seq = self.wire_seq
        self.wire_seq = seq + 1
        arrival = engine.now + self.delay_ns
        if self._batched:
            inflight = self._inflight
            if not inflight:
                heappush(self._equeue, (arrival, seq, self._drain_cb, _EMPTY))
            inflight.append((arrival, seq, FRAME_PAUSE, duration_ns))
        else:
            heappush(
                self._equeue,
                (arrival, seq, peer.owner.receive_pause, (duration_ns, peer)),
            )

    def apply_pause(self, duration_ns: int) -> None:
        """React to a received PAUSE frame on this (transmitting) port."""
        self.pause_frames_rx += 1
        now = self.engine.now
        if duration_ns <= 0:
            self._resume()
            return
        if not self.paused:
            self.paused = True
            self._pause_started = now
        if self._pause_timer is not None:
            self._pause_timer.cancel()
        self._pause_timer = self.engine.schedule_timer(duration_ns, self._pause_expired)

    def _pause_expired(self) -> None:
        self._pause_timer = None
        self._resume()

    def _resume(self) -> None:
        if self._pause_timer is not None:
            self._pause_timer.cancel()
            self._pause_timer = None
        if self.paused:
            self.paused = False
            self.paused_ns += self.engine.now - self._pause_started
            self.kick()

    # -- misc --------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.owner}:{self.port_no}>"


def connect(a: Port, b: Port) -> None:
    """Wire two ports together as a full-duplex link."""
    a.peer = b
    b.peer = a
    a._peer_deliver = b._deliver
    b._peer_deliver = a._deliver
