"""Full-duplex links modeled as a pair of unidirectional ports.

A :class:`Port` pulls packets from its owning device (host NIC or
switch egress queue) whenever it is idle and not paused by PFC, fully
serializes each packet at the link rate, then delivers it to the peer
device after the propagation delay (store-and-forward).

Delivery dispatches *through the receiving device at delivery time*:
the scheduled callback is the receiving port's :meth:`Port._deliver`
trampoline, which resolves ``owner.receive`` when the packet lands.
An interceptor (or audit rebinding) installed while a packet is on the
wire therefore still sees it — capturing the bound receive method at
schedule time would silently bypass anything installed mid-flight.
Heap entries stay bare 4-tuples (the raw-tuple fast path of
``Engine.schedule_anon``); the trampoline itself is bound once per
link at :func:`connect` time.

PFC PAUSE/RESUME frames are delivered out-of-band: they are tiny, are
sent at the highest priority on real hardware, and modeling them as
instantaneously serialized control messages (propagation delay only) is
the standard simulator simplification.

Fault injection can take a link administratively *down*
(:meth:`Port.set_link_state`): a down port stops starting new
transmissions until it comes back up. Packets already serialized keep
propagating — the fault layer blackholes them at the receiving device,
which is where a cut fiber actually loses them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from heapq import heappush

from repro.sim.engine import WIRE_SEQ_BASE, Engine
from repro.sim.units import tx_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Device
    from repro.net.packet import Packet


class Port:
    """One direction of a link, owned by the transmitting device."""

    __slots__ = (
        "engine",
        "owner",
        "port_no",
        "peer",
        "rate_bps",
        "delay_ns",
        "busy",
        "paused",
        "down",
        "tx_bytes",
        "tx_packets",
        "pause_frames_rx",
        "paused_ns",
        "_pause_started",
        "_pause_timer",
        "_peer_deliver",
        "wire_seq",
        "cut_id",
        "shard_out",
    )

    def __init__(self, engine: Engine, owner: "Device", port_no: int, rate_bps: int, delay_ns: int):
        self.engine = engine
        self.owner = owner
        self.port_no = port_no
        self.peer: Optional["Port"] = None
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.busy = False
        self.paused = False
        self.down = False  # administratively down (fault injection)
        self.tx_bytes = 0
        self.tx_packets = 0
        # PFC bookkeeping (this port being the *paused* side).
        self.pause_frames_rx = 0
        self.paused_ns = 0
        self._pause_started = 0
        self._pause_timer = None
        # Bound `peer._deliver`, cached at connect() time so the inner
        # loop schedules delivery with one attribute load.
        self._peer_deliver = None
        # Next heap key for frames this port puts on the wire:
        # WIRE_SEQ_BASE + (construction rank << 33) + frames emitted.
        # Same-nanosecond arrivals anywhere in the fabric are thereby
        # ordered by (emitting port, FIFO index) — a key both a single
        # engine and the shard owning this port compute identically —
        # instead of by global push order, which no spatial partition
        # could reproduce.
        rank = engine._port_rank
        engine._port_rank = rank + 1
        self.wire_seq = WIRE_SEQ_BASE + (rank << 33)
        # Sharding (repro.sim.sharding): declared here so CutPort can
        # retarget a built port via __class__ assignment (identical
        # object layout). -1 / None on every port of an unsharded run.
        self.cut_id = -1
        self.shard_out = None

    # -- transmission ----------------------------------------------------------

    # The serialization/propagation events below push bare anonymous
    # entries straight onto the engine heap (the documented layout of
    # Engine.schedule_anon) instead of calling it: these two or three
    # pushes per transmitted packet are the simulator's innermost loop.

    def kick(self) -> None:
        """Try to start transmitting the owner's next packet."""
        if self.busy or self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            engine._queue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_done, (packet,)),
        )

    def _tx_done(self, packet: "Packet") -> None:
        engine = self.engine
        deliver = self._peer_deliver
        if deliver is not None:
            seq = self.wire_seq
            self.wire_seq = seq + 1
            heappush(
                engine._queue,
                (engine.now + self.delay_ns, seq, deliver, (packet,)),
            )
        self.busy = False
        # Inlined kick() — this runs once per transmitted packet.
        if self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            engine._queue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_done, (packet,)),
        )

    def _deliver(self, packet: "Packet") -> None:
        """Hand an arriving packet to the owning device.

        This is the scheduled propagation callback (``self`` is the
        *receiving* side's port). ``owner.receive`` is resolved here,
        at delivery time, so the packet traverses whatever interceptor
        chain / data-path variant is installed when it lands.
        """
        self.owner.receive(packet, self)

    # -- link state (fault injection) ------------------------------------------

    def set_link_state(self, up: bool) -> None:
        """Administratively raise or cut this direction of the link."""
        if up:
            if self.down:
                self.down = False
                self.kick()
        else:
            self.down = True

    # -- PFC -------------------------------------------------------------------

    def send_pause(self, duration_ns: int) -> None:
        """Send a PFC PAUSE (or RESUME when duration is 0) to the peer."""
        peer = self.peer
        if peer is None:
            return
        engine = self.engine
        seq = self.wire_seq
        self.wire_seq = seq + 1
        heappush(
            engine._queue,
            (engine.now + self.delay_ns, seq, peer.owner.receive_pause, (duration_ns, peer)),
        )

    def apply_pause(self, duration_ns: int) -> None:
        """React to a received PAUSE frame on this (transmitting) port."""
        self.pause_frames_rx += 1
        now = self.engine.now
        if duration_ns <= 0:
            self._resume()
            return
        if not self.paused:
            self.paused = True
            self._pause_started = now
        if self._pause_timer is not None:
            self._pause_timer.cancel()
        self._pause_timer = self.engine.schedule_timer(duration_ns, self._pause_expired)

    def _pause_expired(self) -> None:
        self._pause_timer = None
        self._resume()

    def _resume(self) -> None:
        if self._pause_timer is not None:
            self._pause_timer.cancel()
            self._pause_timer = None
        if self.paused:
            self.paused = False
            self.paused_ns += self.engine.now - self._pause_started
            self.kick()

    # -- misc --------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.owner}:{self.port_no}>"


def connect(a: Port, b: Port) -> None:
    """Wire two ports together as a full-duplex link."""
    a.peer = b
    b.peer = a
    a._peer_deliver = b._deliver
    b._peer_deliver = a._deliver
