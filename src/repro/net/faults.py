"""Non-congestion loss injection (corruption, silent drops).

TLT only concerns congestion losses; losses from problematic hardware
make it fall back to the underlying transport (§5). This module
injects exactly those: a :class:`FaultInjector` drops packets at a
device with a configured probability, regardless of color — unlike
color-aware dropping, a corrupted green packet is gone too.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.net.node import Device
from repro.net.packet import Color, Packet


class FaultInjector:
    """Random packet corruption at a device's receive path."""

    def __init__(
        self,
        device: Device,
        loss_probability: float,
        rng: Optional[random.Random] = None,
        selector: Optional[Callable[[Packet], bool]] = None,
    ):
        if not 0 <= loss_probability <= 1:
            raise ValueError("loss probability must be within [0, 1]")
        self.probability = loss_probability
        self.rng = rng or random.Random(0xFA017)
        self.selector = selector
        self.corrupted = 0
        self.corrupted_green = 0
        self._original = device.receive
        device.receive = self._receive  # type: ignore[method-assign]

    def _receive(self, packet: Packet, in_port) -> None:
        if (self.selector is None or self.selector(packet)) and (
            self.rng.random() < self.probability
        ):
            self.corrupted += 1
            if packet.color == Color.GREEN:
                self.corrupted_green += 1
            return  # silently dropped: the wire ate it
        self._original(packet, in_port)
