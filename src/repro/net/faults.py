"""Compatibility shim: fault injection moved to :mod:`repro.faults`.

The original 60-line monkey-patching ``FaultInjector`` grew into a full
subsystem — loss models, declarative fault schedules, blackhole
windows, PFC storms — living in :mod:`repro.faults` and built on the
device interceptor chain. Import from there; this module re-exports the
old names for existing callers.
"""

import warnings

from repro.faults.models import (  # noqa: F401
    BernoulliLoss,
    FaultInjector,
    GilbertElliottLoss,
    LossModel,
)

warnings.warn(
    "repro.net.faults is deprecated; import from repro.faults instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["BernoulliLoss", "FaultInjector", "GilbertElliottLoss", "LossModel"]
