"""ECMP routing: static-hash, flowlet and weighted path selection.

Production datacenters hash the 5-tuple so all packets of a flow take
one path (the paper's §5 assumption that reordering is rare). We hash
``(flow_id, switch_id)`` with a stable CRC so paths are deterministic
across runs and independent between switches.

Beyond the default static hash, two multipath selectors probe the
regimes the paper's single-path assumption rules out:

- **flowlet** (:class:`FlowletFib`) — idle-gap flowlet switching: a
  flow is re-hashed onto a (possibly different) candidate whenever the
  gap since its last packet at this switch exceeds ``idle_gap_ns``, so
  bursts stay ordered but a flow escapes a congested or degraded path
  between bursts. Selection is a salted hash of ``(flow, epoch)`` —
  no RNG — so runs are deterministic and shard-replicas agree.
- **wcmp** (:class:`WcmpFib`) — weighted-cost multipath: candidates
  are picked proportionally to per-port weights (defaulting to link
  capacity, see :func:`capacity_weight`), the standard answer to
  asymmetric fabrics where equal spreading overloads the thin path.

Selectors are chosen per switch via a declarative *spec* (``None`` |
name | ``{"name": ..., params}``) resolved by :func:`make_fib` — the
same pattern as admission policies — never shared instances, because a
FIB holds per-switch state.

Fault model: :meth:`Fib.disable_port` / :meth:`Fib.enable_port` keep a
pristine copy of every affected route plus the set of currently-down
ports, so overlapping failure windows compose: healing one port
recomputes each touched route as *pristine minus still-down*, never
resurrecting a route through a port whose own window is still open.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.units import GBPS


class RoutingError(KeyError):
    """A destination with no route (or no live candidate) at a switch.

    Subclasses ``KeyError`` so legacy ``except KeyError`` handlers and
    the compiled kernel's route-miss path stay compatible, but carries
    a readable message naming switch and destination.
    """

    def __init__(self, switch_id: int, dst_host: int, detail: str = "no route"):
        super().__init__(dst_host)
        self.switch_id = switch_id
        self.dst_host = dst_host
        self.detail = detail

    def __str__(self) -> str:
        return (
            f"switch {self.switch_id}: {self.detail} for destination "
            f"host {self.dst_host}"
        )


def ecmp_index(flow_id: int, switch_id: int, fanout: int) -> int:
    """Deterministic ECMP next-hop index for a flow at a switch."""
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    if fanout == 1:
        return 0
    key = (flow_id * 2654435761 + switch_id * 40503) & 0xFFFFFFFF
    return zlib.crc32(key.to_bytes(4, "little")) % fanout


def weighted_index(
    flow_id: int, switch_id: int, salt: int, cumulative: Sequence[int]
) -> int:
    """Deterministic weighted next-hop index.

    ``cumulative`` is the inclusive prefix sum of candidate weights;
    the hash point is drawn uniformly in ``[0, total)`` and mapped to
    the owning bucket. With equal weights this degenerates to a uniform
    (but differently-keyed) spread, so weighted modes pin their own
    fingerprints rather than aliasing ``ecmp_index``.
    """
    key = (flow_id * 2654435761 + switch_id * 40503 + salt * 97) & 0xFFFFFFFF
    point = zlib.crc32(key.to_bytes(4, "little")) % cumulative[-1]
    return bisect_right(cumulative, point)


def capacity_weight(rate_bps: int) -> int:
    """Integer path weight for a link of ``rate_bps`` capacity (in Gbps
    granularity; sub-Gbps links still get weight 1)."""
    return max(1, int(rate_bps) // GBPS)


class Fib:
    """Forwarding table: destination host id -> candidate egress ports.

    The default selector — static per-flow ECMP hashing — and the base
    class of every selector. Fault handling, weight bookkeeping and the
    route table live here; subclasses only override :meth:`lookup`
    (and, for stateful selectors, :meth:`on_finalize`).

    .. note:: the compiled backend captures ``self._routes`` (borrowed
       reference) and the bound ``lookup`` at network-build time; all
       mutation must happen *in place* — never reassign ``_routes``.
    """

    #: Selector name, as accepted by :func:`make_fib`.
    kind = "static-hash"

    def __init__(self, switch_id: int):
        self.switch_id = switch_id
        self._routes: Dict[int, Tuple[int, ...]] = {}
        #: Original candidate tuple of every route touched by an open
        #: failure window (dropped again once fully healed).
        self._pristine: Dict[int, Tuple[int, ...]] = {}
        #: Ports currently withdrawn by the fault layer.
        self._down_ports: Set[int] = set()
        #: Per-port path weight (wcmp/flowlet; capacity-derived by
        #: default, live-updated on link degradation).
        self._weights: Dict[int, int] = {}
        #: Telemetry counters (PathChurnSampler reads these).
        self.flowlets = 0
        self.reroutes = 0

    def add_route(self, dst_host: int, ports: Sequence[int]) -> None:
        if not ports:
            raise ValueError("route needs at least one port")
        self._routes[dst_host] = tuple(ports)

    def lookup(self, dst_host: int, flow_id: int) -> int:
        """Egress port number for ``dst_host``, ECMP-selected by flow."""
        try:
            ports = self._routes[dst_host]
        except KeyError:
            raise RoutingError(self.switch_id, dst_host) from None
        if len(ports) == 1:
            return ports[0]
        return ports[ecmp_index(flow_id, self.switch_id, len(ports))]

    def has_route(self, dst_host: int) -> bool:
        return dst_host in self._routes

    def candidates(self, dst_host: int) -> Tuple[int, ...]:
        return self._routes[dst_host]

    # -- weights -----------------------------------------------------------------

    def set_port_weight(self, port_no: int, weight: int) -> None:
        """Set the path weight of ``port_no`` (ignored by static-hash
        and unweighted-flowlet lookups, but always tracked so a selector
        swap or a link degradation never loses state)."""
        self._weights[port_no] = max(1, int(weight))

    def port_weight(self, port_no: int) -> int:
        return self._weights.get(port_no, 1)

    def on_finalize(self, ports) -> None:
        """Called by ``Switch.finalize`` with the switch's ports:
        default weights follow link capacity, the asymmetric-fabric
        signal WCMP spreads by."""
        for port in ports:
            if port.peer is not None:
                self._weights[port.port_no] = capacity_weight(port.rate_bps)

    def _cumulative(self, ports: Tuple[int, ...]) -> List[int]:
        weights = self._weights
        total = 0
        cumulative = []
        for port_no in ports:
            total += weights.get(port_no, 1)
            cumulative.append(total)
        return cumulative

    # -- fault injection ---------------------------------------------------------

    def unroutable(self) -> Set[int]:
        """Destinations with no live candidate under the current down set."""
        down = self._down_ports
        return {
            dst for dst, pristine in self._pristine.items()
            if all(p in down for p in pristine)
        }

    def disable_port(self, port_no: int) -> Set[int]:
        """Withdraw ``port_no`` from every route (link/switch failure).

        Multi-candidate routes are narrowed in place (ECMP re-spreads
        over the survivors). A destination left with *no* live candidate
        keeps its stale route — the fault layer blackholes those packets
        before lookup. Overlapping windows compose: each affected route
        is recomputed from its pristine candidates minus *every*
        currently-down port.

        Returns the authoritative set of destinations currently
        unroutable at this switch.
        """
        if port_no in self._down_ports:
            return self.unroutable()
        self._down_ports.add(port_no)
        down = self._down_ports
        pristine = self._pristine
        for dst, ports in self._routes.items():
            base = pristine.get(dst, ports)
            if port_no not in base:
                continue
            if dst not in pristine:
                pristine[dst] = base
            remaining = tuple(p for p in base if p not in down)
            if remaining:
                self._routes[dst] = remaining
        return self.unroutable()

    def enable_port(self, port_no: int) -> Set[int]:
        """Re-admit a healed port: every route touched by an open window
        is recomputed as pristine minus the ports still down, so healing
        A never resurrects a path through still-down B.

        Returns the set of destinations *still* unroutable (other
        windows remain open).
        """
        self._down_ports.discard(port_no)
        down = self._down_ports
        if not down:
            self._routes.update(self._pristine)
            self._pristine.clear()
            return set()
        unroutable = set()
        for dst, base in list(self._pristine.items()):
            remaining = tuple(p for p in base if p not in down)
            if remaining == base:
                self._routes[dst] = base
                del self._pristine[dst]
            elif remaining:
                self._routes[dst] = remaining
            else:
                unroutable.add(dst)
        return unroutable


class WcmpFib(Fib):
    """Weighted-cost multipath: stateless per-flow weighted hashing.

    A flow still takes one stable path (no reordering), but the hash
    space is split proportionally to per-port weights — by default link
    capacity, live-updated by ``link_degrade`` fault events — so an
    asymmetric fabric loads each path in proportion to what it can
    carry instead of overloading the thin one.
    """

    kind = "wcmp"

    def lookup(self, dst_host: int, flow_id: int) -> int:
        try:
            ports = self._routes[dst_host]
        except KeyError:
            raise RoutingError(self.switch_id, dst_host) from None
        if len(ports) == 1:
            return ports[0]
        return ports[weighted_index(flow_id, self.switch_id, 0, self._cumulative(ports))]


class FlowletFib(Fib):
    """Flowlet switching on an engine-clocked idle-gap table.

    Packets of one flow arriving within ``idle_gap_ns`` of each other
    form a *flowlet* and stick to one egress (no intra-burst
    reordering). A longer gap opens a new flowlet: the flow is
    re-hashed — salted by a per-flow epoch counter — over the *current*
    candidates and weights, which is what reroutes flows away from
    failed or degraded paths between bursts.

    Determinism: selection depends only on per-switch packet arrival
    order and the engine clock (both bit-identical across backends and
    shard layouts by contract); no RNG is drawn.
    """

    kind = "flowlet"

    #: Default idle gap: comfortably above per-hop serialization and
    #: queueing jitter at 40 Gbps, below the TCP-family base RTT (80 µs)
    #: so inter-burst gaps actually open new flowlets.
    DEFAULT_IDLE_GAP_NS = 50_000

    def __init__(self, switch_id: int, engine, idle_gap_ns: Optional[int] = None,
                 weighted: bool = True):
        super().__init__(switch_id)
        if engine is None:
            raise ValueError("flowlet selection needs the engine clock")
        self.engine = engine
        self.idle_gap_ns = (
            int(idle_gap_ns) if idle_gap_ns is not None else self.DEFAULT_IDLE_GAP_NS
        )
        if self.idle_gap_ns <= 0:
            raise ValueError("idle_gap_ns must be positive")
        self.weighted = weighted
        #: flow id -> [last packet time, chosen port, flowlet epoch].
        self._table: Dict[int, List[int]] = {}

    def _pick(self, flow_id: int, epoch: int, ports: Tuple[int, ...]) -> int:
        if self.weighted:
            return ports[
                weighted_index(flow_id, self.switch_id, epoch, self._cumulative(ports))
            ]
        if epoch:
            flow_id = (flow_id + epoch * 0x9E3779B1) & 0xFFFFFFFF
        return ports[ecmp_index(flow_id, self.switch_id, len(ports))]

    def lookup(self, dst_host: int, flow_id: int) -> int:
        try:
            ports = self._routes[dst_host]
        except KeyError:
            raise RoutingError(self.switch_id, dst_host) from None
        if len(ports) == 1:
            return ports[0]
        now = self.engine.now
        entry = self._table.get(flow_id)
        if entry is not None:
            last, port, epoch = entry
            # Same flowlet and the chosen path is still a live
            # candidate: stick to it (ordering within the burst).
            if now - last <= self.idle_gap_ns and port in ports:
                entry[0] = now
                return port
            epoch += 1
            new_port = self._pick(flow_id, epoch, ports)
            self.flowlets += 1
            if new_port != port:
                self.reroutes += 1
            entry[0] = now
            entry[1] = new_port
            entry[2] = epoch
            return new_port
        port = self._pick(flow_id, 0, ports)
        self.flowlets += 1
        self._table[flow_id] = [now, port, 0]
        return port


#: Selector names accepted by :func:`make_fib`.
SELECTION_KINDS = ("static-hash", "flowlet", "wcmp")


def make_fib(switch_id: int, spec, engine=None) -> Fib:
    """Resolve a path-selection *spec* into a per-switch FIB instance.

    ``spec`` is ``None`` (the default static hash), a selector name
    from :data:`SELECTION_KINDS`, or ``{"name": ..., <params>}`` —
    e.g. ``{"name": "flowlet", "idle_gap_ns": 100_000}``. Instances are
    rejected: one ``SwitchConfig`` is shared fabric-wide and a FIB holds
    per-switch state (routes, flowlet table).
    """
    if spec is None:
        return Fib(switch_id)
    if isinstance(spec, Fib):
        raise TypeError(
            "path_selection must be a spec (name or dict), not a Fib "
            "instance — FIBs hold per-switch state"
        )
    if isinstance(spec, str):
        name, params = spec, {}
    elif isinstance(spec, dict):
        params = dict(spec)
        try:
            name = params.pop("name")
        except KeyError:
            raise ValueError("path_selection dict spec needs a 'name' key") from None
    else:
        raise TypeError(f"bad path_selection spec: {spec!r}")
    if name == "static-hash":
        if params:
            raise ValueError(f"static-hash takes no parameters, got {sorted(params)}")
        return Fib(switch_id)
    if name == "flowlet":
        return FlowletFib(switch_id, engine, **params)
    if name == "wcmp":
        if params:
            raise ValueError(f"wcmp takes no parameters, got {sorted(params)}")
        return WcmpFib(switch_id)
    raise ValueError(
        f"unknown path selection {name!r}; expected one of {SELECTION_KINDS}"
    )
