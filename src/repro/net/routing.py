"""ECMP routing helpers.

Production datacenters hash the 5-tuple so all packets of a flow take
one path (the paper's §5 assumption that reordering is rare). We hash
``(flow_id, switch_id)`` with a stable CRC so paths are deterministic
across runs and independent between switches.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence, Tuple


def ecmp_index(flow_id: int, switch_id: int, fanout: int) -> int:
    """Deterministic ECMP next-hop index for a flow at a switch."""
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    if fanout == 1:
        return 0
    key = (flow_id * 2654435761 + switch_id * 40503) & 0xFFFFFFFF
    return zlib.crc32(key.to_bytes(4, "little")) % fanout


class Fib:
    """Forwarding table: destination host id -> candidate egress ports."""

    def __init__(self, switch_id: int):
        self.switch_id = switch_id
        self._routes: Dict[int, Tuple[int, ...]] = {}

    def add_route(self, dst_host: int, ports: Sequence[int]) -> None:
        if not ports:
            raise ValueError("route needs at least one port")
        self._routes[dst_host] = tuple(ports)

    def lookup(self, dst_host: int, flow_id: int) -> int:
        """Egress port number for ``dst_host``, ECMP-selected by flow."""
        ports = self._routes[dst_host]
        if len(ports) == 1:
            return ports[0]
        return ports[ecmp_index(flow_id, self.switch_id, len(ports))]

    def has_route(self, dst_host: int) -> bool:
        return dst_host in self._routes

    def candidates(self, dst_host: int) -> Tuple[int, ...]:
        return self._routes[dst_host]

    # -- fault injection ---------------------------------------------------------

    def disable_port(self, port_no: int):
        """Withdraw ``port_no`` from every route (link/switch failure).

        Multi-candidate routes are narrowed in place (ECMP re-spreads
        over the survivors). A destination whose *only* candidate was
        the dead port keeps its stale route — the fault layer blackholes
        those packets before lookup — and is reported as unroutable.

        Returns ``(saved, unroutable)``: the original candidate tuples
        of every affected destination (pass back to
        :meth:`restore_routes`) and the set of destinations left with no
        surviving path.
        """
        saved: Dict[int, Tuple[int, ...]] = {}
        unroutable = set()
        for dst, ports in self._routes.items():
            if port_no not in ports:
                continue
            saved[dst] = ports
            remaining = tuple(p for p in ports if p != port_no)
            if remaining:
                self._routes[dst] = remaining
            else:
                unroutable.add(dst)
        return saved, unroutable

    def restore_routes(self, saved: Dict[int, Tuple[int, ...]]) -> None:
        """Reinstate candidate sets saved by :meth:`disable_port`."""
        self._routes.update(saved)
