"""Topology builders: leaf–spine, single-switch star, and dumbbell.

Every builder returns a :class:`Network` — the container for the
engine, stats collector, hosts and switches of one simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.link import connect
from repro.net.node import Host
from repro.sim.backend import create_engine, optimize_network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, MICROS
from repro.stats.collector import NetStats
from repro.switchsim.switch import Switch, SwitchConfig


@dataclass
class TopologyParams:
    """Shared knobs for the builders (paper defaults)."""

    link_rate_bps: int = 40 * GBPS
    host_link_delay_ns: int = 10 * MICROS  # 1 us for the RoCE experiments
    fabric_link_delay_ns: int = 10 * MICROS
    switch_config: SwitchConfig = field(default_factory=SwitchConfig)


class Network:
    """One simulation run's network: engine + stats + devices."""

    def __init__(self, engine: Engine, stats: NetStats, rng: RngRegistry):
        self.engine = engine
        self.stats = stats
        self.rng = rng
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self._next_flow_id = 1

    def new_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def device(self, name: str):
        """Look up any device (host or switch) by name."""
        for device in self.switches:
            if device.name == name:
                return device
        for device in self.hosts:
            if device.name == name:
                return device
        raise KeyError(f"no device named {name!r}")

    # -- aggregate statistics helpers ----------------------------------------

    def total_pause_frames(self) -> int:
        return self.stats.pause_frames

    def total_paused_ns(self) -> int:
        """Sum of time ports spent paused across all devices."""
        total = 0
        for device in list(self.switches) + list(self.hosts):
            for port in device.ports:
                total += port.paused_ns
                # Include a still-open pause interval.
                if port.paused:
                    total += self.engine.now - port._pause_started
        return total

    def link_count(self) -> int:
        return sum(len(d.ports) for d in self.switches) // 1

    def avg_pause_fraction(self, duration_ns: int) -> float:
        """Average fraction of time a link was blocked by PAUSE."""
        ports = [p for d in list(self.switches) + list(self.hosts) for p in d.ports]
        if not ports or duration_ns <= 0:
            return 0.0
        return self.total_paused_ns() / (len(ports) * duration_ns)


def _new_network(seed: int) -> Network:
    """Fresh network on whatever engine the active backend provides
    (:mod:`repro.sim.backend`); pure :class:`Engine` by default."""
    return Network(create_engine(), NetStats(seed=seed), RngRegistry(seed))


def leaf_spine(
    num_spines: int = 2,
    num_tors: int = 4,
    hosts_per_tor: int = 4,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
) -> Network:
    """Build a two-tier leaf–spine fabric.

    The paper's simulation uses 4 spines x 12 ToRs x 8 hosts (96 hosts,
    2:1 oversubscription); the defaults here are a scaled-down version
    with the same per-link rates and delays.
    """
    params = params or TopologyParams()
    net = _new_network(seed)
    engine = net.engine

    for tor_idx in range(num_tors):
        for local in range(hosts_per_tor):
            host = Host(engine, tor_idx * hosts_per_tor + local)
            net.hosts.append(host)

    tors = []
    for tor_idx in range(num_tors):
        tor = Switch(engine, tor_idx, params.switch_config, net.stats, name=f"tor{tor_idx}")
        tors.append(tor)
        net.switches.append(tor)
    spines = []
    for spine_idx in range(num_spines):
        spine = Switch(
            engine,
            num_tors + spine_idx,
            params.switch_config,
            net.stats,
            name=f"spine{spine_idx}",
        )
        spines.append(spine)
        net.switches.append(spine)

    # Host <-> ToR links.
    for tor_idx, tor in enumerate(tors):
        for local in range(hosts_per_tor):
            host = net.hosts[tor_idx * hosts_per_tor + local]
            hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
            tport = tor.add_port(params.link_rate_bps, params.host_link_delay_ns)
            connect(hport, tport)

    # ToR <-> spine links (full bipartite mesh).
    for tor in tors:
        for spine in spines:
            tport = tor.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
            sport = spine.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
            connect(tport, sport)

    # FIBs.
    for tor_idx, tor in enumerate(tors):
        uplinks = list(range(hosts_per_tor, hosts_per_tor + num_spines))
        for host in net.hosts:
            if host.host_id // hosts_per_tor == tor_idx:
                tor.fib.add_route(host.host_id, [host.host_id % hosts_per_tor])
            else:
                tor.fib.add_route(host.host_id, uplinks)
        tor.finalize()
    for spine in spines:
        for host in net.hosts:
            spine.fib.add_route(host.host_id, [host.host_id // hosts_per_tor])
        spine.finalize()

    optimize_network(net)
    return net


def star(
    num_hosts: int = 9,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
) -> Network:
    """All hosts on one switch — the testbed microbenchmark topology."""
    params = params or TopologyParams()
    net = _new_network(seed)
    switch = Switch(net.engine, 0, params.switch_config, net.stats, name="tor0")
    net.switches.append(switch)
    for host_id in range(num_hosts):
        host = Host(net.engine, host_id)
        net.hosts.append(host)
        hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
        sport = switch.add_port(params.link_rate_bps, params.host_link_delay_ns)
        connect(hport, sport)
        switch.fib.add_route(host_id, [host_id])
    switch.finalize()
    optimize_network(net)
    return net


def dumbbell(
    left_hosts: int = 7,
    right_hosts: int = 2,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
) -> Network:
    """Two switches joined by one inter-switch link (testbed §7.4)."""
    params = params or TopologyParams()
    net = _new_network(seed)
    sw_left = Switch(net.engine, 0, params.switch_config, net.stats, name="swL")
    sw_right = Switch(net.engine, 1, params.switch_config, net.stats, name="swR")
    net.switches.extend([sw_left, sw_right])

    for host_id in range(left_hosts + right_hosts):
        host = Host(net.engine, host_id)
        net.hosts.append(host)
        switch = sw_left if host_id < left_hosts else sw_right
        hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
        sport = switch.add_port(params.link_rate_bps, params.host_link_delay_ns)
        connect(hport, sport)

    # Inter-switch trunk.
    lport = sw_left.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
    rport = sw_right.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
    connect(lport, rport)

    for host in net.hosts:
        if host.host_id < left_hosts:
            sw_left.fib.add_route(host.host_id, [host.host_id])
            sw_right.fib.add_route(host.host_id, [right_hosts])
        else:
            sw_left.fib.add_route(host.host_id, [left_hosts])
            sw_right.fib.add_route(host.host_id, [host.host_id - left_hosts])
    sw_left.finalize()
    sw_right.finalize()
    optimize_network(net)
    return net
