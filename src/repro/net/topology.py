"""Topology builders: leaf–spine, fat-tree, single-switch star, dumbbell.

Every builder returns a :class:`Network` — the container for the
engine, stats collector, hosts and switches of one simulation run.

``leaf_spine`` and ``fat_tree`` take optional per-spine / per-core rate
factors to build *asymmetric* fabrics (one thin path among equals — the
regime where static-hash ECMP overloads the degraded link and weighted
or flowlet selection should win). Path weights are capacity-derived at
``Switch.finalize`` time, so asymmetric builders need no extra wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.net.link import connect
from repro.net.node import Host
from repro.sim.backend import create_engine, optimize_network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, MICROS
from repro.stats.collector import NetStats
from repro.switchsim.switch import Switch, SwitchConfig


@dataclass
class TopologyParams:
    """Shared knobs for the builders (paper defaults)."""

    link_rate_bps: int = 40 * GBPS
    host_link_delay_ns: int = 10 * MICROS  # 1 us for the RoCE experiments
    fabric_link_delay_ns: int = 10 * MICROS
    switch_config: SwitchConfig = field(default_factory=SwitchConfig)


class Network:
    """One simulation run's network: engine + stats + devices."""

    def __init__(self, engine: Engine, stats: NetStats, rng: RngRegistry):
        self.engine = engine
        self.stats = stats
        self.rng = rng
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self._next_flow_id = 1

    def new_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def device(self, name: str):
        """Look up any device (host or switch) by name."""
        for device in self.switches:
            if device.name == name:
                return device
        for device in self.hosts:
            if device.name == name:
                return device
        raise KeyError(f"no device named {name!r}")

    # -- aggregate statistics helpers ----------------------------------------

    def total_pause_frames(self) -> int:
        return self.stats.pause_frames

    def total_paused_ns(self) -> int:
        """Sum of time ports spent paused across all devices."""
        total = 0
        for device in list(self.switches) + list(self.hosts):
            for port in device.ports:
                total += port.paused_ns
                # Include a still-open pause interval.
                if port.paused:
                    total += self.engine.now - port._pause_started
        return total

    def link_count(self) -> int:
        return sum(len(d.ports) for d in self.switches) // 1

    def avg_pause_fraction(self, duration_ns: int) -> float:
        """Average fraction of time a link was blocked by PAUSE."""
        ports = [p for d in list(self.switches) + list(self.hosts) for p in d.ports]
        if not ports or duration_ns <= 0:
            return 0.0
        return self.total_paused_ns() / (len(ports) * duration_ns)


def _new_network(seed: int) -> Network:
    """Fresh network on whatever engine the active backend provides
    (:mod:`repro.sim.backend`); pure :class:`Engine` by default."""
    return Network(create_engine(), NetStats(seed=seed), RngRegistry(seed))


def _rate_factor(factors: Optional[Sequence[float]], index: int, what: str) -> float:
    if factors is None:
        return 1.0
    factor = float(factors[index])
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"{what} rate factor must be in (0, 1], got {factor}")
    return factor


def leaf_spine(
    num_spines: int = 2,
    num_tors: int = 4,
    hosts_per_tor: int = 4,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
    spine_rate_factors: Optional[Sequence[float]] = None,
) -> Network:
    """Build a two-tier leaf–spine fabric.

    The paper's simulation uses 4 spines x 12 ToRs x 8 hosts (96 hosts,
    2:1 oversubscription); the defaults here are a scaled-down version
    with the same per-link rates and delays.

    ``spine_rate_factors`` (one entry per spine, each in ``(0, 1]``)
    scales every ToR<->spine link through that spine — an asymmetric
    fabric where one spine plane runs thin.
    """
    params = params or TopologyParams()
    if spine_rate_factors is not None and len(spine_rate_factors) != num_spines:
        raise ValueError(
            f"spine_rate_factors needs {num_spines} entries, "
            f"got {len(spine_rate_factors)}"
        )
    net = _new_network(seed)
    engine = net.engine

    for tor_idx in range(num_tors):
        for local in range(hosts_per_tor):
            host = Host(engine, tor_idx * hosts_per_tor + local)
            net.hosts.append(host)

    tors = []
    for tor_idx in range(num_tors):
        tor = Switch(engine, tor_idx, params.switch_config, net.stats, name=f"tor{tor_idx}")
        tors.append(tor)
        net.switches.append(tor)
    spines = []
    for spine_idx in range(num_spines):
        spine = Switch(
            engine,
            num_tors + spine_idx,
            params.switch_config,
            net.stats,
            name=f"spine{spine_idx}",
        )
        spines.append(spine)
        net.switches.append(spine)

    # Host <-> ToR links.
    for tor_idx, tor in enumerate(tors):
        for local in range(hosts_per_tor):
            host = net.hosts[tor_idx * hosts_per_tor + local]
            hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
            tport = tor.add_port(params.link_rate_bps, params.host_link_delay_ns)
            connect(hport, tport)

    # ToR <-> spine links (full bipartite mesh).
    for tor in tors:
        for spine_idx, spine in enumerate(spines):
            factor = _rate_factor(spine_rate_factors, spine_idx, "spine")
            rate = max(1, int(params.link_rate_bps * factor))
            tport = tor.add_port(rate, params.fabric_link_delay_ns)
            sport = spine.add_port(rate, params.fabric_link_delay_ns)
            connect(tport, sport)

    # FIBs.
    for tor_idx, tor in enumerate(tors):
        uplinks = list(range(hosts_per_tor, hosts_per_tor + num_spines))
        for host in net.hosts:
            if host.host_id // hosts_per_tor == tor_idx:
                tor.fib.add_route(host.host_id, [host.host_id % hosts_per_tor])
            else:
                tor.fib.add_route(host.host_id, uplinks)
        tor.finalize()
    for spine in spines:
        for host in net.hosts:
            spine.fib.add_route(host.host_id, [host.host_id // hosts_per_tor])
        spine.finalize()

    optimize_network(net)
    return net


def fat_tree(
    k: int = 4,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
    core_rate_factors: Optional[Sequence[float]] = None,
) -> Network:
    """Build a three-tier k-ary fat-tree (Clos): ``k`` pods of ``k/2``
    edge and ``k/2`` aggregation switches, ``(k/2)^2`` cores, and
    ``k^3/4`` hosts — full bisection bandwidth at equal link rates.

    Wiring (``half = k/2``):

    - edge ``e`` of pod ``p`` serves hosts
      ``p*half^2 + e*half .. + half-1`` on ports ``0..half-1`` and
      uplinks to every agg of its pod on ports ``half..k-1``;
    - agg ``a`` of pod ``p`` reaches its pod's edges on ports
      ``0..half-1`` and cores ``a*half..(a+1)*half-1`` on ports
      ``half..k-1``;
    - core ``c`` connects to agg ``c // half`` of every pod, one port
      per pod.

    Multipath is everywhere: an inter-pod flow sees ``half`` candidate
    aggs at its edge and ``half`` candidate cores at its agg. The FIBs
    encode exactly that: local routes are single-candidate, everything
    else fans over all uplinks.

    ``core_rate_factors`` (one entry per core, each in ``(0, 1]``)
    scales every agg<->core link of that core — the classic asymmetric
    Clos where one core plane is degraded.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree k must be even and >= 2, got {k}")
    half = k // 2
    num_cores = half * half
    if core_rate_factors is not None and len(core_rate_factors) != num_cores:
        raise ValueError(
            f"core_rate_factors needs {num_cores} entries, "
            f"got {len(core_rate_factors)}"
        )
    params = params or TopologyParams()
    net = _new_network(seed)
    engine = net.engine

    for host_id in range(k * half * half):
        net.hosts.append(Host(engine, host_id))

    def new_switch(name: str) -> Switch:
        switch = Switch(
            engine, len(net.switches), params.switch_config, net.stats, name=name
        )
        net.switches.append(switch)
        return switch

    edges = [[new_switch(f"edge{p}_{e}") for e in range(half)] for p in range(k)]
    aggs = [[new_switch(f"agg{p}_{a}") for a in range(half)] for p in range(k)]
    cores = [new_switch(f"core{c}") for c in range(num_cores)]

    # Host <-> edge links (ports 0..half-1 on the edge switch).
    for p in range(k):
        for e, edge in enumerate(edges[p]):
            for h in range(half):
                host = net.hosts[p * half * half + e * half + h]
                hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
                eport = edge.add_port(params.link_rate_bps, params.host_link_delay_ns)
                connect(hport, eport)

    # Edge <-> agg links (full bipartite within the pod; edge ports
    # half..k-1, agg ports 0..half-1 indexed by edge).
    for p in range(k):
        for a, agg in enumerate(aggs[p]):
            for edge in edges[p]:
                eport = edge.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
                aport = agg.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
                connect(eport, aport)

    # Agg <-> core links: agg ``a`` owns cores a*half..(a+1)*half-1;
    # core ports are indexed by pod.
    for c, core in enumerate(cores):
        a = c // half
        factor = _rate_factor(core_rate_factors, c, "core")
        rate = max(1, int(params.link_rate_bps * factor))
        for p in range(k):
            aport = aggs[p][a].add_port(rate, params.fabric_link_delay_ns)
            cport = core.add_port(rate, params.fabric_link_delay_ns)
            connect(aport, cport)

    # FIBs.
    uplinks = list(range(half, k))
    for p in range(k):
        for e, edge in enumerate(edges[p]):
            first_local = p * half * half + e * half
            for host in net.hosts:
                if first_local <= host.host_id < first_local + half:
                    edge.fib.add_route(host.host_id, [host.host_id - first_local])
                else:
                    edge.fib.add_route(host.host_id, uplinks)
            edge.finalize()
        for agg in aggs[p]:
            for host in net.hosts:
                if host.host_id // (half * half) == p:
                    # Down to the edge that owns the host.
                    agg.fib.add_route(
                        host.host_id, [(host.host_id // half) % half]
                    )
                else:
                    agg.fib.add_route(host.host_id, uplinks)
            agg.finalize()
    for core in cores:
        for host in net.hosts:
            core.fib.add_route(host.host_id, [host.host_id // (half * half)])
        core.finalize()

    optimize_network(net)
    return net


def star(
    num_hosts: int = 9,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
) -> Network:
    """All hosts on one switch — the testbed microbenchmark topology."""
    params = params or TopologyParams()
    net = _new_network(seed)
    switch = Switch(net.engine, 0, params.switch_config, net.stats, name="tor0")
    net.switches.append(switch)
    for host_id in range(num_hosts):
        host = Host(net.engine, host_id)
        net.hosts.append(host)
        hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
        sport = switch.add_port(params.link_rate_bps, params.host_link_delay_ns)
        connect(hport, sport)
        switch.fib.add_route(host_id, [host_id])
    switch.finalize()
    optimize_network(net)
    return net


def dumbbell(
    left_hosts: int = 7,
    right_hosts: int = 2,
    params: Optional[TopologyParams] = None,
    seed: int = 1,
) -> Network:
    """Two switches joined by one inter-switch link (testbed §7.4)."""
    params = params or TopologyParams()
    net = _new_network(seed)
    sw_left = Switch(net.engine, 0, params.switch_config, net.stats, name="swL")
    sw_right = Switch(net.engine, 1, params.switch_config, net.stats, name="swR")
    net.switches.extend([sw_left, sw_right])

    for host_id in range(left_hosts + right_hosts):
        host = Host(net.engine, host_id)
        net.hosts.append(host)
        switch = sw_left if host_id < left_hosts else sw_right
        hport = host.attach_port(params.link_rate_bps, params.host_link_delay_ns)
        sport = switch.add_port(params.link_rate_bps, params.host_link_delay_ns)
        connect(hport, sport)

    # Inter-switch trunk.
    lport = sw_left.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
    rport = sw_right.add_port(params.link_rate_bps, params.fabric_link_delay_ns)
    connect(lport, rport)

    for host in net.hosts:
        if host.host_id < left_hosts:
            sw_left.fib.add_route(host.host_id, [host.host_id])
            sw_right.fib.add_route(host.host_id, [right_hosts])
        else:
            sw_left.fib.add_route(host.host_id, [left_hosts])
            sw_right.fib.add_route(host.host_id, [host.host_id - left_hosts])
    sw_left.finalize()
    sw_right.finalize()
    optimize_network(net)
    return net
