"""Deterministic fault injection (non-congestion loss).

Everything TLT's §5 fallback story needs to be exercised against:
corruption (i.i.d. and Gilbert–Elliott bursts), link flaps with FIB
reroute and blackhole windows, whole-switch failure, and PFC storms —
all driven by a declarative, seed-derived :class:`FaultSchedule` and
implemented on the device interceptor chain
(:class:`repro.net.node.Interceptor`), so they compose with tracing and
survive audit toggling.
"""

from repro.faults.models import (
    BernoulliLoss,
    FaultInjector,
    GilbertElliottLoss,
    LossModel,
    make_model,
)
from repro.faults.schedule import (
    BlackholeInterceptor,
    FaultController,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "BernoulliLoss",
    "BlackholeInterceptor",
    "FaultController",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "GilbertElliottLoss",
    "LossModel",
    "make_model",
]
