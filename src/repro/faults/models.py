"""Non-congestion loss models and the corruption interceptor.

TLT only concerns congestion losses; losses from problematic hardware
make it fall back to the underlying transport (§5). This module injects
exactly those: a :class:`FaultInjector` sits in a device's receive-path
interceptor chain and eats packets according to a :class:`LossModel`,
regardless of color — unlike color-aware dropping, a corrupted green
packet is gone too.

Loss models:

- :class:`BernoulliLoss` — i.i.d. corruption at a fixed rate (a noisy
  but stable optic);
- :class:`GilbertElliottLoss` — the classic two-state Markov burst
  model (a flapping transceiver: long clean stretches punctuated by
  windows where most packets die).

Determinism: the injector's RNG is derived from the scenario seed and
the device name via :func:`repro.sim.rng.derive_seed`, so a ``--seeds
N`` sweep corrupts a *different* packet set per seed while any single
seed stays bit-reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.net.node import Device, Interceptor
from repro.net.packet import Color, Packet, recycle
from repro.sim.rng import derive_seed


class LossModel:
    """Decides, per observed packet, whether the wire eats it."""

    def sample(self, rng: random.Random) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def to_params(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError


class BernoulliLoss(LossModel):
    """Independent per-packet corruption with a fixed probability."""

    def __init__(self, probability: float):
        if not 0 <= probability <= 1:
            raise ValueError("loss probability must be within [0, 1]")
        self.probability = probability

    def sample(self, rng: random.Random) -> bool:
        return rng.random() < self.probability

    def to_params(self) -> dict:
        return {"model": "bernoulli", "rate": self.probability}

    def __repr__(self) -> str:  # pragma: no cover
        return f"BernoulliLoss({self.probability})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    Per packet the chain first transitions — GOOD->BAD with
    ``p_enter``, BAD->GOOD with ``p_exit`` — then the packet is lost
    with the state's loss rate (``loss_good`` is usually 0, ``loss_bad``
    close to 1). Mean burst length is ``1/p_exit`` packets; stationary
    loss rate is ``p_enter/(p_enter+p_exit) * loss_bad`` (plus the good
    term).
    """

    def __init__(
        self,
        p_enter: float,
        p_exit: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for name, p in (
            ("p_enter", p_enter),
            ("p_exit", p_exit),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be within [0, 1]")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False  # current chain state

    def sample(self, rng: random.Random) -> bool:
        if self.bad:
            if rng.random() < self.p_exit:
                self.bad = False
        elif rng.random() < self.p_enter:
            self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return rng.random() < loss

    def to_params(self) -> dict:
        return {
            "model": "gilbert_elliott",
            "p_enter": self.p_enter,
            "p_exit": self.p_exit,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GilbertElliottLoss(p_enter={self.p_enter}, p_exit={self.p_exit}, "
            f"loss_bad={self.loss_bad})"
        )


def make_model(params: dict) -> LossModel:
    """Build a loss model from declarative ``FaultEvent`` params."""
    name = params.get("model", "bernoulli")
    if name == "bernoulli":
        return BernoulliLoss(float(params.get("rate", 0.0)))
    if name == "gilbert_elliott":
        return GilbertElliottLoss(
            float(params.get("p_enter", 0.0)),
            float(params.get("p_exit", 1.0)),
            float(params.get("loss_good", 0.0)),
            float(params.get("loss_bad", 1.0)),
        )
    raise ValueError(f"unknown loss model {name!r}")


class FaultInjector(Interceptor):
    """Random packet corruption at a device's receive path.

    Installs itself on ``device``'s interceptor chain (so it composes
    with tracing and survives audit toggling; remove with
    :meth:`detach`). Dropped packets are accounted as fault drops on
    ``stats`` (when given) and recycled to the packet pool.
    """

    def __init__(
        self,
        device: Device,
        loss_probability: Optional[float] = None,
        rng: Optional[random.Random] = None,
        selector: Optional[Callable[[Packet], bool]] = None,
        *,
        model: Optional[LossModel] = None,
        stats=None,
        seed: Optional[int] = None,
    ):
        if model is None:
            if loss_probability is None:
                raise ValueError("need a loss_probability or a model")
            model = BernoulliLoss(loss_probability)
        elif loss_probability is not None:
            raise ValueError("pass loss_probability or model, not both")
        self.device = device
        self.model = model
        if rng is None:
            base = seed if seed is not None else getattr(stats, "seed", 0)
            rng = random.Random(derive_seed(base, f"fault.corruption.{device.name}"))
        self.rng = rng
        self.selector = selector
        self.stats = stats
        self.corrupted = 0
        self.corrupted_green = 0
        device.add_interceptor(self)

    @property
    def probability(self) -> Optional[float]:
        """Flat loss rate, when the model is Bernoulli (compat shim)."""
        return getattr(self.model, "probability", None)

    def detach(self) -> None:
        self.device.remove_interceptor(self)

    def on_packet(self, packet: Packet, in_port, forward: Callable) -> None:
        if (self.selector is None or self.selector(packet)) and self.model.sample(
            self.rng
        ):
            self.corrupted += 1
            if packet.color == Color.GREEN:
                self.corrupted_green += 1
            stats = self.stats
            if stats is not None:
                stats.count_fault_drop(packet)
                ring = stats.audit_ring
                if ring is not None:
                    ring.record(
                        "fault_drop", time_ns=self.device.engine.now,
                        device=self.device.name, flow=packet.flow_id,
                        seq=packet.seq, size=packet.size,
                        color=packet.color.name, info="corruption",
                    )
            recycle(packet)  # the wire ate it
            return
        forward(packet, in_port)
