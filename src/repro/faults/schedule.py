"""Declarative fault schedules: timed hardware-failure events.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`\\ s —
JSON-able, diffable, cache-fingerprintable — and
:meth:`FaultSchedule.install` arms them on a network's engine. A
:class:`FaultController` owns the runtime state: corruption injectors,
blackhole interceptors, withdrawn FIB routes and PFC-storm refresh
ticks.

Spec format (``--faults spec.json``)::

    {"events": [
      {"time_ns": 200000, "kind": "corruption_on", "target": "tor0",
       "params": {"model": "bernoulli", "rate": 0.001}},
      {"time_ns": 900000, "kind": "corruption_off", "target": "tor0"},
      {"time_ns": 300000, "kind": "link_down", "target": "tor0:4"},
      {"time_ns": 800000, "kind": "link_up",   "target": "tor0:4"},
      {"time_ns": 100000, "kind": "switch_down", "target": "spine1"},
      {"time_ns": 700000, "kind": "switch_up",   "target": "spine1"},
      {"time_ns": 400000, "kind": "pfc_storm", "target": "tor1:0",
       "params": {"duration_ns": 250000}}
    ]}

Targets are device names (``tor0``, ``spine1``, ``host3``) or
``device:port_no`` for link-scoped events. ``corruption_on`` params
select a loss model (see :func:`repro.faults.models.make_model`);
Gilbert–Elliott takes ``p_enter``/``p_exit``/``loss_bad``.

Failure semantics:

- **link_down** cuts both directions: neither endpoint starts new
  transmissions, packets already serialized onto the wire are eaten at
  the far end (a :class:`BlackholeInterceptor` on each endpoint drops
  arrivals on the dead port), and each switch endpoint withdraws the
  port from its FIB — ECMP re-spreads over surviving paths; destinations
  with no surviving path are blackholed until ``link_up``.
- **link_degrade** multiplies both directions' line rate by
  ``params["factor"]`` (default 0.5) of the link's *pristine* rate —
  brown-out, not blackout: an auto-negotiated fallback or a flapping
  optic running at reduced speed. Switch endpoints re-derive the
  port's path weight from the new capacity, so weighted selectors
  (``wcmp``, weighted ``flowlet``) shift load off the thin path while
  static-hash keeps overloading it. ``link_restore`` heals the rate
  (and weight) back to pristine.
- **switch_down** is link_down on every attached link plus a drop-all
  blackhole at the switch itself (packets it still holds stay buffered
  and drain on ``switch_up``, like a rebooted ASIC's dark period).
- **pfc_storm** force-feeds a port PAUSE frames (the stuck-XOFF failure
  mode PFC deployments fear), refreshed on the same half-quantum
  cadence a real storm would arrive at, until the storm window closes —
  after which the pause expires and transmission resumes.

Every drop made by this layer is a *fault* drop: counted via
``NetStats.count_fault_drop`` (never ``count_drop``), recorded in the
audit ring as ``fault_drop``, and recycled to the packet pool — the §4
green-drop faithfulness checker only ever sees congestion drops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.faults.models import FaultInjector, make_model
from repro.net.node import Device, Interceptor
from repro.net.packet import Packet, recycle
from repro.net.routing import capacity_weight

#: Recognized event kinds.
FAULT_KINDS = (
    "corruption_on",
    "corruption_off",
    "link_down",
    "link_up",
    "link_degrade",
    "link_restore",
    "switch_down",
    "switch_up",
    "pfc_storm",
)

#: Default PFC pause quantum for storms: 65535 quanta of 512 bit-times
#: at 40 Gbps ≈ 839 µs on real hardware; we refresh at half-quantum.
DEFAULT_STORM_PAUSE_NS = 65_535 * 512 * 1_000_000_000 // (40 * 10**9)


@dataclass
class FaultEvent:
    """One timed fault action."""

    time_ns: int
    kind: str
    target: str = ""
    params: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time_ns < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.time_ns}")

    def to_spec(self) -> Dict:
        spec: Dict = {"time_ns": self.time_ns, "kind": self.kind, "target": self.target}
        if self.params:
            spec["params"] = dict(self.params)
        return spec

    @classmethod
    def from_spec(cls, spec: Dict) -> "FaultEvent":
        return cls(
            time_ns=int(spec["time_ns"]),
            kind=str(spec["kind"]),
            target=str(spec.get("target", "")),
            params=dict(spec.get("params", {})),
        )


@dataclass
class FaultSchedule:
    """An ordered, declarative list of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.time_ns)

    def to_spec(self) -> Dict:
        """Canonical JSON-able form (stable for cache fingerprints)."""
        return {"events": [event.to_spec() for event in self.events]}

    @classmethod
    def from_spec(cls, spec) -> "FaultSchedule":
        if isinstance(spec, FaultSchedule):
            return spec
        if isinstance(spec, list):
            events = spec
        else:
            events = spec.get("events", [])
        return cls([FaultEvent.from_spec(e) for e in events])

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as fh:
            return cls.from_spec(json.load(fh))

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_spec(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def install(self, net, stats=None) -> "FaultController":
        """Arm every event on ``net``'s engine; returns the controller."""
        controller = FaultController(net, self, stats=stats)
        return controller.install()

    @classmethod
    def random(cls, rng, horizon_ns: int, net, max_faults: int = 4) -> "FaultSchedule":
        """Generate a well-formed random schedule (chaos/property tests).

        Picks 1..max_faults fault episodes — corruption windows, link
        flaps, PFC storms — with disjoint targets, each opening in the
        first half of ``horizon_ns`` and closing before it ends.
        """
        switches = list(net.switches)
        links = [
            f"{s.name}:{p.port_no}" for s in switches for p in s.ports if p.peer is not None
        ]
        events: List[FaultEvent] = []
        used: Set[str] = set()
        for _ in range(rng.randrange(1, max_faults + 1)):
            start = rng.randrange(0, max(1, horizon_ns // 2))
            duration = rng.randrange(max(1, horizon_ns // 20), max(2, horizon_ns // 4))
            kind = rng.choice(("corruption", "link_flap", "pfc_storm"))
            if kind == "corruption":
                candidates = [s.name for s in switches if s.name not in used]
                if not candidates:
                    continue
                target = rng.choice(candidates)
                if rng.random() < 0.5:
                    params = {"model": "bernoulli", "rate": rng.choice((1e-4, 1e-3, 1e-2))}
                else:
                    params = {
                        "model": "gilbert_elliott",
                        "p_enter": rng.choice((0.001, 0.01)),
                        "p_exit": rng.choice((0.1, 0.3)),
                        "loss_bad": rng.choice((0.5, 1.0)),
                    }
                events.append(FaultEvent(start, "corruption_on", target, params))
                events.append(FaultEvent(start + duration, "corruption_off", target))
            else:
                candidates = [l for l in links if l not in used]
                if not candidates:
                    continue
                target = rng.choice(candidates)
                if kind == "link_flap":
                    events.append(FaultEvent(start, "link_down", target))
                    events.append(FaultEvent(start + duration, "link_up", target))
                else:
                    events.append(
                        FaultEvent(start, "pfc_storm", target, {"duration_ns": duration})
                    )
            used.add(target)
        return cls(events)


class BlackholeInterceptor(Interceptor):
    """Eats packets arriving on dead ports / for unroutable destinations.

    One per device, installed at chain position 0 (closest to the wire)
    by the :class:`FaultController` and removed when its last failure
    window closes, so a healthy device pays nothing.
    """

    def __init__(self, device: Device, stats):
        self.device = device
        self.stats = stats
        self.dead_ports: Set = set()
        self.unroutable: Set[int] = set()
        self.drop_all = False
        self.dropped = 0

    @property
    def active(self) -> bool:
        return self.drop_all or bool(self.dead_ports) or bool(self.unroutable)

    def on_packet(self, packet: Packet, in_port, forward: Callable) -> None:
        if self.drop_all or in_port in self.dead_ports or packet.dst in self.unroutable:
            self.dropped += 1
            stats = self.stats
            if stats is not None:
                stats.count_fault_drop(packet)
                ring = stats.audit_ring
                if ring is not None:
                    ring.record(
                        "fault_drop", time_ns=self.device.engine.now,
                        device=self.device.name, flow=packet.flow_id,
                        seq=packet.seq, size=packet.size,
                        color=packet.color.name, info="blackhole",
                    )
            recycle(packet)
            return
        forward(packet, in_port)


class FaultController:
    """Runtime state of an armed :class:`FaultSchedule`."""

    def __init__(self, net, schedule: FaultSchedule, stats=None):
        self.net = net
        self.engine = net.engine
        self.stats = stats if stats is not None else net.stats
        self.schedule = schedule
        self.injectors: Dict[str, FaultInjector] = {}
        self.blackholes: Dict[str, BlackholeInterceptor] = {}
        #: Open per-port withdrawal windows (re-entry guard; the FIB
        #: itself owns the authoritative route/unroutable state).
        self._withdrawn: Set[Tuple[str, int]] = set()
        #: (device name, port_no) -> pristine rate_bps of degraded ports.
        self._degraded: Dict[Tuple[str, int], int] = {}
        self.applied: List[Tuple[int, str, str]] = []
        #: Optional post-apply hook ``fn(event)`` (set by
        #: repro.telemetry.Telemetry to trigger flight-recorder dumps).
        self.on_apply = None
        self._devices: Dict[str, Device] = {
            d.name: d for d in list(net.switches) + list(net.hosts)
        }

    # -- arming ------------------------------------------------------------------

    def install(self) -> "FaultController":
        """Schedule every event (deterministic: fixed order, fixed seq)."""
        for event in self.schedule.events:
            self.engine.schedule_at(event.time_ns, self._apply, event)
        return self

    def _apply(self, event: FaultEvent) -> None:
        getattr(self, "_ev_" + event.kind)(event)
        self.applied.append((self.engine.now, event.kind, event.target))
        if self.on_apply is not None:
            self.on_apply(event)

    # -- target resolution -------------------------------------------------------

    def _device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise ValueError(f"fault target {name!r}: no such device") from None

    def _port(self, target: str):
        name, _, port_no = target.partition(":")
        if not port_no:
            raise ValueError(f"fault target {target!r}: expected 'device:port_no'")
        device = self._device(name)
        try:
            return device.ports[int(port_no)]
        except (IndexError, ValueError):
            raise ValueError(f"fault target {target!r}: no such port") from None

    def _blackhole(self, device: Device) -> BlackholeInterceptor:
        bh = self.blackholes.get(device.name)
        if bh is None:
            bh = BlackholeInterceptor(device, self.stats)
            # Closest to the wire: a dead link eats packets before
            # corruption models or tracing ever see them.
            device.add_interceptor(bh, index=0)
            self.blackholes[device.name] = bh
        return bh

    def _release_blackhole(self, device: Device) -> None:
        bh = self.blackholes.get(device.name)
        if bh is not None and not bh.active:
            device.remove_interceptor(bh)
            del self.blackholes[device.name]

    # -- corruption --------------------------------------------------------------

    def _ev_corruption_on(self, event: FaultEvent) -> None:
        device = self._device(event.target)
        old = self.injectors.pop(device.name, None)
        if old is not None:
            old.detach()
        self.injectors[device.name] = FaultInjector(
            device,
            model=make_model(event.params),
            rng=self.net.rng.stream(f"fault.corruption.{device.name}"),
            stats=self.stats,
        )

    def _ev_corruption_off(self, event: FaultEvent) -> None:
        injector = self.injectors.pop(event.target, None)
        if injector is not None:
            injector.detach()

    # -- link failure ------------------------------------------------------------

    def _take_port_down(self, port) -> None:
        port.set_link_state(False)
        owner = port.owner
        self._blackhole(owner).dead_ports.add(port)
        fib = getattr(owner, "fib", None)
        key = (owner.name, port.port_no)
        if fib is not None and key not in self._withdrawn:
            self._withdrawn.add(key)
            # The FIB composes overlapping windows internally and
            # reports the authoritative currently-unroutable set.
            self._blackhole(owner).unroutable = set(fib.disable_port(port.port_no))

    def _bring_port_up(self, port) -> None:
        owner = port.owner
        key = (owner.name, port.port_no)
        fib = getattr(owner, "fib", None)
        still_dark: Set[int] = set()
        if key in self._withdrawn:
            self._withdrawn.discard(key)
            if fib is not None:
                # Pristine-minus-still-down recompute: healing this port
                # never resurrects a route through a still-down one, and
                # a destination reachable again through the healed port
                # leaves the blackhole immediately.
                still_dark = fib.enable_port(port.port_no)
        elif fib is not None:
            still_dark = fib.unroutable()
        bh = self.blackholes.get(owner.name)
        if bh is not None:
            bh.dead_ports.discard(port)
            bh.unroutable = set(still_dark)
            self._release_blackhole(owner)
        port.set_link_state(True)

    def _ev_link_down(self, event: FaultEvent) -> None:
        port = self._port(event.target)
        self._take_port_down(port)
        if port.peer is not None:
            self._take_port_down(port.peer)

    def _ev_link_up(self, event: FaultEvent) -> None:
        port = self._port(event.target)
        self._bring_port_up(port)
        if port.peer is not None:
            self._bring_port_up(port.peer)

    # -- link degradation --------------------------------------------------------

    def _link_endpoints(self, port):
        return (port, port.peer) if port.peer is not None else (port,)

    def _set_port_rate(self, port, rate_bps: int) -> None:
        port.rate_bps = rate_bps
        owner = port.owner
        fib = getattr(owner, "fib", None)
        if fib is not None:
            # Weighted selectors follow live capacity: new flowlets and
            # WCMP hashes shift load off the thin path immediately.
            fib.set_port_weight(port.port_no, capacity_weight(rate_bps))

    def _ev_link_degrade(self, event: FaultEvent) -> None:
        port = self._port(event.target)
        factor = float(event.params.get("factor", 0.5))
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"link_degrade factor must be in (0, 1], got {factor}")
        for end in self._link_endpoints(port):
            key = (end.owner.name, end.port_no)
            # Repeated degrades rescale from the pristine rate, not the
            # already-degraded one, mirroring disable/enable semantics.
            pristine = self._degraded.setdefault(key, end.rate_bps)
            self._set_port_rate(end, max(1, int(pristine * factor)))

    def _ev_link_restore(self, event: FaultEvent) -> None:
        port = self._port(event.target)
        for end in self._link_endpoints(port):
            pristine = self._degraded.pop((end.owner.name, end.port_no), None)
            if pristine is not None:
                self._set_port_rate(end, pristine)

    # -- switch failure ----------------------------------------------------------

    def _ev_switch_down(self, event: FaultEvent) -> None:
        switch = self._device(event.target)
        self._blackhole(switch).drop_all = True
        for port in switch.ports:
            port.set_link_state(False)
            if port.peer is not None:
                self._take_port_down(port.peer)

    def _ev_switch_up(self, event: FaultEvent) -> None:
        switch = self._device(event.target)
        bh = self.blackholes.get(switch.name)
        if bh is not None:
            bh.drop_all = False
            self._release_blackhole(switch)
        for port in switch.ports:
            if port.peer is not None:
                self._bring_port_up(port.peer)
            port.set_link_state(True)

    # -- PFC storm ---------------------------------------------------------------

    def _ev_pfc_storm(self, event: FaultEvent) -> None:
        port = self._port(event.target)
        duration = int(event.params.get("duration_ns", DEFAULT_STORM_PAUSE_NS))
        quantum = int(event.params.get("pause_ns", DEFAULT_STORM_PAUSE_NS))
        self._storm_tick(port, self.engine.now + duration, quantum)

    def _storm_tick(self, port, end_ns: int, quantum: int) -> None:
        remaining = end_ns - self.engine.now
        if remaining <= 0 or port.down:
            return
        pause = min(quantum, remaining)
        self.stats.pause_frames += 1  # the storm IS pause frames on the wire
        port.apply_pause(pause)
        if remaining > pause:
            # Refresh at half-quantum, like PfcEngine (and a real storm):
            # the pause never expires while the storm lasts.
            self.engine.schedule(max(1, pause // 2), self._storm_tick, port, end_ns, quantum)
