"""Trace-driven open-loop multi-tier service emulation (ROADMAP §5).

A load-balancer tier fans every incoming request over cache and storage
tiers built on :mod:`repro.apps`; arrivals are open-loop (generation
never blocks on completions), latencies stream into O(1)-memory
quantile sketches (:mod:`repro.stats.streaming`) and long runs can
checkpoint/restore bit-identically (:mod:`repro.sim.checkpoint`).

See ``docs/SERVICE.md`` for the tier-graph spec format, the SLO report
schema and the checkpoint/restore determinism contract.
"""

from repro.service.arrivals import OpenLoopArrivals
from repro.service.emulator import ServiceEmulator
from repro.service.run import resume_service, run_service, service_fingerprint
from repro.service.slo import render_slo_report, slo_report
from repro.service.spec import ServiceSpec, TierSpec

__all__ = [
    "OpenLoopArrivals",
    "ServiceEmulator",
    "ServiceSpec",
    "TierSpec",
    "render_slo_report",
    "resume_service",
    "run_service",
    "service_fingerprint",
    "slo_report",
]
