"""SLO reporting for service runs.

:func:`slo_report` reduces one finished run to a JSON-able report —
response-time percentiles (from the streaming sketches, so exact at any
run length within the documented 1% relative tolerance), goodput,
timeout budget and a per-tier breakdown — and
:func:`render_slo_report` renders it as ASCII text (the HTML form
reuses :func:`repro.telemetry.report.render_html`, the same wrapper the
telemetry reports ship through). Schema documented in
``docs/SERVICE.md``.
"""

from __future__ import annotations

from typing import Dict

#: Report schema version (bump on layout changes).
SLO_SCHEMA = 1


def slo_report(emulator, stats, duration_ns: int) -> Dict:
    """Reduce one finished service run to the SLO report dict."""
    spec = emulator.spec
    request = emulator.request_sketch.summarize()
    p99_ms = request["p99"] / 1e6
    timeouts_per_1k = stats.timeouts_per_1k_flows()
    duration_s = duration_ns / 1e9 if duration_ns > 0 else 0.0
    return {
        "schema": SLO_SCHEMA,
        "spec": spec.to_spec(),
        "requests": {
            "offered": spec.requests,
            "started": emulator.started,
            "completed": emulator.completed,
            "in_flight": len(emulator.live),
            "hedges": emulator.hedges,
        },
        "response_time_ms": {
            key: (request[key] / 1e6 if key != "count" else request[key])
            for key in ("count", "mean", "p50", "p99", "p999", "max")
        },
        "slo": {
            "p99_target_ms": spec.slo_p99_ms,
            "p99_ms": p99_ms,
            "met": bool(p99_ms <= spec.slo_p99_ms),
        },
        "goodput": {
            "requests_per_sec": (
                emulator.completed / duration_s if duration_s else 0.0),
            "fg_bits_per_sec": stats.goodput_bps("fg", duration_ns),
        },
        "timeout_budget": {
            "budget_per_1k_flows": spec.timeout_budget_per_1k,
            "timeouts": stats.timeouts,
            "timeouts_per_1k_flows": timeouts_per_1k,
            "within": bool(timeouts_per_1k <= spec.timeout_budget_per_1k),
        },
        "tiers": {
            name: {
                key: (summary[key] / 1e6 if key != "count" else summary[key])
                for key in ("count", "mean", "p50", "p99", "p999", "max")
            }
            for name, summary in emulator.tier_summaries().items()
        },
        "flows": {
            "total": stats.flow_count(),
            "incomplete": stats.incomplete_flows(),
            "retired": sum(stats.retired_flows.values()),
        },
        "duration_ms": duration_ns / 1e6,
    }


def render_slo_report(report: Dict, width: int = 64) -> str:
    """ASCII rendering of :func:`slo_report` output."""
    lines = []
    bar = "=" * width
    slo = report["slo"]
    budget = report["timeout_budget"]
    requests = report["requests"]
    lines.append(bar)
    lines.append("Service SLO report")
    lines.append(bar)
    lines.append(
        f"requests: {requests['completed']}/{requests['offered']} completed"
        f" ({requests['in_flight']} in flight, {requests['hedges']} hedged)")
    resp = report["response_time_ms"]
    lines.append(
        f"response time ms: p50 {resp['p50']:.3f}  p99 {resp['p99']:.3f}"
        f"  p999 {resp['p999']:.3f}  max {resp['max']:.3f}")
    verdict = "MET" if slo["met"] else "VIOLATED"
    lines.append(
        f"p99 SLO {slo['p99_target_ms']:.3f} ms: {verdict}"
        f" (measured {slo['p99_ms']:.3f} ms)")
    lines.append(
        f"goodput: {report['goodput']['requests_per_sec']:.0f} req/s, "
        f"{report['goodput']['fg_bits_per_sec'] / 1e9:.3f} Gbps fg")
    within = "within" if budget["within"] else "OVER"
    lines.append(
        f"timeout budget: {budget['timeouts_per_1k_flows']:.3f}/1k flows "
        f"({within} budget {budget['budget_per_1k_flows']:.3f}; "
        f"{budget['timeouts']} RTO fires)")
    lines.append("-" * width)
    lines.append(f"{'tier':12s} {'ops':>9s} {'p50 ms':>9s} {'p99 ms':>9s} "
                 f"{'p999 ms':>9s}")
    for name, tier in report["tiers"].items():
        lines.append(
            f"{name:12s} {tier['count']:9d} {tier['p50']:9.3f} "
            f"{tier['p99']:9.3f} {tier['p999']:9.3f}")
    lines.append(bar)
    return "\n".join(lines)
