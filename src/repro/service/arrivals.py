"""Open-loop request arrival generation on the timer wheel.

Open-loop means the generator is clocked purely by its interarrival
process: a request fires when its timer fires, whether or not earlier
requests have completed — the property that lets offered load exceed
service capacity (the regime where tail-latency SLOs break and the
paper's timeout-less claim matters). Contrast
:class:`repro.workload.background.BackgroundTraffic`, which pre-draws
its whole Poisson schedule up front: that is fine for ten thousand
flows but would materialize millions of events for steady-state runs,
so this generator draws each gap lazily and re-arms itself on the
hierarchical timer wheel (PR 3, ``Engine.schedule_timer``) — O(1)
outstanding events however long the run.

Determinism: one :class:`random.Random` seeded via
``derive_seed(seed, "arrivals.<tier>")``, drawn only in timer order, so
the schedule is independent of completions, backend and telemetry.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.sim.rng import derive_seed


class OpenLoopArrivals:
    """Self-rescheduling arrival generator for one front tier."""

    def __init__(
        self,
        engine,
        sink: Callable[[], None],
        total: int,
        rate_rps: float,
        process: str = "poisson",
        sigma: float = 1.0,
        seed: int = 0,
        tier: str = "lb",
        start_ns: int = 0,
    ):
        if total < 1:
            raise ValueError("total must be >= 1")
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.engine = engine
        self.sink = sink
        self.total = total
        self.rate_rps = rate_rps
        self.process = process
        self.sigma = sigma
        self.start_ns = start_ns
        self.generated = 0
        self.rng = random.Random(derive_seed(seed, f"arrivals.{tier}"))
        # Log-normal with the same mean gap as the Poisson process:
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = 1/rate.
        self._mu = math.log(1.0 / rate_rps) - 0.5 * sigma * sigma
        self._armed = False

    def _gap_ns(self) -> int:
        if self.process == "poisson":
            gap_s = self.rng.expovariate(self.rate_rps)
        elif self.process == "lognormal":
            gap_s = self.rng.lognormvariate(self._mu, self.sigma)
        else:
            raise ValueError(f"unknown arrival process {self.process!r}")
        return max(1, int(round(gap_s * 1e9)))

    def schedule(self) -> None:
        """Arm the first arrival (idempotent)."""
        if self._armed or self.generated >= self.total:
            return
        self._armed = True
        delay = max(1, self.start_ns - self.engine.now) + self._gap_ns()
        self.engine.schedule_timer(delay, self._fire)

    def _fire(self) -> None:
        self.generated += 1
        # Re-arm *before* handing the request off: the next arrival
        # must depend only on the interarrival draw, never on what
        # request processing schedules.
        if self.generated < self.total:
            self.engine.schedule_timer(self._gap_ns(), self._fire)
        else:
            self._armed = False
        self.sink()

    @property
    def exhausted(self) -> bool:
        return self.generated >= self.total
