"""Tier-graph specification for the service emulator.

The spec is plain JSON-able data (dicts/lists/scalars) so it can live
in a :class:`~repro.experiments.scenarios.ScenarioConfig` field and
fold into result-cache keys through the canonical encoder unchanged.
``ServiceSpec.from_spec`` / ``to_spec`` round-trip it; see
``docs/SERVICE.md`` for the format reference.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro.workload.distributions import DISTRIBUTIONS

#: Arrival processes the generator understands.
ARRIVAL_PROCESSES = ("poisson", "lognormal")


@dataclass(frozen=True)
class TierSpec:
    """One backend tier the load balancer fans out to."""

    name: str
    #: Number of server endpoints (spread round-robin over the
    #: non-load-balancer hosts; tiers may share hosts at tiny scales).
    servers: int = 2
    #: Shards queried per request (distinct servers, sampled from the
    #: tier's seeded RNG stream). The slowest shard gates the request.
    fanout: int = 1
    #: Reply-size distribution: a name from
    #: :data:`repro.workload.distributions.DISTRIBUTIONS`.
    workload: str = "cache_follower"
    #: Clamp on drawn reply sizes (the published CDFs reach tens of MB;
    #: interactive GETs do not). 0 disables the clamp.
    max_bytes: int = 64_000
    #: Mean server-side service time (exponentially distributed, per
    #: server seeded RNG stream); 0 = reply immediately.
    service_ns: int = 5_000
    #: Hedge a shard op to one extra server if its reply is still
    #: outstanding after this long; None disables hedging.
    hedge_ns: Optional[int] = None

    def validate(self) -> "TierSpec":
        if self.servers < 1:
            raise ValueError(f"tier {self.name!r}: servers must be >= 1")
        if not 1 <= self.fanout <= self.servers:
            raise ValueError(
                f"tier {self.name!r}: fanout must be in [1, servers]")
        if self.workload not in DISTRIBUTIONS:
            raise ValueError(
                f"tier {self.name!r}: unknown workload {self.workload!r} "
                f"(have {sorted(DISTRIBUTIONS)})")
        if self.service_ns < 0 or self.max_bytes < 0:
            raise ValueError(f"tier {self.name!r}: negative size/time")
        if self.hedge_ns is not None and self.hedge_ns <= 0:
            raise ValueError(f"tier {self.name!r}: hedge_ns must be positive")
        return self


@dataclass(frozen=True)
class ServiceSpec:
    """The whole tier graph plus the open-loop arrival process."""

    #: Open-loop requests to generate.
    requests: int = 1000
    #: Mean arrival rate, requests/second.
    rate_rps: float = 10_000.0
    #: Interarrival process: "poisson" (exponential gaps) or
    #: "lognormal" (heavy-tailed gaps, same mean, shape ``sigma``).
    process: str = "poisson"
    #: Log-normal shape parameter (ignored for poisson).
    sigma: float = 1.0
    #: Load-balancer (front) tier: hosts that receive requests and fan
    #: them out. Also names the arrival RNG stream
    #: ``arrivals.<lb_name>``.
    lb_name: str = "lb"
    lb_hosts: int = 1
    #: Backend tiers, queried in parallel per request.
    tiers: Tuple[TierSpec, ...] = field(default_factory=tuple)
    #: p99 response-time SLO (ms) the report grades against.
    slo_p99_ms: float = 4.0
    #: Timeout budget: RTO fires per 1k flows the report tolerates.
    timeout_budget_per_1k: float = 1.0
    #: Retire completed FlowRecords on this period (O(1) stats memory);
    #: 0 disables retirement.
    retire_interval_ns: int = 2_000_000

    def validate(self) -> "ServiceSpec":
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r} "
                f"(have {ARRIVAL_PROCESSES})")
        if self.lb_hosts < 1:
            raise ValueError("lb_hosts must be >= 1")
        if not self.tiers:
            raise ValueError("need at least one backend tier")
        names = [tier.name for tier in self.tiers] + [self.lb_name]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique: {names}")
        for tier in self.tiers:
            tier.validate()
        return self

    @classmethod
    def from_spec(cls, spec) -> "ServiceSpec":
        """Build from the JSON-able dict form (idempotent on instances)."""
        if isinstance(spec, ServiceSpec):
            return spec.validate()
        if not isinstance(spec, dict):
            raise ValueError(f"service spec must be a dict, got {type(spec)}")
        fields = dict(spec)
        tiers = tuple(
            tier if isinstance(tier, TierSpec) else TierSpec(**tier)
            for tier in fields.pop("tiers", ())
        )
        return cls(tiers=tiers, **fields).validate()

    def to_spec(self) -> Dict:
        """Canonical JSON-able form (round-trips through from_spec)."""
        spec = asdict(self)
        spec["tiers"] = [asdict(tier) for tier in self.tiers]
        return spec

    @property
    def total_fanout(self) -> int:
        """Shard ops per request (before hedging)."""
        return sum(tier.fanout for tier in self.tiers)
