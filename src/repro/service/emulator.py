"""The multi-tier service emulator: tier graph + request lifecycle.

One request arrives at a load-balancer host (open-loop, see
:mod:`repro.service.arrivals`), fans out over every backend tier in
parallel — ``fanout`` distinct servers per tier, reply sizes drawn from
the tier's published CDF, an exponential server-side service time —
and completes when the **slowest shard** replies (the fan-out/fan-in
pattern whose tail the paper's timeout-less claim is about). Optional
hedging re-issues a straggling shard op to one extra server after
``hedge_ns``; first reply wins.

Built on :mod:`repro.apps` (``RpcNode``/``KvClient``/``KvServer``):
every shard op is a ``svc_get`` RPC whose request (100 B) travels
lb→server and whose sized reply travels server→lb, each as its own
flow on the simulated fabric — so switch buffers, TLT coloring, PFC
and RTOs shape service latency exactly as they shape FCTs.

Scale discipline for million-request runs:

- latencies stream into :class:`repro.stats.streaming.StreamingQuantile`
  sketches (O(1) memory), never into per-sample lists;
- completed :class:`FlowRecord`\\ s retire periodically
  (:meth:`NetStats.retire_flow`), keeping the flows dict O(live);
- every callback on the engine heap is a bound method or a callable
  class — no closures — so a mid-run checkpoint
  (:mod:`repro.sim.checkpoint`) can pickle the whole graph.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.apps.kvstore import REPLY_OK_BYTES, REQUEST_BYTES, KvClient, KvServer
from repro.apps.rpc import RpcNode
from repro.service.spec import ServiceSpec
from repro.sim.rng import derive_seed
from repro.stats.streaming import StreamingQuantile
from repro.workload.distributions import DISTRIBUTIONS


class ServiceServer(KvServer):
    """A backend tier server: replies to ``svc_get`` after a drawn
    service time, with the reply size the client requested."""

    def __init__(self, node: RpcNode, tier: str, service_ns: int,
                 rng: random.Random):
        super().__init__(node)
        self.tier = tier
        self.service_ns = service_ns
        self.rng = rng
        self.requests_served = 0

    def _handle(self, src: int, size: int, meta: Dict) -> None:
        if meta.get("op") != "svc_get":
            super()._handle(src, size, meta)
            return
        self.requests_served += 1
        delay = 0
        if self.service_ns > 0:
            delay = int(round(self.rng.expovariate(1.0 / self.service_ns)))
        self._reply(src, max(int(meta["reply_size"]), REPLY_OK_BYTES), meta,
                    delay_ns=delay)


class ServiceClient(KvClient):
    """A load-balancer-side client for one (lb, tier, server) edge.

    Differs from :class:`KvClient` in two ways required at service
    scale: per-op latencies stream into the emulator's tier sketch
    instead of an unbounded ``response_times`` list, and ``fetch``
    carries the reply size so the server needs no pre-populated store.
    """

    def __init__(self, node: RpcNode, server: ServiceServer,
                 emulator: "ServiceEmulator", tier_idx: int):
        super().__init__(node, server)
        self.emulator = emulator
        self.tier_idx = tier_idx

    def fetch(self, key: str, reply_size: int, on_reply) -> int:
        op_id = self._next_op
        self._next_op += 1
        self.pending[op_id] = self.engine.now
        self._callbacks[op_id] = on_reply
        meta = {
            "op": "svc_get",
            "key": key,
            "reply_size": reply_size,
            "op_id": op_id,
            "client_tag": self.tag,
        }
        self.node.send(self.server.node, REQUEST_BYTES, meta=meta)
        return op_id

    def _on_reply(self, src: int, size: int, meta: Dict) -> None:
        if meta.get("op") != "reply" or meta.get("client_tag") != self.tag:
            return
        op_id = meta["op_id"]
        issued = self.pending.pop(op_id, None)
        if issued is None:
            return
        self.emulator.on_shard_latency(self.tier_idx, self.engine.now - issued)
        callback = self._callbacks.pop(op_id, None)
        if callback is not None:
            callback(op_id)


class ServiceRequest:
    """Fan-out/fan-in state of one in-flight request."""

    __slots__ = ("rid", "start_ns", "lb_index", "outstanding", "done",
                 "servers", "sizes")

    def __init__(self, rid: int, start_ns: int, lb_index: int):
        self.rid = rid
        self.start_ns = start_ns
        self.lb_index = lb_index
        self.outstanding = 0
        #: (tier_idx, slot) -> first reply seen (hedge losers ignored).
        self.done: Dict[Tuple[int, int], bool] = {}
        #: (tier_idx, slot) -> primary server index (hedges avoid it).
        self.servers: Dict[Tuple[int, int], int] = {}
        #: (tier_idx, slot) -> drawn reply size (hedges reuse it).
        self.sizes: Dict[Tuple[int, int], int] = {}


class _ShardReply:
    """Picklable per-shard-op completion callback (no closures on the
    engine heap — the checkpoint contract)."""

    __slots__ = ("emulator", "rid", "tier_idx", "slot")

    def __init__(self, emulator: "ServiceEmulator", rid: int, tier_idx: int,
                 slot: int):
        self.emulator = emulator
        self.rid = rid
        self.tier_idx = tier_idx
        self.slot = slot

    def __call__(self, op_id: int) -> None:
        self.emulator._on_shard_reply(self.rid, self.tier_idx, self.slot)


class ServiceEmulator:
    """Tier graph + request lifecycle on an existing network."""

    def __init__(self, net, spec, transport: str = "dctcp", config=None,
                 tlt=None, seed: int = 1):
        from repro.service.arrivals import OpenLoopArrivals

        self.net = net
        self.engine = net.engine
        self.spec = ServiceSpec.from_spec(spec)
        self.seed = seed
        spec = self.spec
        num_hosts = len(net.hosts)
        if num_hosts < spec.lb_hosts + 1:
            raise ValueError(
                f"service spec needs at least {spec.lb_hosts + 1} hosts "
                f"(lb + servers); topology has {num_hosts}")

        def node(host_id: int) -> RpcNode:
            return RpcNode(net, host_id, transport, config, tlt)

        #: Load-balancer endpoints; requests round-robin over them.
        self.lb_nodes: List[RpcNode] = [node(h) for h in range(spec.lb_hosts)]
        # Backend servers spread round-robin over the remaining hosts
        # (tiers interleave; they may share hosts at tiny scales).
        backend_hosts = list(range(spec.lb_hosts, num_hosts))
        self.servers: List[List[ServiceServer]] = []
        assigned = 0
        for tier in spec.tiers:
            tier_servers = []
            for i in range(tier.servers):
                host = backend_hosts[assigned % len(backend_hosts)]
                assigned += 1
                rng = random.Random(derive_seed(seed, f"service.{tier.name}.{i}"))
                tier_servers.append(
                    ServiceServer(node(host), tier.name, tier.service_ns, rng))
            self.servers.append(tier_servers)
        #: (lb_index, tier_idx, server_idx) -> client.
        self.clients: Dict[Tuple[int, int, int], ServiceClient] = {}
        for lb_index, lb_node in enumerate(self.lb_nodes):
            for tier_idx, tier_servers in enumerate(self.servers):
                for server_idx, server in enumerate(tier_servers):
                    self.clients[(lb_index, tier_idx, server_idx)] = (
                        ServiceClient(lb_node, server, self, tier_idx))

        # Seeded decision streams, one per tier per purpose.
        self._pick_rngs = [
            random.Random(derive_seed(seed, f"fanout.{tier.name}"))
            for tier in spec.tiers]
        self._size_rngs = [
            random.Random(derive_seed(seed, f"size.{tier.name}"))
            for tier in spec.tiers]
        self._hedge_rngs = [
            random.Random(derive_seed(seed, f"hedge.{tier.name}"))
            for tier in spec.tiers]
        self._dists = [DISTRIBUTIONS[tier.workload] for tier in spec.tiers]

        # Streaming latency estimators (O(1) memory at any run length).
        self.request_sketch = StreamingQuantile()
        self.tier_sketches: List[StreamingQuantile] = [
            StreamingQuantile() for _ in spec.tiers]

        self.arrivals = OpenLoopArrivals(
            self.engine, self._start_request, spec.requests, spec.rate_rps,
            process=spec.process, sigma=spec.sigma, seed=seed,
            tier=spec.lb_name)
        self.live: Dict[int, ServiceRequest] = {}
        self.started = 0
        self.completed = 0
        self.hedges = 0
        self._retire_armed = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm the arrival process (and the flow retirer)."""
        self.arrivals.schedule()
        if self.spec.retire_interval_ns > 0 and not self._retire_armed:
            self._retire_armed = True
            self.engine.schedule_timer(self.spec.retire_interval_ns,
                                       self._retire_tick)

    def _start_request(self) -> None:
        rid = self.started
        self.started += 1
        request = ServiceRequest(rid, self.engine.now,
                                 rid % len(self.lb_nodes))
        self.live[rid] = request
        for tier_idx, tier in enumerate(self.spec.tiers):
            picked = self._pick_rngs[tier_idx].sample(
                range(tier.servers), tier.fanout)
            for slot, server_idx in enumerate(picked):
                size = self._dists[tier_idx].sample(self._size_rngs[tier_idx])
                if tier.max_bytes:
                    size = min(size, tier.max_bytes)
                key = (tier_idx, slot)
                request.servers[key] = server_idx
                request.sizes[key] = size
                request.done[key] = False
                request.outstanding += 1
                self._issue_shard(request, tier_idx, slot, server_idx)
                if tier.hedge_ns is not None and tier.servers > 1:
                    self.engine.schedule_timer(
                        tier.hedge_ns, self._hedge_check, rid, tier_idx, slot)

    def _issue_shard(self, request: ServiceRequest, tier_idx: int, slot: int,
                     server_idx: int) -> None:
        client = self.clients[(request.lb_index, tier_idx, server_idx)]
        client.fetch(
            f"r{request.rid}.{slot}",
            request.sizes[(tier_idx, slot)],
            _ShardReply(self, request.rid, tier_idx, slot),
        )

    def _hedge_check(self, rid: int, tier_idx: int, slot: int) -> None:
        request = self.live.get(rid)
        if request is None or request.done[(tier_idx, slot)]:
            return
        tier = self.spec.tiers[tier_idx]
        primary = request.servers[(tier_idx, slot)]
        # Any server but the straggling primary, from the tier's
        # dedicated hedge stream.
        alt = self._hedge_rngs[tier_idx].randrange(tier.servers - 1)
        if alt >= primary:
            alt += 1
        self.hedges += 1
        self._issue_shard(request, tier_idx, slot, alt)

    def _on_shard_reply(self, rid: int, tier_idx: int, slot: int) -> None:
        request = self.live.get(rid)
        if request is None or request.done[(tier_idx, slot)]:
            return  # hedge loser: latency already sampled by the client
        request.done[(tier_idx, slot)] = True
        request.outstanding -= 1
        if request.outstanding == 0:
            self.request_sketch.add(self.engine.now - request.start_ns)
            self.completed += 1
            del self.live[rid]

    def on_shard_latency(self, tier_idx: int, latency_ns: int) -> None:
        """Every shard-op reply (hedge winners *and* losers) lands in
        the tier's sketch: it measures per-op server+network latency."""
        self.tier_sketches[tier_idx].add(latency_ns)

    def _retire_tick(self) -> None:
        stats = self.net.stats
        retire = stats.retire_flow
        for flow_id, record in list(stats.flows.items()):
            if record.end_rx_ns is not None and record.end_ack_ns is not None:
                retire(flow_id)
        if self.completed < self.spec.requests:
            self.engine.schedule_timer(self.spec.retire_interval_ns,
                                       self._retire_tick)
        else:
            self._retire_armed = False

    # -- state -------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.completed >= self.spec.requests

    def active(self) -> bool:
        """Keep-sampling predicate for telemetry (picklable)."""
        return not self.finished

    def fingerprint(self) -> Dict:
        """Bit-exact digest of the emulator's observable state — the
        checkpoint/restore determinism gate compares these with ``==``."""
        return {
            "started": self.started,
            "completed": self.completed,
            "hedges": self.hedges,
            "live": sorted(self.live),
            "request": self.request_sketch.to_state(),
            "tiers": {
                tier.name: sketch.to_state()
                for tier, sketch in zip(self.spec.tiers, self.tier_sketches)
            },
        }

    def tier_summaries(self) -> Dict[str, Dict]:
        return {
            tier.name: sketch.summarize()
            for tier, sketch in zip(self.spec.tiers, self.tier_sketches)
        }


# Re-exported for callers that want the wire constants.
__all__ = ["ServiceEmulator", "ServiceServer", "ServiceClient",
           "ServiceRequest", "REQUEST_BYTES", "REPLY_OK_BYTES"]
