"""Run (and resume) a service scenario end-to-end.

:func:`run_service` is the service-mode counterpart of
:func:`repro.experiments.scenarios.run_scenario` (which dispatches here
when ``ScenarioConfig.service`` is set): build the fabric, attach the
emulator, drive the engine until every request completes, and return a
:class:`ScenarioResult` whose ``service`` field carries the emulator
for SLO reduction.

Checkpointing: with ``ScenarioConfig.checkpoint`` resolved (or
``TLT_CHECKPOINT`` set), the run pauses at a quiescent sim-time
boundary — ``at_ns``, defaulting to the midpoint of the arrival span —
pickles the whole simulation (:mod:`repro.sim.checkpoint`) and
continues; :func:`resume_service` picks the file up and runs to
completion. The resumed run's :func:`service_fingerprint` is
**bit-for-bit equal** to the uninterrupted run's — the gate
``tools/check_service_checkpoint.py`` and ``tests/test_checkpoint.py``
enforce. Telemetry (open file handles) and fault schedules
(interceptor closures) cannot pickle and are refused up front when a
checkpoint is requested.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, Optional

from repro.audit import AuditConfig, AuditError, Auditor
from repro.experiments.perf import TALLY
from repro.service.emulator import ServiceEmulator
from repro.service.slo import render_slo_report, slo_report
from repro.service.spec import ServiceSpec
from repro.sim import checkpoint as ckpt
from repro.sim.units import MILLIS

#: Engine-drive window between completion checks.
_WINDOW_NS = 10 * MILLIS


def _scenario_key(config) -> str:
    """The run's identity fingerprint (checkpoint/telemetry/shards
    stripped — the cache-key exclusion rule, see docs/API.md)."""
    from repro.experiments.parallel import Job

    return Job(0, config, config.seed).cache_key()


def _expected_span_ns(spec: ServiceSpec) -> int:
    return int(spec.requests / spec.rate_rps * 1e9)


def _drive(net, emulator, hard_cap_ns: int,
           checkpoint_at_ns: Optional[int] = None,
           checkpoint_path: Optional[str] = None,
           checkpoint_key: Optional[str] = None,
           extra_state: Optional[Dict] = None) -> None:
    """Run the engine until the emulator finishes (or the cap trips),
    optionally saving one checkpoint at ``checkpoint_at_ns``."""
    engine = net.engine
    gc.collect()
    gc.freeze()
    try:
        if (checkpoint_path is not None and checkpoint_at_ns is not None
                and engine.now < checkpoint_at_ns and not emulator.finished):
            engine.run(until=min(checkpoint_at_ns, hard_cap_ns))
            ckpt.save(checkpoint_path, net, extra=extra_state,
                      key=checkpoint_key)
        while (not emulator.finished and engine.pending
               and engine.now < hard_cap_ns):
            # Window boundaries are absolute multiples of _WINDOW_NS
            # (not now + window): a restored run resumes mid-window at
            # the checkpoint time, and relative windows would make it
            # sample the finished-predicate at different boundaries
            # than the uninterrupted run — stopping at a different sim
            # time and breaking fingerprint equality.
            boundary = (engine.now // _WINDOW_NS + 1) * _WINDOW_NS
            engine.run(until=min(boundary, hard_cap_ns))
    finally:
        gc.unfreeze()


def _finish(config, net, emulator, auditor, telemetry) -> "ScenarioResult":
    from repro.experiments.scenarios import ScenarioResult

    try:
        if auditor is not None:
            auditor.final_check()
    except AuditError as error:
        if telemetry is not None:
            telemetry.on_audit_error(error)
        raise
    finally:
        if telemetry is not None:
            telemetry.finalize()
    result = ScenarioResult(
        config, net, net.engine.now, [], auditor, None, telemetry,
        service=emulator,
    )
    if telemetry is not None:
        _write_slo_artifacts(telemetry, result)
    return result


def _write_slo_artifacts(telemetry, result) -> None:
    """SLO report through the existing report path: JSON + ASCII +
    HTML next to the run's telemetry streams."""
    import json

    from repro.telemetry.report import render_html

    report = slo_report(result.service, result.net.stats, result.duration_ns)
    out_dir = telemetry.config.out_dir
    base = os.path.join(out_dir, f"slo_{telemetry.run_id}")
    with open(f"{base}.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    text = render_slo_report(report)
    with open(f"{base}.txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    with open(f"{base}.html", "w", encoding="utf-8") as handle:
        handle.write(render_html(text, title="TLT service SLO report"))


def run_service(config) -> "ScenarioResult":
    """Build, run and measure one service scenario."""
    from repro.experiments.scenarios import (
        build_network,
        make_transport_config,
    )
    from repro.faults.schedule import FaultSchedule

    spec = ServiceSpec.from_spec(config.service)
    checkpoint_spec = config.resolved_checkpoint()
    fault_spec = config.resolved_faults()
    telemetry_spec = config.resolved_telemetry()
    if checkpoint_spec is not None and telemetry_spec is not None:
        raise ckpt.CheckpointError(
            "checkpointing a telemetry-attached run is unsupported: the "
            "JSONL stream holds open file handles that cannot pickle")
    if checkpoint_spec is not None and fault_spec is not None:
        raise ckpt.CheckpointError(
            "checkpointing a faulted run is unsupported: fault "
            "interceptors are closures that cannot pickle")

    wall_started = time.perf_counter()
    net = build_network(config)
    auditor = None
    if config.audit_enabled:
        auditor = Auditor(net, AuditConfig(
            dump_path=os.environ.get("TLT_AUDIT_DUMP") or None))
        auditor.install()
    fault_controller = None
    if fault_spec is not None:
        fault_controller = FaultSchedule.from_spec(fault_spec).install(net)

    tconfig = make_transport_config(config)
    tlt_cfg = config.tlt_config if config.tlt else None
    emulator = ServiceEmulator(net, spec, config.transport, tconfig, tlt_cfg,
                               seed=config.seed)
    emulator.start()

    telemetry = None
    if telemetry_spec is not None:
        from repro.experiments.scenarios import _telemetry_run_id
        from repro.telemetry import Telemetry, TelemetryConfig
        from repro.telemetry.samplers import ServiceLatencySampler

        telemetry_config = TelemetryConfig.from_spec(telemetry_spec)
        telemetry = Telemetry(
            net, telemetry_config, scenario=config,
            run_id=telemetry_config.run_id or _telemetry_run_id(config))
        telemetry.install(active=emulator.active)
        telemetry.samplers.append(ServiceLatencySampler(
            emulator, telemetry_config.interval_ns, emit=telemetry.emit,
            active=emulator.active))
        if fault_controller is not None:
            telemetry.attach_faults(fault_controller)

    span = _expected_span_ns(spec)
    hard_cap = config.hard_cap_ns or (3 * span + 10 * config.drain_ns)
    checkpoint_path = checkpoint_key = None
    checkpoint_at = None
    if checkpoint_spec is not None:
        checkpoint_path = ckpt.default_path(checkpoint_spec["dir"])
        checkpoint_key = _scenario_key(config)
        checkpoint_at = checkpoint_spec.get("at_ns") or span // 2
    started_events = net.engine.events_processed
    try:
        _drive(net, emulator, hard_cap,
               checkpoint_at_ns=checkpoint_at,
               checkpoint_path=checkpoint_path,
               checkpoint_key=checkpoint_key,
               extra_state={"emulator": emulator, "config": config,
                            "auditor": auditor,
                            "hard_cap_ns": hard_cap})
    except AuditError as error:
        if telemetry is not None:
            telemetry.on_audit_error(error)
            telemetry.finalize()
        raise
    TALLY.add(net.engine.events_processed - started_events,
              time.perf_counter() - wall_started)
    return _finish(config, net, emulator, auditor, telemetry)


def resume_service(path: str, expect_key: Optional[str] = None) -> "ScenarioResult":
    """Load a service checkpoint and run it to completion.

    The returned result's :func:`service_fingerprint` equals the
    uninterrupted run's bit-for-bit (the determinism gate).
    """
    payload = ckpt.load(path, expect_key=expect_key)
    net = payload["state"]["net"]
    extra = payload["state"]["extra"]
    emulator = extra["emulator"]
    config = extra["config"]
    auditor = extra.get("auditor")
    hard_cap = extra["hard_cap_ns"]
    wall_started = time.perf_counter()
    started_events = net.engine.events_processed
    _drive(net, emulator, hard_cap)
    TALLY.add(net.engine.events_processed - started_events,
              time.perf_counter() - wall_started)
    return _finish(config, net, emulator, auditor, None)


def service_fingerprint(result) -> Dict:
    """Bit-exact digest of a finished service run, compared with ``==``
    by the checkpoint/restore determinism gate. Covers the engine
    (event count, final clock), the transport layer (timeouts, drops)
    and the emulator (request counts + full sketch states)."""
    stats = result.net.stats
    return {
        "events": result.net.engine.events_processed,
        "now": result.net.engine.now,
        "timeouts": stats.timeouts,
        "fast_retransmits": stats.fast_retransmits,
        "drops": stats.drops_green + stats.drops_red,
        "ecn_marks": stats.ecn_marks,
        "flows": stats.flow_count(),
        "emulator": result.service.fingerprint(),
    }
