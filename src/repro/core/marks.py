"""Mark → color ACL.

On the testbed TLT writes the DSCP field and the switch ACL maps DSCP
values to colors (§6, 'Switch configuration'). In the simulator marks
travel on the packet and this function is the ACL: anything important
(data marked Important/Important Clock, and every control packet) is
green; plain data is red (unimportant, subject to color-aware drop).
"""

from __future__ import annotations

from repro.net.packet import Color, Packet, TltMark

_GREEN_MARKS = frozenset(
    {
        TltMark.IMPORTANT_DATA,
        TltMark.IMPORTANT_ECHO,
        TltMark.IMPORTANT_CLOCK_DATA,
        TltMark.IMPORTANT_CLOCK_ECHO,
        TltMark.CONTROL,
    }
)


def color_for_mark(mark: TltMark) -> Color:
    """The network-layer color a mark maps to."""
    return Color.GREEN if mark in _GREEN_MARKS else Color.RED


def apply_acl(packet: Packet) -> None:
    """Stamp the packet's color from its TLT mark."""
    # color_for_mark, open-coded: this runs once per TLT transmission.
    packet.color = Color.GREEN if packet.mark in _GREEN_MARKS else Color.RED
