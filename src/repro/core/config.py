"""TLT configuration."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class ClockingPolicy(Enum):
    """Important ACK-clocking payload policy (§5.1 / Appendix B Fig 17).

    - ``ADAPTIVE`` — the paper's design: 1 MSS of lost data when the
      Important Echo indicated a loss, 1 byte otherwise.
    - ``ALWAYS_1B`` — ablation: always 1 byte (slow recovery).
    - ``ALWAYS_MTU`` — ablation: always a full segment (bandwidth-heavy).
    """

    ADAPTIVE = "adaptive"
    ALWAYS_1B = "1b"
    ALWAYS_MTU = "mtu"


@dataclass
class TltConfig:
    """Host-side TLT knobs.

    ``periodic_n`` enables the optional every-N-packets marking for
    rate-based transports (§5.2); the paper uses N=96 for vanilla DCQCN
    (the topology's largest fan-out degree) and notes insensitivity to N.
    """

    clocking: ClockingPolicy = ClockingPolicy.ADAPTIVE
    periodic_n: Optional[int] = 96
