"""TLT for window-based transports (§5.1, Algorithm 1).

The controller keeps **exactly one important packet in flight** per
flow:

- the flow starts in the Important state, so the *last* packet of the
  initial window is sent as Important Data;
- the receiver echoes an Important Data packet with an Important Echo
  ACK (sent immediately — the base transports ACK every packet);
- receiving an (Important/Important Clock) Echo re-arms the Important
  state, and the next burst's tail packet is marked Important Data;
- if an ACK leaves the Important state armed but the window/buffer does
  not permit any transmission, the controller performs *important
  ACK-clocking* — injecting an Important Clock Data packet regardless
  of window limits (the switch has reserved room for green packets);
- an Important Clock Echo whose ACK number does not advance ``snd_una``
  is dropped at the TLT layer so it cannot feed a duplicate ACK to
  congestion control (Appendix A).

Echo-based loss detection: an Important Echo acknowledges the important
packet, so everything transmitted before it that is still unSACKed must
have been dropped; those segments are marked lost immediately, giving
the "guaranteed fast loss detection" property of §5.1.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.core.config import ClockingPolicy, TltConfig
from repro.core.marks import _GREEN_MARKS, apply_acl
from repro.net.packet import Color, Packet, TltMark
from repro.stats.collector import NetStats
from repro.transport.base import ByteStreamReceiver, ByteStreamSender


class _SendState(Enum):
    IDLE = 0
    IMPORTANT = 1


class _RecvState(Enum):
    IDLE = 0
    IMPORTANT = 1
    IMPORTANT_CLOCK = 2


class TltWindowSender:
    """Sender-side TLT controller; attach via :func:`attach_window_tlt`."""

    def __init__(self, sender: ByteStreamSender, config: TltConfig, stats: NetStats):
        self.sender = sender
        self.config = config
        self.stats = stats
        self.state = _SendState.IMPORTANT  # mark the initial window's tail
        self._pending_echo_ts: Optional[int] = None
        sender.tlt = self

    # -- transmit-side hooks -----------------------------------------------------

    def mark_data(self, packet: Packet, last_allowed: bool) -> None:
        """Mark a regular data packet; called for every transmission."""
        if self.state is _SendState.IMPORTANT and last_allowed:
            packet.mark = TltMark.IMPORTANT_DATA
            self.state = _SendState.IDLE
        # apply_acl + _count, inlined: once per data transmission.
        stats = self.stats
        if packet.mark in _GREEN_MARKS:
            packet.color = Color.GREEN
            stats.green_data_packets += 1
            stats.green_data_bytes += packet.payload
        else:
            packet.color = Color.RED
            stats.red_data_packets += 1
            stats.red_data_bytes += packet.payload

    def mark_clock_data(self, packet: Packet) -> None:
        """Mark an important-ACK-clocking packet."""
        packet.mark = TltMark.IMPORTANT_CLOCK_DATA
        self.state = _SendState.IDLE
        apply_acl(packet)
        self._count(packet)
        self.stats.clocking_packets += 1
        self.stats.clocking_bytes += packet.payload

    def _count(self, packet: Packet) -> None:
        if packet.color == Color.GREEN:
            self.stats.green_data_packets += 1
            self.stats.green_data_bytes += packet.payload
        else:
            self.stats.red_data_packets += 1
            self.stats.red_data_bytes += packet.payload

    # -- receive-side hooks -----------------------------------------------------

    def on_ack(self, packet: Packet) -> bool:
        """First look at an incoming ACK. False ⇒ drop at the TLT layer."""
        if packet.mark == TltMark.IMPORTANT_ECHO:
            self.state = _SendState.IMPORTANT
            # The echo's timestamp is the important packet's send time:
            # everything sent up to then and still outstanding is lost
            # (FIFO paths — anything older must have arrived earlier).
            self._pending_echo_ts = packet.ts_echo
        elif packet.mark == TltMark.IMPORTANT_CLOCK_ECHO:
            self.state = _SendState.IMPORTANT
            if packet.ack <= self.sender.snd_una:
                # Suppress the duplicate ACK (Appendix A) — but still run
                # echo-based loss detection at the TLT layer, otherwise a
                # dropped retransmission is never re-detected and recovery
                # degenerates into the 1-byte-per-RTT crawl of Fig 3(b).
                self.sender.mark_lost_sent_before(packet.ts_echo)
                self.sender.try_send()
                self.after_ack()
                return False
            self._pending_echo_ts = packet.ts_echo
        return True

    def on_ack_post(self, packet: Packet) -> None:
        """Runs after cumulative ACK/SACK were applied, before recovery
        decisions — performs echo-based loss detection."""
        if self._pending_echo_ts is None:
            return
        boundary = self._pending_echo_ts
        self._pending_echo_ts = None
        self.sender.mark_lost_sent_before(boundary)

    def after_ack(self) -> None:
        """Runs after the transport finished its send attempts: if the
        Important state was not consumed, inject a clocking packet."""
        sender = self.sender
        if self.state is not _SendState.IMPORTANT:
            return
        if sender.completed or sender.is_all_acked():
            return  # nothing left to protect
        self._clock()

    # -- clocking ------------------------------------------------------------------

    def _clock(self) -> None:
        sender = self.sender
        policy = self.config.clocking
        loss = sender.has_unrepaired_loss()
        if policy is ClockingPolicy.ALWAYS_MTU or (
            policy is ClockingPolicy.ADAPTIVE and loss
        ):
            # Retransmit 1 MSS of (lost) data to speed up recovery.
            sender.clock_retransmit()
        else:
            # Minimal-footprint 1-byte probe of the first unacked byte.
            sender.clock_one_byte()


class TltWindowReceiver:
    """Receiver-side TLT controller: generates the Echo marks."""

    def __init__(self, receiver: ByteStreamReceiver, stats: NetStats):
        self.receiver = receiver
        self.stats = stats
        self.state = _RecvState.IDLE
        receiver.tlt_rx = self

    def on_data(self, packet: Packet) -> None:
        if packet.mark == TltMark.IMPORTANT_DATA:
            self.state = _RecvState.IMPORTANT
        elif packet.mark == TltMark.IMPORTANT_CLOCK_DATA:
            self.state = _RecvState.IMPORTANT_CLOCK

    def mark_ack(self, ack: Packet) -> None:
        if self.state is _RecvState.IMPORTANT:
            ack.mark = TltMark.IMPORTANT_ECHO
            self.state = _RecvState.IDLE
        elif self.state is _RecvState.IMPORTANT_CLOCK:
            ack.mark = TltMark.IMPORTANT_CLOCK_ECHO
            self.state = _RecvState.IDLE
        apply_acl(ack)


def attach_window_tlt(
    sender: ByteStreamSender,
    receiver: ByteStreamReceiver,
    config: Optional[TltConfig] = None,
    stats: Optional[NetStats] = None,
) -> TltWindowSender:
    """Wire TLT onto a window-based sender/receiver pair."""
    config = config or TltConfig()
    stats = stats or sender.stats
    controller = TltWindowSender(sender, config, stats)
    TltWindowReceiver(receiver, stats)
    return controller
