"""TLT — Timeout-Less Transport (the paper's contribution).

- :mod:`repro.core.marks` — mark→color ACL (the DSCP mapping of §6).
- :mod:`repro.core.config` — :class:`TltConfig`.
- :mod:`repro.core.window` — TLT for window-based transports
  (Algorithm 1: Important Data/Echo, Important Clock Data/Echo,
  adaptive important ACK-clocking).
- :mod:`repro.core.rate` — TLT for rate-based transports (last-packet,
  periodic-N and retransmission-round marking, §5.2).
"""

from repro.core.config import ClockingPolicy, TltConfig
from repro.core.marks import color_for_mark
from repro.core.window import TltWindowReceiver, TltWindowSender, attach_window_tlt

__all__ = [
    "ClockingPolicy",
    "TltConfig",
    "color_for_mark",
    "TltWindowReceiver",
    "TltWindowSender",
    "attach_window_tlt",
]
