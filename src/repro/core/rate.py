"""TLT for rate-based transports (§5.2).

Rate-based transports transmit continuously, so there is no ACK clock
to protect. Instead TLT marks as important:

1. the **last packet of the message** — as long as it arrives, the
   receiver can detect any earlier gap and NACK immediately;
2. optionally **every N-th packet** of long flows (timely detection
   when a long run of unimportant packets is lost; the paper sets N to
   the fabric's maximum fan-out, 96);
3. the **first and last packet of every retransmission round** — the
   first retransmitted packet is the special case of Fig 4: if it is
   lost again the receiver's repeated NACK is indistinguishable from
   the first one and only a timeout would recover.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.config import TltConfig
from repro.core.marks import apply_acl
from repro.net.packet import Color, Packet, TltMark
from repro.stats.collector import NetStats


class TltRateSender:
    """Sender-side rate-based TLT controller."""

    def __init__(self, sender, config: TltConfig, stats: NetStats):
        self.sender = sender
        self.config = config
        self.stats = stats
        self.round_edges: Set[int] = set()
        sender.tlt_rate = self

    def mark_data(self, packet: Packet, psn: int, is_retx: bool) -> None:
        """Decide the mark for an outgoing data packet."""
        important = False
        if psn == self.sender.npkts - 1:
            important = True  # last packet of the message
        elif psn in self.round_edges:
            important = True  # edge of a retransmission round
            self.round_edges.discard(psn)
        elif self.config.periodic_n and (psn + 1) % self.config.periodic_n == 0:
            important = True  # periodic marking for long flows
        if important:
            packet.mark = TltMark.IMPORTANT_DATA
        apply_acl(packet)
        if packet.color == Color.GREEN:
            self.stats.green_data_packets += 1
            self.stats.green_data_bytes += packet.payload
        else:
            self.stats.red_data_packets += 1
            self.stats.red_data_bytes += packet.payload

    def on_retx_round(self, first_psn: int, last_psn: int) -> None:
        """A retransmission round starts: protect its first and last packet."""
        self.round_edges.add(first_psn)
        self.round_edges.add(last_psn)


def attach_rate_tlt(
    sender,
    receiver,
    config: Optional[TltConfig] = None,
    stats: Optional[NetStats] = None,
) -> TltRateSender:
    """Wire rate-based TLT onto a RoCE sender (receiver needs no state:
    its ACKs/NACKs/CNPs are control packets, green by construction)."""
    config = config or TltConfig()
    stats = stats or sender.stats
    return TltRateSender(sender, config, stats)
