"""repro — a reproduction of TLT (Timeout-Less Transport), EuroSys 2021.

The package provides:

- ``repro.sim`` — a deterministic discrete-event simulation engine.
- ``repro.net`` — packets, links, NICs, routing and topology builders.
- ``repro.switchsim`` — shared-buffer switches with dynamic thresholds,
  color-aware dropping, ECN marking and Priority-based Flow Control.
- ``repro.transport`` — TCP NewReno, DCTCP, TLP, DCQCN, DCQCN+SACK, IRN
  and HPCC implemented from scratch on the simulator.
- ``repro.core`` — TLT itself: the host-side important-packet selection
  for window- and rate-based transports, and the mark→color ACL.
- ``repro.workload`` — background (Poisson) and foreground (incast)
  traffic generators over published datacenter flow-size distributions.
- ``repro.apps`` — an RPC / key-value-store emulation used by the
  application-level benchmarks.
- ``repro.experiments`` — one module per figure/table of the paper's
  evaluation, each regenerating the corresponding rows/series.

Quickstart::

    from repro.experiments.scenarios import ScenarioConfig, run_scenario

    cfg = ScenarioConfig(transport="dctcp", tlt=True)
    result = run_scenario(cfg)
    print(result.fct_summary())
"""

from repro.version import __version__

__all__ = ["__version__"]
