"""The paper's application benchmark pipeline (§7.3, Fig 12).

One HTTP client fans requests over N web servers; each request makes
its web server issue a 32 kB SET to the cache (Redis) node — the
fan-in from all web servers to the one cache node is the incast the
benchmark stresses — and reply to the client once the SET is
acknowledged. The client-perceived response time per request is the
reported metric.

Host layout on a star topology: host 0 = client, hosts 1..N = web
servers, host N+1 = cache node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.apps.kvstore import KvClient, KvServer
from repro.apps.rpc import RpcNode
from repro.core.config import TltConfig
from repro.net.topology import Network
from repro.stats.percentile import summarize
from repro.transport.base import TransportConfig

REQUEST_BYTES = 200
RESPONSE_BYTES = 500


@dataclass
class WebTierResult:
    """Client-perceived response times of one run."""

    response_times_ns: List[int] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return summarize(self.response_times_ns)

    def p99_ms(self) -> float:
        return self.summary()["p99"] / 1e6

    def max_ms(self) -> float:
        return self.summary()["max"] / 1e6


class WebTier:
    """Client → web servers → cache pipeline on an existing network."""

    def __init__(
        self,
        net: Network,
        transport: str = "dctcp",
        config: Optional[TransportConfig] = None,
        tlt: Optional[TltConfig] = None,
        num_web_servers: int = 8,
        value_size: int = 32_000,
    ):
        if len(net.hosts) < num_web_servers + 2:
            raise ValueError("need client + web servers + cache hosts")
        self.net = net
        self.value_size = value_size
        self.result = WebTierResult()
        self._inflight: Dict[int, int] = {}  # request id -> issue time
        self._next_request = 0

        def node(host_id: int) -> RpcNode:
            return RpcNode(net, host_id, transport, config, tlt)

        self.client = node(0)
        self.web_nodes = [node(i + 1) for i in range(num_web_servers)]
        self.cache = KvServer(node(num_web_servers + 1))
        self.kv_clients = [KvClient(n, self.cache) for n in self.web_nodes]

        self.client.on_message(self._on_response)
        for web_node, kv in zip(self.web_nodes, self.kv_clients):
            web_node.on_message(self._make_web_handler(web_node, kv))

    # -- web server behaviour ---------------------------------------------------

    def _make_web_handler(self, web_node: RpcNode, kv: KvClient):
        def handle(src: int, size: int, meta: Dict[str, Any]) -> None:
            if meta.get("op") != "http_req":
                return
            request_id = meta["request_id"]

            def replied(op_id: int) -> None:
                web_node.send(
                    self.client,
                    RESPONSE_BYTES,
                    meta={"op": "http_resp", "request_id": request_id},
                )

            kv.set(f"req-{request_id}", self.value_size, on_reply=replied)

        return handle

    def _on_response(self, src: int, size: int, meta: Dict[str, Any]) -> None:
        if meta.get("op") != "http_resp":
            return
        issued = self._inflight.pop(meta["request_id"], None)
        if issued is not None:
            self.result.response_times_ns.append(self.net.engine.now - issued)

    # -- load generation ------------------------------------------------------------

    def issue_requests(self, count: int) -> None:
        """Issue ``count`` simultaneous requests, round-robin across the
        web servers (the paper's synchronized burst)."""
        now = self.net.engine.now
        for i in range(count):
            request_id = self._next_request
            self._next_request += 1
            self._inflight[request_id] = now
            web = self.web_nodes[i % len(self.web_nodes)]
            self.client.send(
                web, REQUEST_BYTES, meta={"op": "http_req", "request_id": request_id}
            )

    @property
    def outstanding(self) -> int:
        return len(self._inflight)
