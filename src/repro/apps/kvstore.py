"""A Redis-like in-memory key-value store over :mod:`repro.apps.rpc`.

SET carries the value toward the server (fan-in — the incast pattern of
the paper's benchmark); GET carries the value back. Every operation's
client-perceived response time (request sent → reply delivered) is
recorded.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.rpc import RpcNode

#: Wire size of a request header / an OK reply, bytes.
REQUEST_BYTES = 100
REPLY_OK_BYTES = 100


class KvServer:
    """Stores values (sizes — contents don't affect the network) and
    replies to every operation."""

    def __init__(self, node: RpcNode):
        self.node = node
        self.store: Dict[str, int] = {}
        self.clients: Dict[int, RpcNode] = {}
        node.on_message(self._handle)

    def register_client(self, client: "KvClient") -> None:
        self.clients[client.node.host_id] = client.node

    def _handle(self, src: int, size: int, meta: Dict[str, Any]) -> None:
        op = meta.get("op")
        if op == "set":
            self.store[meta["key"]] = meta["value_size"]
            self._reply(src, REPLY_OK_BYTES, meta)
        elif op == "get":
            value = self.store.get(meta["key"], 0)
            self._reply(src, max(value, REPLY_OK_BYTES), meta)

    def _reply(self, src: int, size: int, meta: Dict[str, Any],
               delay_ns: int = 0) -> None:
        client_node = self.clients.get(src)
        if client_node is None:
            return
        reply_meta = dict(meta)
        reply_meta["op"] = "reply"
        self.node.send(client_node, size, meta=reply_meta, delay_ns=delay_ns)


class KvClient:
    """Issues SET/GET operations and records response times (ns).

    Multiple clients may share one host node; each tags its operations
    so replies are routed to the issuing client. Tags are allocated by
    the node (node-local counter, see :meth:`RpcNode.alloc_client_tag`)
    so a checkpoint-restored run keeps the same deterministic sequence
    a process-global counter could not guarantee.
    """

    def __init__(self, node: RpcNode, server: KvServer):
        self.node = node
        self.server = server
        self.tag = node.alloc_client_tag()
        self.engine = node.net.engine
        self.response_times: List[int] = []
        self.pending: Dict[int, int] = {}  # op id -> issue time
        self._callbacks: Dict[int, Any] = {}
        self._next_op = 0
        server.register_client(self)
        node.on_message(self._on_reply)

    # -- operations ---------------------------------------------------------------

    def set(self, key: str, value_size: int, on_reply=None) -> int:
        """SET: ships the value to the server; returns the op id."""
        return self._issue(
            "set", key, value_size, wire_size=REQUEST_BYTES + value_size,
            on_reply=on_reply,
        )

    def get(self, key: str, on_reply=None) -> int:
        """GET: small request; the server ships the value back."""
        return self._issue("get", key, 0, wire_size=REQUEST_BYTES, on_reply=on_reply)

    def _issue(self, op: str, key: str, value_size: int, wire_size: int, on_reply=None) -> int:
        op_id = self._next_op
        self._next_op += 1
        self.pending[op_id] = self.engine.now
        if on_reply is not None:
            self._callbacks[op_id] = on_reply
        meta = {
            "op": op,
            "key": key,
            "value_size": value_size,
            "op_id": op_id,
            "client_tag": self.tag,
        }
        self.node.send(self.server.node, wire_size, meta=meta)
        return op_id

    def _on_reply(self, src: int, size: int, meta: Dict[str, Any]) -> None:
        if meta.get("op") != "reply" or meta.get("client_tag") != self.tag:
            return
        op_id = meta["op_id"]
        issued = self.pending.pop(op_id, None)
        if issued is not None:
            self.response_times.append(self.engine.now - issued)
        callback = self._callbacks.pop(op_id, None)
        if callback is not None:
            callback(op_id)

    @property
    def outstanding(self) -> int:
        return len(self.pending)
