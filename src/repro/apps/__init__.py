"""Application emulation for the testbed benchmarks (§7.3).

The paper drives TLT with real applications (HTTP clients → NGINX web
servers → a Redis cache). The network-relevant behaviour is the
messaging pattern: small requests fanning out, large values fanning in.
:mod:`repro.apps.rpc` provides one-message-per-flow RPC on top of any
transport in the suite; :mod:`repro.apps.kvstore` builds a Redis-like
SET/GET server on it; :mod:`repro.apps.webtier` assembles the paper's
client → web servers → cache pipeline.
"""

from repro.apps.rpc import RpcNode
from repro.apps.kvstore import KvClient, KvServer
from repro.apps.webtier import WebTier, WebTierResult

__all__ = ["RpcNode", "KvClient", "KvServer", "WebTier", "WebTierResult"]
