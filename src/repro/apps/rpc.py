"""One-message-per-flow RPC over the simulated transports.

Each message travels as its own flow (the paper's workloads open
persistent connections, but per-message flows model the same network
behaviour for unidirectional messages while keeping flow accounting —
FCTs, timeouts — per message, which is what the benchmarks measure).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.config import TltConfig
from repro.net.topology import Network
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow

#: handler(src_host_id, payload_size, meta) — called on message arrival.
Handler = Callable[[int, int, Dict[str, Any]], None]


class MessageDelivery:
    """Per-message ``on_complete_rx`` callback.

    A callable class rather than a closure so a message in flight never
    blocks engine checkpointing (:mod:`repro.sim.checkpoint`): closures
    do not pickle, instances of this do — behaviour is identical.
    """

    __slots__ = ("dst", "src_host_id", "size", "meta")

    def __init__(self, dst: "RpcNode", src_host_id: int, size: int,
                 meta: Dict[str, Any]):
        self.dst = dst
        self.src_host_id = src_host_id
        self.size = size
        self.meta = meta

    def __call__(self, record) -> None:
        dst = self.dst
        dst.messages_received += 1
        for handler in dst.handlers:
            handler(self.src_host_id, self.size, self.meta)


class RpcNode:
    """A host-level messaging endpoint."""

    def __init__(
        self,
        net: Network,
        host_id: int,
        transport: str = "dctcp",
        config: Optional[TransportConfig] = None,
        tlt: Optional[TltConfig] = None,
    ):
        self.net = net
        self.host_id = host_id
        self.transport = transport
        self.config = config or TransportConfig()
        self.tlt = tlt
        self.handlers: list = []
        self.messages_received = 0
        self._next_client_tag = 0

    def alloc_client_tag(self) -> int:
        """Allocate a reply-demux tag, unique among clients sharing
        this node (replies only ever fan out to one node's handlers).
        Node-local — not a process global — so a checkpoint-restored
        run keeps allocating the same deterministic sequence."""
        tag = self._next_client_tag
        self._next_client_tag += 1
        return tag

    def on_message(self, handler: Handler) -> None:
        """Register an arrival handler; all registered handlers run for
        every message (each filters on ``meta``)."""
        self.handlers.append(handler)

    def send(
        self,
        dst: "RpcNode",
        size: int,
        group: str = "fg",
        meta: Optional[Dict[str, Any]] = None,
        delay_ns: int = 0,
    ) -> FlowSpec:
        """Send ``size`` bytes to ``dst``; its handler fires on delivery."""
        meta = meta or {}
        delivered = MessageDelivery(dst, self.host_id, size, meta)
        spec = FlowSpec(
            flow_id=self.net.new_flow_id(),
            src=self.host_id,
            dst=dst.host_id,
            size=size,
            start_ns=self.net.engine.now + delay_ns,
            group=group,
            on_complete_rx=delivered,
        )
        if delay_ns == 0:
            create_flow(self.transport, self.net, spec, self.config, self.tlt)
        else:
            self.net.engine.schedule(
                delay_ns,
                create_flow,
                self.transport,
                self.net,
                spec,
                self.config,
                self.tlt,
            )
        return spec
