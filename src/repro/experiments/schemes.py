"""Named scheme variants used across Figures 5-7 and 15."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.core.config import TltConfig
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import MICROS


def tcp_schemes(base: ScenarioConfig) -> Dict[str, ScenarioConfig]:
    """The paper's loss-recovery variants for TCP/DCTCP (Fig 5)."""
    return {
        "baseline": base,
        "baseline+pfc": replace(base, pfc=True),
        "tlp": replace(base, tlp=True),
        "rto200us": replace(base, rto_min_ns=200 * MICROS),
        "tlt": replace(base, tlt=True),
        "tlt+pfc": replace(base, tlt=True, pfc=True),
    }


def roce_schemes(base: ScenarioConfig) -> Dict[str, ScenarioConfig]:
    """Baseline / +PFC / +TLT / +TLT+PFC for a RoCE transport (Fig 6)."""
    schemes = {
        "baseline": base,
        "baseline+pfc": replace(base, pfc=True),
        "tlt": replace(base, tlt=True),
        "tlt+pfc": replace(base, tlt=True, pfc=True),
    }
    if base.transport == "irn":
        # IRN is evaluated without PFC (its whole point), as in the paper.
        schemes = {"baseline": base, "tlt": replace(base, tlt=True)}
    if base.transport == "dcqcn" and base.tlt_config.periodic_n is None:
        # Vanilla DCQCN uses periodic marking N=96 (§7.1).
        for name in ("tlt", "tlt+pfc"):
            schemes[name] = replace(
                schemes[name], tlt_config=TltConfig(periodic_n=96)
            )
    return schemes
