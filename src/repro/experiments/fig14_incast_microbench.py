"""Figure 14 — testbed incast microbenchmark.

A client requests 32 kB from each of 8 servers, with the total number
of concurrent requests swept upward. Baselines (4 ms and 200 µs
RTO_min) hit timeout-dominated tails once the burst overruns the port;
TLT sustains at least 4x the fan-in with no timeout. Panel (c) is the
FCT CDF at 100 concurrent flows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.apps.kvstore import KvClient, KvServer
from repro.apps.rpc import RpcNode
from repro.experiments.common import print_table
from repro.experiments.testbed import build_testbed, maybe_tlt, testbed_transport_config
from repro.sim.units import MICROS, MILLIS
from repro.stats.percentile import percentile

DEFAULT_FLOW_COUNTS = (8, 16, 40, 80, 100, 120, 160)
NUM_SERVERS = 8
RESPONSE_SIZE = 32_000

COLUMNS = ["transport", "scheme", "flows", "p99_ms", "max_ms", "timeouts"]


def run_one(transport: str, scheme: str, flows: int, seed: int = 1,
             runs: int = 3) -> Dict:
    tlt = scheme == "tlt"
    rto_min = 200 * MICROS if scheme == "rto200us" else 4 * MILLIS
    net = build_testbed(num_hosts=NUM_SERVERS + 1, transport=transport, tlt=tlt, seed=seed)
    tconfig = testbed_transport_config(rto_min_ns=rto_min)
    tlt_cfg = maybe_tlt(tlt)

    client_node = RpcNode(net, 0, transport, tconfig, tlt_cfg)
    servers = [
        KvServer(RpcNode(net, i + 1, transport, tconfig, tlt_cfg))
        for i in range(NUM_SERVERS)
    ]
    for server in servers:
        server.store["blob"] = RESPONSE_SIZE  # preload the value
    clients = [KvClient(client_node, server) for server in servers]

    def burst() -> None:
        for i in range(flows):
            clients[i % NUM_SERVERS].get("blob")

    for r in range(runs):
        net.engine.schedule_at(r * 100 * MILLIS, burst)
    net.engine.run(until=(runs + 1) * 100 * MILLIS)

    times = [t for c in clients for t in c.response_times]
    return {
        "transport": transport,
        "scheme": scheme,
        "flows": flows,
        "p99_ms": percentile(times, 99) / 1e6,
        "max_ms": max(times) / 1e6 if times else 0.0,
        "timeouts": float(net.stats.timeouts),
        "answered": len(times),
        "_times": times,
    }


def run(scale="small", flow_counts: Sequence[int] = DEFAULT_FLOW_COUNTS,
        transports=("tcp", "dctcp"), runs: int = 3) -> List[Dict]:
    rows: List[Dict] = []
    for transport in transports:
        for scheme in ("rto4ms", "rto200us", "tlt"):
            for flows in flow_counts:
                row = run_one(transport, scheme, flows, runs=runs)
                row.pop("_times")
                rows.append(row)
    return rows


def run_cdf(scale="small", flows: int = 100, transport: str = "tcp") -> List[Dict]:
    """Panel (c): FCT CDF at a fixed fan-in."""
    rows = []
    for scheme in ("rto4ms", "rto200us", "tlt"):
        result = run_one(transport, scheme, flows)
        times = np.asarray(result["_times"], dtype=float) / 1e6
        row = {"scheme": scheme}
        for p in (50, 90, 96, 99, 100):
            row[f"p{p}_ms"] = float(np.percentile(times, p)) if len(times) else 0.0
        rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS, "Figure 14: incast microbenchmark (32 kB responses)")
    print_table(run_cdf(scale), ["scheme", "p50_ms", "p90_ms", "p96_ms", "p99_ms", "p100_ms"],
                "Figure 14c: FCT CDF at 100 flows (TCP)")


if __name__ == "__main__":
    main()
