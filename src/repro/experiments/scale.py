"""Scale presets.

Thresholds, link rates and delays always stay at paper values so the
queueing dynamics are authentic; a scale only shrinks the topology and
the flow population (CPython cannot push the paper's 10k-flow, 96-host
runs through a pure-Python simulator in benchmark time).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Topology size and flow population for one experiment run."""

    name: str
    num_spines: int
    num_tors: int
    hosts_per_tor: int
    bg_flows: int
    incast_events: int
    incast_flows_per_sender: int

    @property
    def num_hosts(self) -> int:
        return self.num_tors * self.hosts_per_tor


#: Unit-test scale: seconds per run.
TINY = Scale("tiny", num_spines=1, num_tors=2, hosts_per_tor=3,
             bg_flows=20, incast_events=2, incast_flows_per_sender=2)

#: Benchmark scale (default): tens of seconds per run. The incast
#: degree is raised to 16 flows/sender (paper: 8) so the burst volume
#: relative to the receiver ToR's buffer matches the paper's 96-host
#: setup (6 MB burst vs ~2.2 MB dynamic cap there; ~1.9 MB vs ~1.1 MB
#: here) — see DESIGN.md's substitution notes.
SMALL = Scale("small", num_spines=2, num_tors=4, hosts_per_tor=4,
              bg_flows=60, incast_events=4, incast_flows_per_sender=16)

#: Larger sanity scale for overnight runs.
MEDIUM = Scale("medium", num_spines=2, num_tors=6, hosts_per_tor=6,
               bg_flows=400, incast_events=8, incast_flows_per_sender=4)

#: The paper's topology (96 hosts, 10k background flows). Runs, but
#: takes hours per scenario in CPython.
PAPER = Scale("paper", num_spines=4, num_tors=12, hosts_per_tor=8,
              bg_flows=10_000, incast_events=50, incast_flows_per_sender=8)

SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM, PAPER)}
