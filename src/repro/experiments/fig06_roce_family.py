"""Figure 6 — FCT for HPCC, DCQCN+IRN, DCQCN+SACK and vanilla DCQCN.

Load 40%, 5% foreground, color-aware dropping threshold 200 kB. Key
shapes: HPCC without PFC suffers first-RTT bursts, which TLT fixes to
near-lossless performance; IRN+TLT cuts the foreground tail; TLT
reduces PAUSE pressure for DCQCN+SACK.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.schemes import roce_schemes

COLUMNS = ["transport", "scheme", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms",
           "timeouts_per_1k", "pause_per_1k", "incomplete"]

TRANSPORTS = ("hpcc", "irn", "dcqcn-sack", "dcqcn")


def run(scale="small", seeds: Sequence[int] = (1,), transports=TRANSPORTS) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        base = ScenarioConfig(transport=transport, scale=scale)
        for name, config in roce_schemes(base).items():
            row = run_averaged(config, seeds)
            row["transport"] = transport
            row["scheme"] = name
            rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 6: FCT for RoCE transports (40% load, 5% fg, K=200kB)")


if __name__ == "__main__":
    main()
