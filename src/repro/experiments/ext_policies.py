"""Extension — the switch-policy lab: TLT's K vs the buffer-sharing
literature (ROADMAP item 3).

The paper fixes one MMU configuration — Choudhury–Hahne dynamic
thresholds plus a static color threshold K — and never asks whether
TLT's green/red split survives a different buffer-sharing discipline.
This sweep runs every :mod:`repro.switchsim.policy` admission policy

- ``ch-static-k`` — the paper's default, via ``admission=None`` so it
  exercises the production open-coded fast path, not the generic
  dispatch;
- ``bshare`` — queueing-delay-driven sharing (per-port byte budget =
  line rate × target delay);
- ``fairq`` — the pool split evenly across backlogged ports;
- ``tiny-buffer`` — a small static per-port cap, no sharing;
- ``adaptive-k`` — CH admission plus a controller retuning K from
  live queue occupancy on the engine's timer wheel

through the three §7 scenarios whose figures TLT's headline claims
come from: the Fig 5 incast+background mix, a Fig 9-style high-load
variant, and the Fig 13 emulated-testbed cache/background mix. Run
under ``--audit`` (CI does), every policy's drops are verified against
§4 green-drop faithfulness *for that policy's own admission math* by
the policy-aware auditor.

The ranking table scores each policy by its foreground p99 normalized
to the best policy per scenario (1.0 = best everywhere), averaged over
the three scenarios — lower is better, rank 1 wins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.fig13_mixed_traffic import run_one as fig13_run_one
from repro.experiments.scenarios import ScenarioConfig

COLUMNS = [
    "policy", "fig5_p99_ms", "fig9_p99_ms", "fig13_p99_ms",
    "timeouts_per_1k", "score", "rank",
]

#: (row label, ``admission`` spec). ``None`` — not ``"ch-static-k"`` —
#: for the default so the sweep measures the open-coded fast path the
#: experiments actually run (the two are fingerprint-identical; the
#: parity tests pin that).
POLICY_SPECS: Tuple[Tuple[str, object], ...] = (
    ("ch-static-k", None),
    ("bshare", "bshare"),
    ("fairq", "fairq"),
    ("tiny-buffer", "tiny-buffer"),
    ("adaptive-k", "adaptive-k"),
)

#: Fig 9-style stress point: same mix as Fig 5 at elevated load.
FIG9_LOAD = 0.7

SCENARIO_KEYS = ("fig5_p99_ms", "fig9_p99_ms", "fig13_p99_ms")


def run(scale="small", seeds: Sequence[int] = (1, 2)) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for label, spec in POLICY_SPECS:
        fig5 = run_averaged(
            ScenarioConfig(transport="dctcp", tlt=True, scale=scale,
                           admission=spec),
            seeds,
        )
        fig9 = run_averaged(
            ScenarioConfig(transport="dctcp", tlt=True, scale=scale,
                           load=FIG9_LOAD, admission=spec),
            seeds,
        )
        fig13_p99 = [
            fig13_run_one("dctcp", True, seed=seed, admission=spec)["fg_p99_ms"]
            for seed in seeds
        ]
        rows.append({
            "policy": label,
            "fig5_p99_ms": fig5["fg_p99_ms"],
            "fig9_p99_ms": fig9["fg_p99_ms"],
            "fig13_p99_ms": sum(fig13_p99) / len(fig13_p99),
            "timeouts_per_1k": (fig5["timeouts_per_1k"]
                                + fig9["timeouts_per_1k"]) / 2,
        })

    # Score: per-scenario p99 normalized to the best policy (so every
    # scenario carries equal weight regardless of its absolute scale),
    # averaged; rank 1 = lowest score.
    best = {
        key: min(row[key] for row in rows) or 1.0 for key in SCENARIO_KEYS
    }
    for row in rows:
        row["score"] = sum(
            row[key] / best[key] if best[key] else 1.0 for key in SCENARIO_KEYS
        ) / len(SCENARIO_KEYS)
    for rank, row in enumerate(sorted(rows, key=lambda r: r["score"]), start=1):
        row["rank"] = float(rank)
    return rows


def main(scale="small") -> None:
    rows = run(scale)
    print_table(sorted(rows, key=lambda r: r["rank"]), COLUMNS,
                "Extension: admission-policy lab (Fig 5/9/13 scenarios, "
                "fg p99 normalized to per-scenario best)")


if __name__ == "__main__":
    main()
