"""Figure 15 (table) — 99.9%-ile foreground FCT across workloads/loads.

Web search, web server and cache follower background distributions at
loads 0.2-0.5. The paper: for (DC)TCP and IRN, TLT wins across the
board; for DCQCN+SACK and HPCC+SACK, PFC keeps lower foreground tails
(those transports throttle background flows enough to avoid PAUSE),
while TLT still helps the background.

The full grid is 144 runs; the default arguments cover a representative
subset (all three workloads, one load, baseline-vs-TLT per transport).
Pass ``loads=(0.2, 0.3, 0.4, 0.5)`` and ``full_schemes=True`` for the
paper's complete table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.schemes import roce_schemes, tcp_schemes

WORKLOADS = ("web_search", "web_server", "cache_follower")

COLUMNS = ["workload", "load", "transport", "scheme", "fg_p999_ms", "bg_avg_ms"]


def _schemes_for(transport: str, base: ScenarioConfig, full: bool) -> Dict[str, ScenarioConfig]:
    if transport in ("tcp", "dctcp"):
        schemes = tcp_schemes(base)
        if not full:
            schemes = {k: schemes[k] for k in ("baseline", "tlt")}
    else:
        schemes = roce_schemes(base)
        if not full:
            keep = ("baseline+pfc", "tlt") if "baseline+pfc" in schemes else ("baseline", "tlt")
            schemes = {k: schemes[k] for k in keep}
    return schemes


def run(
    scale="small",
    seeds: Sequence[int] = (1,),
    workloads: Sequence[str] = WORKLOADS,
    loads: Sequence[float] = (0.3,),
    transports: Sequence[str] = ("dctcp", "tcp", "dcqcn-sack", "irn", "hpcc"),
    full_schemes: bool = False,
) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for workload in workloads:
        for load in loads:
            for transport in transports:
                base = ScenarioConfig(
                    transport=transport, scale=scale, workload=workload, load=load
                )
                for name, config in _schemes_for(transport, base, full_schemes).items():
                    row = run_averaged(config, seeds)
                    row.update(
                        workload=workload, load=load, transport=transport, scheme=name
                    )
                    rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 15: 99.9% foreground FCT across workloads")


if __name__ == "__main__":
    main()
