"""Figure 13 — cache traffic mixed with a throughput-sensitive flow.

An 8 MB background flow shares the cache node's link with 152
foreground 32 kB SETs from 8 servers. The paper: DCTCP's foreground
99%-ile reaches ~11 ms; DCTCP+TLT achieves ~3.4 ms (71% better) while
costing the background flow only ~5.6% goodput.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.apps.kvstore import KvClient, KvServer
from repro.apps.rpc import RpcNode
from repro.experiments.common import print_table
from repro.experiments.testbed import build_testbed, maybe_tlt, testbed_transport_config
from repro.stats.percentile import percentile
from repro.transport.base import FlowSpec
from repro.transport.registry import create_flow

COLUMNS = ["scheme", "fg_p99_ms", "bg_goodput_gbps", "timeouts"]

NUM_SERVERS = 8
NUM_SETS = 152
VALUE_SIZE = 32_000
BG_SIZE = 8_000_000


def run_one(transport: str = "dctcp", tlt: bool = False, seed: int = 1,
            admission=None) -> Dict:
    # Hosts: 0 = bg sender, 1..8 = web servers, 9 = cache node.
    net = build_testbed(num_hosts=10, transport=transport, tlt=tlt, seed=seed,
                        admission=admission)
    auditor = None
    if os.environ.get("TLT_AUDIT", "") not in ("", "0"):
        from repro.audit import Auditor

        auditor = Auditor(net).install()
    tconfig = testbed_transport_config()
    tlt_cfg = maybe_tlt(tlt)

    bg_done = {}

    def bg_completed(record):
        bg_done["end"] = net.engine.now

    bg_spec = FlowSpec(
        flow_id=net.new_flow_id(), src=0, dst=9, size=BG_SIZE,
        start_ns=0, group="bg", on_complete_rx=bg_completed,
    )
    create_flow(transport, net, bg_spec, tconfig, tlt_cfg)

    cache = KvServer(RpcNode(net, 9, transport, tconfig, tlt_cfg))
    clients = [
        KvClient(RpcNode(net, i + 1, transport, tconfig, tlt_cfg), cache)
        for i in range(NUM_SERVERS)
    ]
    # Start the foreground burst once the bg flow is in steady state.
    start_ns = 200_000

    def burst() -> None:
        for i in range(NUM_SETS):
            clients[i % NUM_SERVERS].set(f"key-{i}", VALUE_SIZE)

    net.engine.schedule_at(start_ns, burst)
    net.engine.run(until=2_000_000_000)
    if auditor is not None:
        auditor.final_check()

    fg_times = [t for c in clients for t in c.response_times]
    bg_end = bg_done.get("end", net.engine.now)
    return {
        "scheme": f"{transport}+tlt" if tlt else transport,
        "fg_p99_ms": percentile(fg_times, 99) / 1e6,
        "bg_goodput_gbps": BG_SIZE * 8 / max(bg_end, 1) if bg_end else 0.0,
        "timeouts": float(net.stats.timeouts),
        "answered": len(fg_times),
    }


def run(scale="small", transport: str = "dctcp") -> List[Dict]:
    return [run_one(transport, False), run_one(transport, True)]


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 13: mixed cache + background traffic (DCTCP)")


if __name__ == "__main__":
    main()
