"""Build and run one simulation scenario (§7.1 settings).

A :class:`ScenarioConfig` captures everything a run needs — transport,
TLT/PFC switches, thresholds, workload mix, scale, seed — and
:func:`run_scenario` assembles the network, schedules traffic, runs the
engine and returns a :class:`ScenarioResult`.

Paper defaults encoded here:

- 40 Gbps links; 10 µs per-hop latency for the TCP family, 1 µs for the
  RoCE family (so base RTT is 80 µs / 8 µs and BDP 400 kB / 40 kB);
- per-switch shared buffer proportional to ports (375 kB/port — the
  4.5 MB / 12 ports of the paper's Trident II model), dynamic threshold
  α = 1;
- color-aware dropping threshold K: 400 kB (TCP family) / 200 kB (RoCE);
- DCTCP step marking at 200 kB; DCQCN RED marking 5 kB/200 kB/1%;
- background flows: Poisson over an empirical CDF at 40% load;
  foreground: synchronized incasts of 8 kB flows, 5% of volume.
"""

from __future__ import annotations

import gc
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.audit import AuditConfig, AuditError, Auditor
from repro.core.config import TltConfig
from repro.experiments.perf import TALLY
from repro.faults.schedule import FaultController, FaultSchedule
from repro.net.topology import (
    Network,
    TopologyParams,
    dumbbell,
    fat_tree,
    leaf_spine,
    star,
)
from repro.sim.rng import derive_seed
from repro.sim.units import GBPS, KB, MICROS, MILLIS
from repro.switchsim.ecn import RedEcn, StepEcn
from repro.switchsim.pfc import PfcConfig
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import create_flow
from repro.experiments.scale import SMALL, Scale
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import DISTRIBUTIONS
from repro.workload.incast import IncastTraffic

#: Transports built on the TCP byte-stream family.
TCP_FAMILY = frozenset({"tcp", "dctcp"})
#: Transports built on the RoCE PSN family.
ROCE_FAMILY = frozenset({"dcqcn", "dcqcn-sack", "irn", "hpcc"})

#: Per-port share of shared buffer (4.5 MB / 12 ports in the paper).
BUFFER_PER_PORT = 375 * KB


@dataclass(frozen=True)
class EcnStreamFactory:
    """Per-switch RED marking streams, seeded by switch name.

    RED marking draws an RNG per probabilistic decision, so every
    switch needs its *own* stream — a single fabric-global RNG would
    make marking depend on global packet arrival order (and kept the
    RoCE family out of the sharded executor: name-derived seeds are
    identical in every shard replica, and only the owning shard draws
    from them). A module-level class rather than a closure so networks
    built for the RoCE family stay picklable for checkpoint/restore.
    """

    kmin: int
    kmax: int
    pmax: float
    seed: int

    def __call__(self, name: str) -> RedEcn:
        return RedEcn(
            self.kmin, self.kmax, self.pmax,
            random.Random(derive_seed(self.seed, f"ecn.{name}")),
        )


@dataclass
class ScenarioConfig:
    """One simulation run's configuration."""

    transport: str = "dctcp"
    tlt: bool = False
    tlt_config: TltConfig = field(default_factory=TltConfig)
    pfc: bool = False

    # Topology.
    topology: str = "leaf_spine"  # "leaf_spine" | "fat_tree" | "star" | "dumbbell"
    scale: Scale = SMALL
    link_rate_bps: int = 40 * GBPS
    link_delay_ns: Optional[int] = None  # default: 10 us TCP / 1 us RoCE
    #: Fat-tree arity (k pods, k^3/4 hosts); only used when
    #: ``topology == "fat_tree"``.
    fat_tree_k: int = 4
    #: Per-spine rate factors for an asymmetric leaf-spine (see
    #: :func:`repro.net.topology.leaf_spine`); None = symmetric.
    spine_rate_factors: Optional[tuple] = None
    #: Per-core rate factors for an asymmetric fat-tree (see
    #: :func:`repro.net.topology.fat_tree`); None = symmetric.
    core_rate_factors: Optional[tuple] = None

    # Switch.
    buffer_per_port: int = BUFFER_PER_PORT
    color_threshold_bytes: Optional[int] = None  # default by family when tlt
    alpha: float = 1.0
    #: Admission-policy spec for every switch (``None`` = the default
    #: Choudhury–Hahne + static-K on the open-coded fast path; a name
    #: or ``{"name": ..., params}`` dict selects a lab policy — see
    #: :func:`repro.switchsim.policy.make_policy`). Part of the result
    #: identity, so it is folded into result-cache keys like any other
    #: field.
    admission: Optional[object] = None
    #: Path-selection spec for every switch (``None`` = static-hash
    #: ECMP, bit-identical to the pinned fingerprints; ``"flowlet"`` /
    #: ``"wcmp"`` or a ``{"name": ..., params}`` dict select a
    #: multipath selector — see :func:`repro.net.routing.make_fib`).
    #: Part of the result identity, so it is folded into cache keys.
    path_selection: Optional[object] = None
    ecn_k_bytes: int = 200 * KB  # DCTCP step threshold
    dcqcn_kmin: int = 5 * KB
    dcqcn_kmax: int = 200 * KB
    dcqcn_pmax: float = 0.01

    # Transport.
    rto_min_ns: int = 4 * MILLIS
    fixed_rto_ns: Optional[int] = None
    tlp: bool = False
    transport_overrides: Dict = field(default_factory=dict)

    # Workload.
    workload: str = "web_search"
    load: float = 0.4
    fg_share: float = 0.05
    incast_flow_size: int = 8 * KB
    bg_flows: Optional[int] = None  # default: scale.bg_flows
    incast_events: Optional[int] = None
    incast_flows_per_sender: Optional[int] = None
    enable_background: bool = True
    enable_incast: bool = True

    # Run control.
    seed: int = 1
    #: Split the fabric across this many conservative-lookahead shard
    #: workers (:mod:`repro.sim.sharding`). ``None`` defers to the
    #: ``TLT_SHARDS`` environment variable (set by ``--shards``), which
    #: also reaches pool workers. Sharding is an execution strategy,
    #: not a scenario input — results are bit-identical by contract —
    #: so it is excluded from result-cache keys.
    shards: Optional[int] = None
    drain_ns: int = 100 * MILLIS
    hard_cap_ns: Optional[int] = None
    queue_sample_interval_ns: int = 20 * MICROS
    #: Run with the runtime invariant auditor attached. ``None`` defers
    #: to the ``TLT_AUDIT`` environment variable (set by ``--audit``),
    #: which also reaches pool workers and keeps cache keys stable.
    audit: Optional[bool] = None
    #: Fault-schedule spec (the :class:`repro.faults.FaultSchedule` JSON
    #: form). ``None`` defers to the ``TLT_FAULTS`` environment variable
    #: (a spec file path, set by ``--faults``), which also reaches pool
    #: workers; the resolved spec is folded into cache keys.
    faults: Optional[Dict] = None
    #: Telemetry spec (:class:`repro.telemetry.TelemetryConfig` dict
    #: form, or just an output-directory string). ``None`` defers to the
    #: ``TLT_TELEMETRY`` environment variable (an output directory, set
    #: by ``--telemetry``), which also reaches pool workers. Telemetry
    #: is an observation, not a result: it is *excluded* from
    #: result-cache keys, and samplers never perturb the simulation —
    #: determinism fingerprints are bit-identical with it on.
    telemetry: Optional[Dict] = None
    #: Service-emulator spec (:class:`repro.service.ServiceSpec` dict
    #: form). When set, :func:`run_scenario` dispatches to
    #: :func:`repro.service.run.run_service`: the workload is the
    #: open-loop multi-tier request stream instead of the
    #: background+incast mix. Part of the result identity, folded into
    #: cache keys like any other field.
    service: Optional[Dict] = None
    #: Checkpoint spec: ``{"dir": path, "at_ns": sim-time}`` (``at_ns``
    #: optional — defaults to the midpoint of the arrival span), or just
    #: a directory string. ``None`` defers to the ``TLT_CHECKPOINT``
    #: environment variable (a directory, set by ``--checkpoint``).
    #: Checkpointing is an execution strategy, not a scenario input —
    #: restore continues bit-identically by contract — so it is
    #: *excluded* from result-cache keys (same rule as telemetry and
    #: shards; see docs/API.md). Pure backend only; service runs only.
    checkpoint: Optional[object] = None

    # -- derived ----------------------------------------------------------------

    @property
    def family(self) -> str:
        if self.transport in TCP_FAMILY:
            return "tcp"
        if self.transport in ROCE_FAMILY:
            return "roce"
        raise ValueError(f"unknown transport {self.transport!r}")

    @property
    def resolved_link_delay_ns(self) -> int:
        if self.link_delay_ns is not None:
            return self.link_delay_ns
        return 10 * MICROS if self.family == "tcp" else 1 * MICROS

    @property
    def base_rtt_ns(self) -> int:
        # Four hops each way in the leaf-spine (host-ToR-spine-ToR-host);
        # six in the fat-tree (host-edge-agg-core-agg-edge-host).
        if self.topology == "fat_tree":
            hops = 6
        elif self.topology == "leaf_spine":
            hops = 4
        else:
            hops = 2
        return 2 * hops * self.resolved_link_delay_ns

    @property
    def bdp_bytes(self) -> int:
        return self.link_rate_bps * self.base_rtt_ns // 8 // 1_000_000_000

    @property
    def resolved_shards(self) -> int:
        if self.shards is not None:
            return max(1, int(self.shards))
        try:
            return max(1, int(os.environ.get("TLT_SHARDS", "1")))
        except ValueError:
            return 1

    @property
    def audit_enabled(self) -> bool:
        if self.audit is not None:
            return self.audit
        return os.environ.get("TLT_AUDIT", "") not in ("", "0")

    def resolved_faults(self) -> Optional[Dict]:
        """The fault-schedule spec for this run, canonicalized, or None.

        An explicit ``faults`` spec on the config wins; otherwise
        ``TLT_FAULTS`` names a spec file to load.
        """
        if self.faults is not None:
            return FaultSchedule.from_spec(self.faults).to_spec()
        path = os.environ.get("TLT_FAULTS", "")
        if not path:
            return None
        return FaultSchedule.load(path).to_spec()

    def resolved_telemetry(self) -> Optional[Dict]:
        """The telemetry spec for this run, canonicalized, or None.

        An explicit ``telemetry`` spec on the config wins; otherwise
        ``TLT_TELEMETRY`` names an output directory.
        """
        from repro.telemetry import TelemetryConfig

        if self.telemetry is not None:
            return TelemetryConfig.from_spec(self.telemetry).to_spec()
        out_dir = os.environ.get("TLT_TELEMETRY", "")
        if not out_dir:
            return None
        return TelemetryConfig.from_spec(out_dir).to_spec()

    def resolved_checkpoint(self) -> Optional[Dict]:
        """The checkpoint spec for this run, canonicalized, or None.

        An explicit ``checkpoint`` spec on the config wins; otherwise
        ``TLT_CHECKPOINT`` names a directory. Canonical form is
        ``{"dir": str, "at_ns": Optional[int]}``.
        """
        spec = self.checkpoint
        if spec is None:
            directory = os.environ.get("TLT_CHECKPOINT", "")
            if not directory:
                return None
            spec = directory
        if isinstance(spec, str):
            return {"dir": spec, "at_ns": None}
        if isinstance(spec, dict) and "dir" in spec:
            return {"dir": spec["dir"], "at_ns": spec.get("at_ns")}
        raise ValueError(
            f"checkpoint spec must be a directory or {{'dir', 'at_ns'}} "
            f"dict, got {spec!r}")

    @property
    def resolved_color_threshold(self) -> Optional[int]:
        if not self.tlt:
            return None
        if self.color_threshold_bytes is not None:
            return self.color_threshold_bytes
        return 400 * KB if self.family == "tcp" else 200 * KB


@dataclass
class ScenarioResult:
    """Measurements from one run."""

    config: ScenarioConfig
    net: Network
    duration_ns: int
    queue_samples: list
    auditor: Optional[Auditor] = None
    faults: Optional[FaultController] = None
    #: Attached :class:`repro.telemetry.Telemetry` (finalized), or None.
    telemetry: Optional[object] = None
    #: The :class:`repro.service.ServiceEmulator` for service runs
    #: (response-time sketches, per-tier breakdown), or None.
    service: Optional[object] = None

    @property
    def stats(self):
        return self.net.stats

    def fct_summary(self, group: str = "fg") -> Dict[str, float]:
        return self.stats.fct_summary(group)

    def fg_p99_ms(self) -> float:
        return self.fct_summary("fg")["p99"] / 1e6

    def fg_p999_ms(self) -> float:
        return self.fct_summary("fg")["p999"] / 1e6

    def bg_avg_ms(self) -> float:
        return self.fct_summary("bg")["mean"] / 1e6

    def pause_fraction(self) -> float:
        return self.net.avg_pause_fraction(self.duration_ns)

    def summary_row(self) -> Dict[str, float]:
        stats = self.stats
        return {
            "fg_p99_ms": self.fg_p99_ms(),
            "fg_p999_ms": self.fg_p999_ms(),
            "bg_avg_ms": self.bg_avg_ms(),
            "timeouts_per_1k": stats.timeouts_per_1k_flows(),
            "pause_per_1k": stats.pause_frames_per_1k_flows(),
            "pause_fraction": self.pause_fraction(),
            "important_loss_rate": stats.important_loss_rate(),
            "important_fraction": stats.important_fraction_bytes(),
            "fault_drops": float(stats.drops_fault),
            "incomplete": float(stats.incomplete_flows()),
            # Path churn across the fabric (zero for static selectors).
            # Sharded runs carry the merged sums on the network facade;
            # live runs sum the per-switch FIB counters directly.
            "flowlets": float(
                sum(sw.fib.flowlets for sw in self.net.switches)
                if self.net.switches else getattr(self.net, "fib_flowlets", 0)
            ),
            "reroutes": float(
                sum(sw.fib.reroutes for sw in self.net.switches)
                if self.net.switches else getattr(self.net, "fib_reroutes", 0)
            ),
        }


def build_network(config: ScenarioConfig) -> Network:
    """Construct the network for a scenario (no traffic yet)."""
    scale = config.scale
    if config.topology == "leaf_spine":
        ports = scale.hosts_per_tor + scale.num_spines
    elif config.topology == "fat_tree":
        ports = config.fat_tree_k
    else:
        ports = scale.num_hosts
    ecn = None
    ecn_factory = None
    if config.transport == "dctcp":
        # Stateless step marking: one shared scheme object is fine.
        ecn = StepEcn(config.ecn_k_bytes)
    elif config.transport in ("dcqcn", "dcqcn-sack", "irn"):
        ecn_factory = EcnStreamFactory(
            config.dcqcn_kmin, config.dcqcn_kmax, config.dcqcn_pmax,
            config.seed,
        )

    switch_config = SwitchConfig(
        buffer_bytes=ports * config.buffer_per_port,
        alpha=config.alpha,
        color_threshold_bytes=config.resolved_color_threshold,
        ecn=ecn,
        ecn_factory=ecn_factory,
        pfc=PfcConfig(enabled=config.pfc),
        int_enabled=(config.transport == "hpcc"),
        admission=config.admission,
        path_selection=config.path_selection,
    )
    params = TopologyParams(
        link_rate_bps=config.link_rate_bps,
        host_link_delay_ns=config.resolved_link_delay_ns,
        fabric_link_delay_ns=config.resolved_link_delay_ns,
        switch_config=switch_config,
    )
    if config.topology == "leaf_spine":
        return leaf_spine(
            scale.num_spines, scale.num_tors, scale.hosts_per_tor, params,
            config.seed, spine_rate_factors=config.spine_rate_factors,
        )
    if config.topology == "fat_tree":
        return fat_tree(
            config.fat_tree_k, params, config.seed,
            core_rate_factors=config.core_rate_factors,
        )
    if config.topology == "star":
        return star(scale.num_hosts, params, config.seed)
    if config.topology == "dumbbell":
        return dumbbell(scale.num_hosts - 2, 2, params, config.seed)
    raise ValueError(f"unknown topology {config.topology!r}")


def make_transport_config(config: ScenarioConfig) -> TransportConfig:
    tconfig = TransportConfig(
        rto_min_ns=config.rto_min_ns,
        fixed_rto_ns=config.fixed_rto_ns,
        tlp_enabled=config.tlp,
        base_rtt_ns=config.base_rtt_ns,
        link_rate_bps=config.link_rate_bps,
    )
    if config.transport_overrides:
        tconfig = replace(tconfig, **config.transport_overrides)
    return tconfig


def _telemetry_run_id(config: ScenarioConfig) -> str:
    """Stable per-(config, seed) identifier for telemetry file names.

    Derived from the same canonical config encoding the result cache
    uses (telemetry itself stripped — it must not name its own files),
    so parallel workers and reruns agree without coordination.
    """
    import hashlib
    import json

    from repro.experiments.cache import encode_value

    blob = json.dumps(encode_value(replace(config, telemetry=None)), sort_keys=True)
    digest = hashlib.sha256(blob.encode()).hexdigest()[:8]
    tag = f"{config.transport}_tlt" if config.tlt else config.transport
    return f"{tag}_s{config.seed}_{digest}"


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run and measure one scenario."""
    if config.service is not None:
        # Service runs replace the whole traffic layer (open-loop
        # request stream instead of background+incast), so they take
        # their own drive loop; sharding does not apply to them.
        from repro.service.run import run_service

        return run_service(config)
    shards = config.resolved_shards
    if shards > 1 and config.topology == "leaf_spine":
        from repro.sim.sharding import run_scenario_sharded

        return run_scenario_sharded(config, shards)
    wall_started = time.perf_counter()
    net = build_network(config)
    auditor = None
    if config.audit_enabled:
        auditor = Auditor(net, AuditConfig(dump_path=os.environ.get("TLT_AUDIT_DUMP") or None))
        auditor.install()
    fault_controller = None
    fault_spec = config.resolved_faults()
    if fault_spec is not None:
        fault_controller = FaultSchedule.from_spec(fault_spec).install(net)
    tconfig = make_transport_config(config)
    tlt_cfg = config.tlt_config if config.tlt else None

    def create(spec: FlowSpec) -> None:
        create_flow(config.transport, net, spec, tconfig, tlt_cfg)

    end_of_traffic = 0
    if config.enable_background:
        background = BackgroundTraffic(
            net,
            DISTRIBUTIONS[config.workload],
            create,
            load=config.load,
            num_flows=config.bg_flows if config.bg_flows is not None else config.scale.bg_flows,
            link_rate_bps=config.link_rate_bps,
        )
        background.schedule()
        end_of_traffic = max(end_of_traffic, background.end_of_arrivals_ns)

    if config.enable_incast:
        scale = config.scale
        events = (
            config.incast_events if config.incast_events is not None else scale.incast_events
        )
        per_sender = (
            config.incast_flows_per_sender
            if config.incast_flows_per_sender is not None
            else scale.incast_flows_per_sender
        )
        interval = IncastTraffic.interval_for_share(
            config.fg_share,
            config.load,
            scale.num_hosts,
            config.link_rate_bps,
            config.incast_flow_size,
            per_sender,
            scale.num_hosts - 1,
        )
        incast = IncastTraffic(
            net,
            create,
            flow_size=config.incast_flow_size,
            flows_per_sender=per_sender,
            num_events=events,
            interval_ns=interval,
            start_ns=200 * MICROS,
        )
        incast.schedule()
        if incast.specs:
            end_of_traffic = max(end_of_traffic, incast.specs[-1].start_ns)

    horizon = end_of_traffic + config.drain_ns

    # Periodic queue-length sampling (Fig 11). Runs until the traffic
    # window closes (plus while stragglers remain).
    queue_samples: list = []

    def sample_queues() -> None:
        for switch in net.switches:
            for queue in switch.queues:
                if queue.occupancy:
                    queue_samples.append(queue.occupancy)
        if net.engine.now < end_of_traffic or net.stats.incomplete_flows():
            net.engine.schedule(config.queue_sample_interval_ns, sample_queues)

    net.engine.schedule(config.queue_sample_interval_ns, sample_queues)

    # Telemetry rides the same liveness rule as the sampler above, so
    # attaching it never extends a run; its samplers only read state,
    # so every simulation observable stays bit-identical.
    telemetry = None
    telemetry_spec = config.resolved_telemetry()
    if telemetry_spec is not None:
        from repro.telemetry import Telemetry, TelemetryConfig

        telemetry_config = TelemetryConfig.from_spec(telemetry_spec)
        telemetry = Telemetry(
            net, telemetry_config, scenario=config,
            run_id=telemetry_config.run_id or _telemetry_run_id(config),
        )
        telemetry.install(
            active=lambda: net.engine.now < end_of_traffic
            or bool(net.stats.incomplete_flows())
        )
        if fault_controller is not None:
            telemetry.attach_faults(fault_controller)

    hard_cap = config.hard_cap_ns or (horizon + 10 * config.drain_ns)
    # The topology, transports and traffic schedule built above are
    # long-lived: move them to the GC's permanent generation so young-
    # generation collections during the run never traverse them.
    gc.collect()
    gc.freeze()
    try:
        try:
            net.engine.run(until=horizon)
            while (
                net.stats.incomplete_flows()
                and net.engine.now < hard_cap
                and net.engine.pending
            ):
                net.engine.run(until=min(net.engine.now + 50 * MILLIS, hard_cap))
        finally:
            gc.unfreeze()

        if auditor is not None:
            auditor.final_check()
    except AuditError as error:
        # Post-mortem: snapshot the sample window + audit trace before
        # the violation propagates.
        if telemetry is not None:
            telemetry.on_audit_error(error)
        raise
    finally:
        if telemetry is not None:
            telemetry.finalize()
    TALLY.add(net.engine.events_processed, time.perf_counter() - wall_started)
    return ScenarioResult(
        config, net, net.engine.now, queue_samples, auditor, fault_controller,
        telemetry,
    )
