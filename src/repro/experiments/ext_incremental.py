"""Extension — incremental deployment (§5.3).

The paper argues TLT can be deployed incrementally if TLT-enabled
traffic gets its own switch queue with color-aware dropping while
legacy traffic uses a plain queue ("non-TLT packets must use a
separated queue without color-aware dropping, as it will drop the
non-TLT packets, leading to performance degradation").

This experiment quantifies that: half the hosts run DCTCP+TLT, half
legacy DCTCP, under one shared incast + background mix, comparing

- ``isolated``   — two queues; coloring only on the TLT class (the
  paper's recommended deployment),
- ``shared-bad`` — one queue with coloring, legacy traffic classified
  unimportant (what the paper warns against),
- ``no-tlt``     — everyone legacy (reference).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import TltConfig
from repro.experiments.common import print_table, resolve_scale
from repro.experiments.scenarios import ScenarioConfig, build_network, make_transport_config
from repro.sim.units import KB, MILLIS
from repro.transport.base import FlowSpec
from repro.transport.registry import create_flow
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import DISTRIBUTIONS
from repro.workload.incast import IncastTraffic

COLUMNS = ["deployment", "tlt_fg_p99_ms", "legacy_fg_p99_ms",
           "tlt_timeouts", "legacy_timeouts", "drops_red"]


def _run(deployment: str, scale, seed: int = 1) -> Dict:
    config = ScenarioConfig(transport="dctcp", tlt=True, scale=scale, seed=seed)
    if deployment == "isolated":
        # Build with 2 classes; color-aware dropping on class 0 only.
        config.transport_overrides = {}
    net_config = config
    net = build_network(net_config)
    for switch in net.switches:
        if deployment == "isolated":
            switch.config.num_traffic_classes = 2
            switch.config.color_classes = (0,)
            # Rebuild queues with two classes per existing port.
            from repro.switchsim.queue import EgressQueue

            switch._port_queues = [
                [EgressQueue(p), EgressQueue(p)] for p in range(len(switch.ports))
            ]
            switch._rr = [0] * len(switch.ports)
        elif deployment == "no-tlt":
            switch.config.color_threshold_bytes = None

    from dataclasses import replace

    from repro.net.packet import Color

    tconfig = make_transport_config(config)
    tlt_tconfig = tconfig
    legacy_tconfig = tconfig
    if deployment == "isolated":
        tlt_tconfig = replace(tconfig, traffic_class=0)
        legacy_tconfig = replace(tconfig, traffic_class=1)
    elif deployment == "shared-bad":
        # Legacy packets carry no TLT DSCP: the ACL classifies every
        # one of them unimportant (red) in the shared colored queue.
        legacy_tconfig = replace(tconfig, plain_color=Color.RED)

    hosts = [h.host_id for h in net.hosts]
    tlt_hosts = set(hosts[: len(hosts) // 2])

    tlt_flows: List[int] = []
    legacy_flows: List[int] = []

    def create(spec: FlowSpec) -> None:
        use_tlt = spec.src in tlt_hosts and deployment != "no-tlt"
        if use_tlt:
            create_flow("dctcp", net, spec, tlt_tconfig, TltConfig())
            tlt_flows.append(spec.flow_id)
        else:
            create_flow("dctcp", net, spec, legacy_tconfig, None)
            legacy_flows.append(spec.flow_id)

    background = BackgroundTraffic(
        net, DISTRIBUTIONS["web_search"], create, load=config.load,
        num_flows=scale.bg_flows, link_rate_bps=config.link_rate_bps,
    )
    background.schedule()
    incast = IncastTraffic(
        net, create, flow_size=8 * KB,
        flows_per_sender=scale.incast_flows_per_sender,
        num_events=scale.incast_events, interval_ns=600_000, start_ns=200_000,
    )
    incast.schedule()

    horizon = background.end_of_arrivals_ns + 100 * MILLIS
    net.engine.run(until=horizon)
    while net.stats.incomplete_flows() and net.engine.now < 3 * horizon and net.engine.pending:
        net.engine.run(until=net.engine.now + 50 * MILLIS)

    def group_stats(flow_ids: List[int]):
        records = [net.stats.flows[f] for f in flow_ids]
        fg = sorted(
            r.fct_ns for r in records if r.group == "fg" and r.fct_ns is not None
        )
        timeouts = sum(r.timeouts for r in records)
        p99 = fg[int(0.99 * (len(fg) - 1))] / 1e6 if fg else 0.0
        return p99, timeouts

    tlt_p99, tlt_to = group_stats(tlt_flows)
    legacy_p99, legacy_to = group_stats(legacy_flows)
    return {
        "deployment": deployment,
        "tlt_fg_p99_ms": tlt_p99,
        "legacy_fg_p99_ms": legacy_p99,
        "tlt_timeouts": float(tlt_to),
        "legacy_timeouts": float(legacy_to),
        "drops_red": float(net.stats.drops_red),
    }


def run(scale="small", seed: int = 1) -> List[Dict]:
    scale = resolve_scale(scale)
    return [
        _run("no-tlt", scale, seed),
        _run("shared-bad", scale, seed),
        _run("isolated", scale, seed),
    ]


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Extension: incremental deployment (half TLT, half legacy)")


if __name__ == "__main__":
    main()
