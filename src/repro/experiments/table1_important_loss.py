"""Table 1 (Appendix B) — important-packet loss rate.

Loss rate of green packets for TLT+DCTCP and TLT+TCP across
color-aware dropping thresholds (400/500/600 kB) and foreground shares
(5%/10%), without PFC. The paper: zero at 400 kB with 5% foreground,
growing with both the threshold (less room reserved for green) and the
churn (more foreground traffic).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import KB

DEFAULT_THRESHOLDS = (400 * KB, 500 * KB, 600 * KB)
DEFAULT_SHARES = (0.05, 0.10)

COLUMNS = ["transport", "fg_share", "threshold_kB", "important_loss_rate",
           "timeouts_per_1k"]


def run(scale="small", seeds: Sequence[int] = (1,),
        thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
        shares: Sequence[float] = DEFAULT_SHARES,
        transports=("dctcp", "tcp"),
        include_stress: bool = True) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        base = ScenarioConfig(transport=transport, tlt=True, scale=scale)
        grid = [(share, k) for share in shares for k in thresholds]
        if include_stress:
            # Beyond the paper's grid: a threshold near the dynamic-
            # threshold ceiling plus heavy churn, where green packets
            # finally start to drop (the mechanism's limit, §4.2).
            grid += [(0.10, 1000 * KB), (0.20, 1000 * KB)]
        for share, k in grid:
            config = replace(base, fg_share=share, color_threshold_bytes=k)
            row = run_averaged(config, seeds)
            row.update(transport=transport, fg_share=share, threshold_kB=k // KB)
            rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS, "Table 1: important packet loss rate")


if __name__ == "__main__":
    main()
