"""Shared experiment plumbing: seed-averaged runs and table printing."""

from __future__ import annotations

import statistics
import sys
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.parallel import Job, metrics_reference, run_jobs
from repro.experiments.scale import SCALES, Scale
from repro.experiments.scenarios import ScenarioConfig, ScenarioResult, run_scenario


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def run_averaged(
    config: ScenarioConfig,
    seeds: Sequence[int] = (1,),
    metrics: Optional[Callable[[ScenarioResult], Dict[str, float]]] = None,
    *,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    timeout_s: Optional[float] = None,
) -> Dict[str, float]:
    """Run ``config`` once per seed; return mean (and std as ``k_std``)
    of every metric. The paper averages five seeded runs.

    Seeds execute through the parallel job runner
    (:mod:`repro.experiments.parallel`): they fan out over worker
    processes when the execution context (or ``jobs``) allows, finished
    results are served from the on-disk cache, and a failed seed is
    dropped from the average with a warning instead of killing the
    sweep (all seeds failing raises). ``k_std`` is always emitted —
    0.0 for single-sample runs — so CSV/JSON schemas are stable across
    seed counts.
    """
    metrics_ref = metrics_reference(metrics)
    if metrics is not None and metrics_ref is None:
        # Non-importable reducer (lambda/closure): run serially in this
        # process. No caching/parallelism — the reducer cannot be
        # addressed from a worker, nor fingerprinted for the cache.
        samples = [metrics(run_scenario(replace(config, seed=seed))) for seed in seeds]
    else:
        job_list = [Job(index, config, seed, metrics_ref)
                    for index, seed in enumerate(seeds)]
        results = run_jobs(job_list, jobs_n=jobs, use_cache=use_cache,
                           timeout_s=timeout_s)
        failures = [res for res in results if not res.ok]
        if failures:
            detail = "; ".join(
                f"seed {seeds[res.index]}: {res.error}" for res in failures)
            if len(failures) == len(results):
                raise RuntimeError(f"every seed failed: {detail}")
            print(f"warning: averaging over {len(results) - len(failures)}/"
                  f"{len(results)} seeds ({detail})", file=sys.stderr)
        samples = [res.row for res in results if res.ok]
    row: Dict[str, float] = {}
    for key in samples[0]:
        values = [s[key] for s in samples]
        row[key] = statistics.fmean(values)
        row[key + "_std"] = statistics.stdev(values) if len(values) > 1 else 0.0
    return row


def format_table(rows: Iterable[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    rows = list(rows)
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns)))
    return "\n".join(lines)


def print_table(rows: Iterable[Dict], columns: Sequence[str], title: str = "") -> None:
    print(format_table(rows, columns, title))
    print()
