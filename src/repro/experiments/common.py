"""Shared experiment plumbing: seed-averaged runs and table printing."""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.scale import SCALES, Scale
from repro.experiments.scenarios import ScenarioConfig, ScenarioResult, run_scenario


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def run_averaged(
    config: ScenarioConfig,
    seeds: Sequence[int] = (1,),
    metrics: Optional[Callable[[ScenarioResult], Dict[str, float]]] = None,
) -> Dict[str, float]:
    """Run ``config`` once per seed; return mean (and std as ``k_std``)
    of every metric. The paper averages five seeded runs."""
    metrics = metrics or (lambda res: res.summary_row())
    samples: List[Dict[str, float]] = []
    for seed in seeds:
        result = run_scenario(replace(config, seed=seed))
        samples.append(metrics(result))
    row: Dict[str, float] = {}
    for key in samples[0]:
        values = [s[key] for s in samples]
        row[key] = statistics.fmean(values)
        if len(values) > 1:
            row[key + "_std"] = statistics.stdev(values)
    return row


def format_table(rows: Iterable[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    rows = list(rows)
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns)))
    return "\n".join(lines)


def print_table(rows: Iterable[Dict], columns: Sequence[str], title: str = "") -> None:
    print(format_table(rows, columns, title))
    print()
