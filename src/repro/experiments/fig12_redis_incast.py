"""Figure 12 — in-memory cache benchmark (HTTP → web servers → Redis).

One client bursts up to 180 requests over 8 web servers; each request
triggers a 32 kB SET toward one cache node (fan-in incast). The paper:
(DC)TCP response times explode (with huge variance) past a modest
fan-in, while (DC)TCP+TLT stays steady — up to ~91.7% lower maximum
response time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.apps.webtier import WebTier
from repro.experiments.common import print_table
from repro.experiments.testbed import build_testbed, maybe_tlt, testbed_transport_config
from repro.sim.units import MILLIS

DEFAULT_REQUEST_COUNTS = (8, 24, 60, 120, 180)

COLUMNS = ["transport", "tlt", "requests", "p99_ms", "max_ms", "timeouts"]


def run_one(transport: str, tlt: bool, requests: int, bursts: int = 3, seed: int = 1) -> Dict:
    net = build_testbed(num_hosts=10, transport=transport, tlt=tlt, seed=seed)
    tier = WebTier(
        net, transport, testbed_transport_config(), maybe_tlt(tlt),
        num_web_servers=8, value_size=32_000,
    )
    # Several widely spaced bursts (the paper averages 12 runs).
    for burst in range(bursts):
        net.engine.schedule_at(burst * 100 * MILLIS, tier.issue_requests, requests)
    net.engine.run(until=(bursts + 1) * 100 * MILLIS)
    summary = tier.result.summary()
    return {
        "transport": transport,
        "tlt": tlt,
        "requests": requests,
        "p99_ms": summary["p99"] / 1e6,
        "max_ms": summary["max"] / 1e6,
        "timeouts": float(net.stats.timeouts),
        "answered": summary["count"],
    }


def run(scale="small", request_counts: Sequence[int] = DEFAULT_REQUEST_COUNTS,
        bursts: int = 3, transports=("tcp", "dctcp")) -> List[Dict]:
    rows: List[Dict] = []
    for transport in transports:
        for tlt in (False, True):
            for requests in request_counts:
                rows.append(run_one(transport, tlt, requests, bursts))
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 12: cache (Redis) incast response times")


if __name__ == "__main__":
    main()
