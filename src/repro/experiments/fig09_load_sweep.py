"""Figure 9 — sensitivity to network load (10-60%), HPCC+PFC and
DCTCP+PFC with and without TLT.

Transports that don't cut their rate on loss (HPCC) benefit from TLT at
every load; loss-reacting transports (DCTCP) benefit until ~50% load,
after which retransmission penalties outweigh the HoL-blocking savings.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

COLUMNS = ["transport", "tlt", "load", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms",
           "pause_per_1k"]


def run(scale="small", seeds: Sequence[int] = (1,),
        loads: Sequence[float] = DEFAULT_LOADS,
        transports=("hpcc", "dctcp")) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        for tlt in (False, True):
            base = ScenarioConfig(transport=transport, tlt=tlt, pfc=True, scale=scale)
            for load in loads:
                row = run_averaged(replace(base, load=load), seeds)
                row["transport"] = transport
                row["tlt"] = tlt
                row["load"] = load
                rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 9: FCT vs network load (PFC on, with/without TLT)")


if __name__ == "__main__":
    main()
