"""Figure 16 (Appendix B) — CDF of segment delivery time.

Delivery time = first transmission of a segment until it is
acknowledged, including retransmissions. The paper: TLT cuts the
99%-ile by ~23% and the 99.9%-ile by ~58% for DCTCP without PFC.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.common import print_table, resolve_scale
from repro.experiments.scenarios import ScenarioConfig, run_scenario

PERCENTILES = (50, 90, 99, 99.9)

COLUMNS = ["scheme"] + [f"p{p}_us" for p in PERCENTILES]


def run(scale="small", seed: int = 1, load: float = 0.3) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for name, tlt in (("dctcp", False), ("dctcp+tlt", True)):
        config = ScenarioConfig(
            transport="dctcp", tlt=tlt, scale=scale, seed=seed, load=load,
            incast_flow_size=16_000,
        )
        result = run_scenario(config)
        samples = np.asarray(result.stats.delivery_samples, dtype=float) / 1e3
        row: Dict = {"scheme": name}
        for p in PERCENTILES:
            row[f"p{p}_us"] = float(np.percentile(samples, p)) if len(samples) else 0.0
        rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS, "Figure 16: segment delivery time CDF (DCTCP)")


if __name__ == "__main__":
    main()
