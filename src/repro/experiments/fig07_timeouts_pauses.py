"""Figure 7 — timeouts per 1k flows, PAUSE frames per 1k flows and the
average fraction of time links are paused.

The paper's takeaways: TLT virtually eliminates timeouts (where the
200 µs timer multiplies them and TLP leaves half); and under PFC, TLT's
proactive red drops cut both the number of PAUSE frames and the total
paused time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import MICROS

COLUMNS = ["transport", "scheme", "timeouts_per_1k", "pause_per_1k",
           "pause_fraction", "important_loss_rate"]


def run(scale="small", seeds: Sequence[int] = (1,), transports=("dctcp", "tcp")) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        base = ScenarioConfig(transport=transport, scale=scale)
        variants = {
            "baseline": base,  # timeout panel (a)
            "tlp": replace(base, tlp=True),
            "rto200us": replace(base, rto_min_ns=200 * MICROS),
            "tlt": replace(base, tlt=True),
            "pfc": replace(base, pfc=True),  # pause panels (b), (c)
            "tlt+pfc": replace(base, tlt=True, pfc=True),
        }
        for name, config in variants.items():
            row = run_averaged(config, seeds)
            row["transport"] = transport
            row["scheme"] = name
            rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 7: timeouts, PAUSE frames and paused time per scheme")


if __name__ == "__main__":
    main()
