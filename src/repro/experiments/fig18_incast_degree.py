"""Figure 18 (Appendix B) — sensitivity to the incast degree.

The per-host number of simultaneous foreground flows sweeps from 2 to
10 (TCP and HPCC, with and without TLT). The paper: TLT's advantage
grows with the incast degree — up to 78.9% (HPCC) and 67.0% (TCP)
lower 99.9% foreground FCT at high degrees.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig

DEFAULT_DEGREES = (2, 4, 6, 8, 10)

COLUMNS = ["transport", "tlt", "degree", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms"]


def run(scale="small", seeds: Sequence[int] = (1,),
        degrees: Sequence[int] = DEFAULT_DEGREES,
        transports=("tcp", "hpcc"),
        flow_size: int = 16_000) -> List[Dict]:
    # The paper uses 8 kB incast flows on 96 hosts; at the scaled-down
    # topology 16 kB keeps the high-degree bursts past the buffer knee
    # (same burst-volume/buffer ratio — see DESIGN.md §6).
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        for tlt in (False, True):
            base = ScenarioConfig(
                transport=transport, tlt=tlt, scale=scale,
                incast_flow_size=flow_size,
            )
            for degree in degrees:
                row = run_averaged(replace(base, incast_flows_per_sender=degree), seeds)
                row.update(transport=transport, tlt=tlt, degree=degree)
                rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS, "Figure 18: FCT vs incast degree")


if __name__ == "__main__":
    main()
