"""Experiment harness: one module per figure/table of the paper.

Every ``figXX_*``/``table1_*`` module exposes ``run(scale=...)``
returning result rows and a ``main()`` that prints them; benchmarks in
``benchmarks/`` call the same entry points so
``pytest benchmarks/ --benchmark-only`` regenerates the evaluation.
"""

from repro.experiments.scenarios import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.scale import SCALES, Scale
from repro.experiments.parallel import (
    ExecutionContext,
    Job,
    JobResult,
    configure,
    execution,
    get_context,
    run_jobs,
)

__all__ = [
    "ScenarioConfig", "ScenarioResult", "run_scenario", "SCALES", "Scale",
    "ExecutionContext", "Job", "JobResult", "configure", "execution",
    "get_context", "run_jobs",
]
