"""Figure 1 — distribution of RTT and estimated RTO for DCTCP.

The paper's motivation: even with RTO_min = 200 µs, dynamic shared
buffers make the RTT so volatile that the *estimated* RTO of foreground
flows is far larger than typical RTTs (>10% of foreground flows end up
with RTO above 1.1 ms while the 90th-percentile RTT is ~0.48 ms).

Output: CDF points (percentiles) of RTT samples and per-flow estimated
RTO for background and foreground flows.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.common import print_table, resolve_scale
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.sim.units import MICROS

PERCENTILES = (10, 25, 50, 75, 90, 99)


def run(scale="small", seed: int = 1) -> List[Dict]:
    config = ScenarioConfig(
        transport="dctcp",
        scale=resolve_scale(scale),
        rto_min_ns=200 * MICROS,
        seed=seed,
    )
    result = run_scenario(config)
    stats = result.stats
    rows: List[Dict] = []
    for group, rtts in (("bg", stats.rtt_samples_bg), ("fg", stats.rtt_samples_fg)):
        rtos = [
            r.final_rto_ns
            for r in stats.flows.values()
            if r.group == group and r.final_rto_ns is not None
        ]
        row: Dict = {"group": group, "metric": "rtt_us"}
        arr = np.asarray(rtts, dtype=float) / 1e3 if rtts else np.array([0.0])
        for p in PERCENTILES:
            row[f"p{p}"] = float(np.percentile(arr, p))
        rows.append(row)
        row = {"group": group, "metric": "rto_us"}
        arr = np.asarray(rtos, dtype=float) / 1e3 if rtos else np.array([0.0])
        for p in PERCENTILES:
            row[f"p{p}"] = float(np.percentile(arr, p))
        if group == "fg" and len(arr):
            row["frac_rto_gt_1.1ms"] = float((arr > 1100).mean())
        rows.append(row)
    return rows


def main(scale="small") -> None:
    rows = run(scale)
    columns = ["group", "metric"] + [f"p{p}" for p in PERCENTILES] + ["frac_rto_gt_1.1ms"]
    print_table(rows, columns, "Figure 1: RTT vs estimated RTO (DCTCP, RTO_min=200us)")


if __name__ == "__main__":
    main()
