"""Parallel experiment execution: a process-pool job runner.

Fans ``(scenario, seed)`` pairs out across CPU cores while keeping the
output *bit-identical* to a serial run:

- every :class:`Job` is independent (one ``run_scenario`` call in a
  fresh process, seeded by its config), so no cross-run state leaks;
- results are keyed by job index and re-ordered before they are
  returned, so callers always see them in submission order;
- metrics reducers run inside the worker (a :class:`ScenarioResult`
  holds the whole network and is too heavy to ship between processes)
  and are addressed by a ``module:qualname`` reference so they pickle
  under any start method.

Fault tolerance: a worker that crashes, hangs past ``timeout_s`` or
raises is retried (``retries`` times, default once) and then reported
as a failed :class:`JobResult` instead of killing the sweep.

Completed jobs are written to the content-addressed on-disk cache
(:mod:`repro.experiments.cache`), so re-runs — including CI — only
execute what changed.

The module-level :class:`ExecutionContext` carries the defaults
(``--jobs``, ``--no-cache``, ``--timeout`` from the CLI); library code
such as :func:`repro.experiments.common.run_averaged` picks them up
without every experiment module having to thread parameters through.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from importlib import import_module
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments import perf
from repro.experiments.cache import ResultCache, fingerprint
from repro.experiments.scenarios import ScenarioConfig, ScenarioResult, run_scenario

ENV_JOBS = "TLT_JOBS"
ENV_START_METHOD = "TLT_MP_START"

#: How often the scheduler polls worker pipes (seconds).
_POLL_INTERVAL_S = 0.05


def default_jobs() -> int:
    try:
        return max(1, int(os.environ.get(ENV_JOBS, "1")))
    except ValueError:
        return 1


@dataclass
class ExecutionContext:
    """Process-wide execution defaults for the job runner."""

    jobs: int = field(default_factory=default_jobs)
    use_cache: bool = True
    cache_dir: Optional[str] = None
    timeout_s: Optional[float] = None
    retries: int = 1


_context = ExecutionContext()


def get_context() -> ExecutionContext:
    return _context


def configure(**kwargs) -> ExecutionContext:
    """Update fields of the current execution context (None = keep)."""
    for name, value in kwargs.items():
        if not hasattr(_context, name):
            raise TypeError(f"unknown execution option {name!r}")
        if value is not None:
            setattr(_context, name, value)
    _context.jobs = max(1, int(_context.jobs))
    return _context


@contextmanager
def execution(**kwargs) -> Iterator[ExecutionContext]:
    """Temporarily swap in a fresh execution context (tests, sweeps)."""
    global _context
    previous = _context
    _context = replace(previous)
    try:
        yield configure(**kwargs)
    finally:
        _context = previous


@dataclass(frozen=True)
class Job:
    """One (scenario, seed) unit of work."""

    index: int
    config: ScenarioConfig
    seed: int
    metrics: Optional[str] = None  # "module:qualname" reducer reference

    def cache_key(self) -> str:
        config = replace(self.config, seed=self.seed)
        # Fold the *resolved* fault schedule into the key: a spec that
        # arrives via the TLT_FAULTS env file is invisible to the config
        # dataclass, and stale cache hits across different fault specs
        # would silently mix chaos runs with clean ones.
        faults = config.resolved_faults()
        if faults != config.faults:
            config = replace(config, faults=faults)
        # Telemetry is deliberately *not* folded in (contrast faults
        # above): it is an observation, not a result — attaching
        # samplers changes no simulation observable, so a telemetry run
        # and a plain run share one cache entry. Corollary: a cache hit
        # re-simulates nothing and emits no telemetry (--no-cache
        # forces fresh streams).
        if config.telemetry is not None:
            config = replace(config, telemetry=None)
        # Sharding is likewise an execution strategy, not a scenario
        # input: a sharded run is bit-identical to the single-core run
        # by contract, so both share one cache entry.
        if config.shards is not None:
            config = replace(config, shards=None)
        # Checkpointing rides the same rule: a checkpointed run
        # continues bit-identically after restore by contract, so the
        # checkpoint directory is execution strategy, not identity.
        # (The full exclusion rule lives in docs/API.md.)
        if config.checkpoint is not None:
            config = replace(config, checkpoint=None)
        return fingerprint(config, self.seed, self.metrics)


@dataclass
class JobResult:
    """Outcome of one job, in submission order."""

    index: int
    row: Optional[Dict] = None
    error: Optional[str] = None
    events: int = 0
    wall_s: float = 0.0
    cached: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.row is not None and self.error is None


def resolve_metrics(ref: Optional[str]) -> Callable[[ScenarioResult], Dict]:
    """Turn a ``module:qualname`` reference back into a callable."""
    if ref is None:
        return lambda result: result.summary_row()
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed metrics reference {ref!r}")
    obj = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def metrics_reference(fn: Optional[Callable]) -> Optional[str]:
    """Importable ``module:qualname`` for ``fn``, or None.

    Lambdas, closures and anything that does not round-trip through an
    import cannot run in a worker process; callers fall back to serial
    in-process execution for those.
    """
    if fn is None:
        return None
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    ref = f"{module}:{qualname}"
    try:
        resolved = resolve_metrics(ref)
    except Exception:
        return None
    return ref if resolved is fn else None


# -- execution ---------------------------------------------------------------


def _execute_raw(job: Job) -> Tuple[Dict, int, float]:
    """Run one job in the current process; returns (row, events, wall_s)."""
    started = time.perf_counter()
    result = run_scenario(replace(job.config, seed=job.seed))
    row = resolve_metrics(job.metrics)(result)
    return row, result.net.engine.events_processed, time.perf_counter() - started


def _execute_inline(job: Job) -> JobResult:
    started = time.perf_counter()
    try:
        row, events, wall_s = _execute_raw(job)
    except Exception as exc:
        return JobResult(index=job.index, error=f"{type(exc).__name__}: {exc}",
                         wall_s=time.perf_counter() - started)
    return JobResult(index=job.index, row=row, events=events, wall_s=wall_s)


def _worker_entry(conn, job: Job) -> None:
    """Worker process body: run the job, ship (status, payload) back."""
    try:
        payload = _execute_raw(job)
        conn.send(("ok", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20)))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context():
    methods = mp.get_all_start_methods()
    preferred = os.environ.get(ENV_START_METHOD)
    if preferred and preferred in methods:
        return mp.get_context(preferred)
    # fork is markedly cheaper and keeps test-defined metrics importable.
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _stop_worker(proc) -> None:
    if not proc.is_alive():
        return
    proc.terminate()
    proc.join(timeout=2)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2)


def _run_pool(jobs: Sequence[Job], slots: int, timeout_s: Optional[float],
              retries: int) -> List[JobResult]:
    """Schedule jobs over up to ``slots`` worker processes."""
    ctx = _mp_context()
    queue = deque((job, 1) for job in jobs)
    running: Dict[object, Tuple[object, Job, int, float]] = {}  # conn -> (proc, ...)
    done: List[JobResult] = []
    try:
        while queue or running:
            while queue and len(running) < slots:
                job, attempt = queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_worker_entry, args=(child_conn, job),
                                   daemon=True)
                proc.start()
                child_conn.close()
                running[parent_conn] = (proc, job, attempt, time.monotonic())
            ready = mp_connection.wait(list(running), timeout=_POLL_INTERVAL_S)
            now = time.monotonic()
            for conn in list(running):
                proc, job, attempt, started = running[conn]
                outcome = None
                if conn in ready:
                    try:
                        outcome = conn.recv()
                    except (EOFError, OSError):
                        proc.join(timeout=5)  # reap so exitcode is readable
                        outcome = ("crash", f"worker exited with code {proc.exitcode} "
                                            "before returning a result")
                elif not proc.is_alive():
                    proc.join(timeout=5)
                    outcome = ("crash", f"worker exited with code {proc.exitcode} "
                                        "before returning a result")
                elif timeout_s is not None and now - started > timeout_s:
                    _stop_worker(proc)
                    outcome = ("crash", f"worker timed out after {timeout_s:g}s "
                                        "and was killed")
                if outcome is None:
                    continue
                del running[conn]
                conn.close()
                _stop_worker(proc)
                proc.join(timeout=5)
                status, payload = outcome
                if status == "ok":
                    row, events, wall_s = payload
                    done.append(JobResult(index=job.index, row=row, events=events,
                                          wall_s=wall_s, attempts=attempt))
                elif attempt <= retries:
                    queue.append((job, attempt + 1))
                else:
                    done.append(JobResult(index=job.index,
                                          error=str(payload).strip(),
                                          attempts=attempt))
    finally:
        for conn, (proc, _job, _attempt, _started) in running.items():
            _stop_worker(proc)
            conn.close()
    return done


def run_jobs(jobs: Sequence[Job], *, jobs_n: Optional[int] = None,
             use_cache: Optional[bool] = None, cache: Optional[ResultCache] = None,
             timeout_s: Optional[float] = None,
             retries: Optional[int] = None) -> List[JobResult]:
    """Run jobs (cache → pool/inline), returning results in submission order.

    Deterministic merging: the result list lines up 1:1 with ``jobs``
    regardless of completion order, worker count or cache hits, so a
    parallel sweep is bit-identical to a serial one.
    """
    ctx = get_context()
    slots = ctx.jobs if jobs_n is None else max(1, int(jobs_n))
    use_cache = ctx.use_cache if use_cache is None else use_cache
    timeout_s = ctx.timeout_s if timeout_s is None else timeout_s
    retries = ctx.retries if retries is None else max(0, int(retries))
    if cache is None and use_cache:
        cache = ResultCache(ctx.cache_dir)

    results: Dict[int, JobResult] = {}
    keys: Dict[int, str] = {}
    pending: List[Job] = []
    seen = set()
    for job in jobs:
        if job.index in seen:
            raise ValueError(f"duplicate job index {job.index}")
        seen.add(job.index)
        if use_cache:
            key = keys[job.index] = job.cache_key()
            artifact = cache.get(key)
            if artifact is not None:
                results[job.index] = JobResult(
                    index=job.index, row=artifact["row"],
                    events=int(artifact.get("events", 0)),
                    wall_s=float(artifact.get("wall_s", 0.0)), cached=True,
                )
                perf.TALLY.add_cached()
                continue
        pending.append(job)

    if pending:
        if slots <= 1 and timeout_s is None:
            # Inline serial path: zero process overhead; run_scenario
            # feeds the perf tally itself.
            executed = [_execute_inline(job) for job in pending]
        else:
            executed = _run_pool(pending, slots, timeout_s, retries)
            for res in executed:
                if res.ok:
                    perf.TALLY.add(res.events, res.wall_s)
        for res in executed:
            results[res.index] = res
            if res.ok and use_cache:
                job = next(j for j in pending if j.index == res.index)
                try:
                    cache.put(keys[res.index], res.row, seed=job.seed,
                              events=res.events, wall_s=res.wall_s)
                except OSError as exc:  # a read-only cache dir must not kill a sweep
                    print(f"warning: could not write result cache: {exc}",
                          file=sys.stderr)
    missing = [job.index for job in jobs if job.index not in results]
    if missing:
        raise RuntimeError(f"job runner lost results for indices {missing}")
    return [results[job.index] for job in jobs]
