"""Figure 5 — FCT for TCP and DCTCP across recovery schemes.

Load 40%, 5% foreground, color-aware dropping threshold 400 kB. The
paper's key observations: (1) with PFC the foreground tail drops but
background FCT balloons (HoL blocking); (2) TLT cuts the foreground
99.9%-ile by ~80% versus the 4 ms baseline with only a slight increase
in background FCT and performs similarly with or without PFC.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.schemes import tcp_schemes

COLUMNS = ["transport", "scheme", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms",
           "timeouts_per_1k", "incomplete"]


def run(scale="small", seeds: Sequence[int] = (1,), transports=("dctcp", "tcp")) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for transport in transports:
        base = ScenarioConfig(transport=transport, scale=scale)
        for name, config in tcp_schemes(base).items():
            row = run_averaged(config, seeds)
            row["transport"] = transport
            row["scheme"] = name
            rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 5: FCT for TCP/DCTCP (40% load, 5% fg, K=400kB)")


if __name__ == "__main__":
    main()
