"""Figure 2 — the aggressive-static-RTO strawman (§2.2).

A fixed 160 µs RTO (2x base RTT) against the 4 ms RTO_min baseline with
15% foreground traffic. The paper's finding: the fixed RTO improves
foreground tails (~41%) but inflates background FCT (~113%) through a
~51x increase in (often spurious) timeouts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import MICROS


def run(scale="small", seeds: Sequence[int] = (1,)) -> List[Dict]:
    base = ScenarioConfig(transport="dctcp", scale=resolve_scale(scale), fg_share=0.15)
    variants = {
        "baseline_4ms": base,
        "fixed_160us": replace(base, fixed_rto_ns=160 * MICROS),
    }
    rows = []
    for name, config in variants.items():
        row = run_averaged(config, seeds)
        row["scheme"] = name
        rows.append(row)
    if rows[0]["timeouts_per_1k"] > 0:
        rows[1]["timeout_ratio_vs_baseline"] = (
            rows[1]["timeouts_per_1k"] / rows[0]["timeouts_per_1k"]
        )
    return rows


def main(scale="small") -> None:
    rows = run(scale)
    print_table(
        rows,
        ["scheme", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms", "timeouts_per_1k",
         "timeout_ratio_vs_baseline"],
        "Figure 2: fixed 160us RTO vs 4ms RTO_min (DCTCP, 15% foreground)",
    )


if __name__ == "__main__":
    main()
