"""Extension — chaos sweep: the §5 fallback claim under injected faults.

Two parts:

- **fallback** — uniform non-congestion corruption at every switch at
  loss rates 0.01% / 0.1% / 1%, baseline transport vs TLT on the same
  fault schedule. The paper's §5 claim: TLT degrades gracefully to the
  underlying transport — random loss kills green packets too, so TLT
  falls back to the RTO like the baseline does, and its FCT is no
  worse at any non-congestion loss rate. Rows where both stacks are
  fault-RTO-bound compare as statistical ties (see :func:`_no_worse`).
- **chaos** — a seed-derived random :class:`repro.faults.FaultSchedule`
  (corruption bursts, link flaps with reroute/blackhole windows, PFC
  storms) per seed. Run under ``--audit`` this doubles as a property
  check: whatever the fault pattern, the §4 green-drop faithfulness
  checker and every conservation checker stay silent — only *fault*
  drops ever touch green packets.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scale import Scale
from repro.experiments.scenarios import ScenarioConfig, build_network
from repro.faults.schedule import FaultSchedule
from repro.sim.rng import derive_seed
from repro.sim.units import MILLIS

#: Injected non-congestion loss rates (0.01%, 0.1%, 1%).
FAULT_RATES = (1e-4, 1e-3, 1e-2)

COLUMNS = [
    "loss_rate", "fct_base_ms", "fct_tlt_ms", "timeouts_base", "timeouts_tlt",
    "fault_drops", "tlt_no_worse",
]
CHAOS_COLUMNS = [
    "chaos_seed", "fault_events", "fault_drops", "timeouts_per_1k",
    "fg_p99_ms", "incomplete",
]

#: Window faults are placed in for the chaos schedules.
CHAOS_HORIZON_NS = 2 * MILLIS


def corruption_spec(scale: Scale, rate: float) -> Dict:
    """Bernoulli corruption on every switch of the leaf-spine fabric."""
    targets = [f"tor{i}" for i in range(scale.num_tors)]
    targets += [f"spine{i}" for i in range(scale.num_spines)]
    return {
        "events": [
            {
                "time_ns": 0,
                "kind": "corruption_on",
                "target": target,
                "params": {"model": "bernoulli", "rate": rate},
            }
            for target in targets
        ]
    }


def chaos_spec(config: ScenarioConfig, chaos_seed: int) -> Dict:
    """A random-but-reproducible fault schedule for ``config``'s fabric."""
    # Throwaway network: only used to enumerate valid fault targets.
    net = build_network(config)
    rng = random.Random(derive_seed(chaos_seed, "fault.chaos"))
    return FaultSchedule.random(rng, CHAOS_HORIZON_NS, net, max_faults=4).to_spec()


#: Absolute slack (ms) for declaring the FCT comparison a tie — half
#: an RTO_min: a gap smaller than a single timeout cannot be a
#: fallback failure, only tail jitter.
FCT_TIE_MS = 0.1


def _fct_ms(row: Dict) -> float:
    """Comparison metric: p99 foreground FCT — the paper's headline
    number. At low corruption rates both stacks tie (corruption rarely
    hits the tail flow); at high rates the baseline's RTO-driven tail
    explodes while TLT's fallback keeps it flat."""
    return row["fg_p99_ms"]


def _no_worse(base: Dict, tlt: Dict) -> float:
    """1.0 when TLT's FCT is no worse than the baseline's.

    "No worse" allows a statistical tie: at corruption rates where both
    stacks are fault-RTO-bound the tail is noise in either direction,
    so TLT only counts as *worse* when it exceeds the baseline by more
    than the baseline's own seed-to-seed deviation (and never over a
    sub-timeout absolute gap)."""
    slack = max(base.get("fg_p99_ms_std", 0.0), 0.05 * _fct_ms(base), FCT_TIE_MS)
    return float(_fct_ms(tlt) <= _fct_ms(base) + slack)


def run(scale="small", seeds: Sequence[int] = (1, 2, 3)) -> Dict[str, List[Dict]]:
    scale = resolve_scale(scale)
    fallback_rows: List[Dict] = []
    for rate in FAULT_RATES:
        spec = corruption_spec(scale, rate)
        base = run_averaged(
            ScenarioConfig(transport="dctcp", tlt=False, scale=scale, faults=spec),
            seeds,
        )
        tlt = run_averaged(
            ScenarioConfig(transport="dctcp", tlt=True, scale=scale, faults=spec),
            seeds,
        )
        fallback_rows.append(
            {
                "loss_rate": rate,
                "fct_base_ms": _fct_ms(base),
                "fct_tlt_ms": _fct_ms(tlt),
                "timeouts_base": base["timeouts_per_1k"],
                "timeouts_tlt": tlt["timeouts_per_1k"],
                "fault_drops": tlt["fault_drops"],
                "tlt_no_worse": _no_worse(base, tlt),
            }
        )

    chaos_rows: List[Dict] = []
    for seed in seeds:
        config = ScenarioConfig(transport="dctcp", tlt=True, scale=scale, seed=seed)
        spec = chaos_spec(config, seed)
        row = run_averaged(replace(config, faults=spec), (seed,))
        chaos_rows.append(
            {
                "chaos_seed": float(seed),
                "fault_events": float(len(spec["events"])),
                "fault_drops": row["fault_drops"],
                "timeouts_per_1k": row["timeouts_per_1k"],
                "fg_p99_ms": row["fg_p99_ms"],
                "incomplete": row["incomplete"],
            }
        )
    return {"fallback": fallback_rows, "chaos": chaos_rows}


def main(scale="small") -> None:
    result = run(scale)
    print_table(result["fallback"], COLUMNS,
                "Extension: §5 fallback — TLT vs baseline under corruption")
    print_table(result["chaos"], CHAOS_COLUMNS,
                "Extension: chaos schedules (flaps, storms, bursts) under TLT")


if __name__ == "__main__":
    main()
