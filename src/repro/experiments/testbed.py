"""Shared setup for the emulated-testbed experiments (§7.3-§7.4).

The paper's testbed: 9-10 servers on a 40 GbE Tomahawk ToR (16 MB
shared buffer, dynamic allocation giving a single busy port up to
~1.8 MB), color-aware dropping threshold 270 kB (≈ testbed BDP), DCTCP
ECN marking at 200 kB. We reproduce that as a star topology whose
per-port buffer share (375 kB x 10 ports, α=1) yields the same ~1.8 MB
single-port ceiling.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TltConfig
from repro.net.topology import Network, TopologyParams, star
from repro.sim.units import GBPS, KB, MICROS, MILLIS
from repro.switchsim.ecn import StepEcn
from repro.switchsim.pfc import PfcConfig
from repro.switchsim.switch import SwitchConfig
from repro.transport.base import TransportConfig

#: Testbed parameters (§6).
TESTBED_COLOR_THRESHOLD = 270 * KB
TESTBED_ECN_K = 200 * KB
TESTBED_LINK_DELAY_NS = 2 * MICROS  # ~8 us base RTT through one switch


def build_testbed(
    num_hosts: int = 10,
    transport: str = "dctcp",
    tlt: bool = False,
    pfc: bool = False,
    color_threshold: int = TESTBED_COLOR_THRESHOLD,
    seed: int = 1,
    admission=None,
) -> Network:
    """A star 'testbed' with paper switch settings.

    ``admission`` selects the ToR's admission policy (a spec for
    :func:`repro.switchsim.policy.make_policy`; None = the default
    Choudhury–Hahne + static-K).
    """
    config = SwitchConfig(
        buffer_bytes=num_hosts * 375 * KB,
        color_threshold_bytes=color_threshold if tlt else None,
        ecn=StepEcn(TESTBED_ECN_K) if transport == "dctcp" else None,
        pfc=PfcConfig(enabled=pfc),
        int_enabled=(transport == "hpcc"),
        admission=admission,
    )
    params = TopologyParams(
        link_rate_bps=40 * GBPS,
        host_link_delay_ns=TESTBED_LINK_DELAY_NS,
        fabric_link_delay_ns=TESTBED_LINK_DELAY_NS,
        switch_config=config,
    )
    return star(num_hosts=num_hosts, params=params, seed=seed)


def testbed_transport_config(rto_min_ns: int = 4 * MILLIS) -> TransportConfig:
    return TransportConfig(base_rtt_ns=4 * TESTBED_LINK_DELAY_NS, rto_min_ns=rto_min_ns)


def maybe_tlt(tlt: bool) -> Optional[TltConfig]:
    return TltConfig() if tlt else None
