"""Export experiment rows to CSV/JSON for external plotting and CI."""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Sequence


def rows_to_csv(rows: Iterable[Dict], path: str, columns: Sequence[str] = ()) -> str:
    """Write rows to ``path`` (directories created); returns the path.

    When ``columns`` is empty, the union of all row keys is used, in
    first-seen order.
    """
    rows = list(rows)
    if not columns:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in columns})
    return path


def write_json(payload: Dict, path: str) -> str:
    """Write a JSON document to ``path`` (directories created); returns
    the path. Used for ``tlt-experiment bench-report`` artifacts."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
