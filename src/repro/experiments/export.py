"""Export experiment rows to CSV for external plotting."""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Sequence


def rows_to_csv(rows: Iterable[Dict], path: str, columns: Sequence[str] = ()) -> str:
    """Write rows to ``path`` (directories created); returns the path.

    When ``columns`` is empty, the union of all row keys is used, in
    first-seen order.
    """
    rows = list(rows)
    if not columns:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in columns})
    return path
