"""Figure 17 (Appendix B) — adaptive important ACK-clocking ablation.

Three clocking policies under DCTCP+TLT+PFC: always 1 MTU (fast
recovery, heavy bandwidth, more PAUSE), always 1 byte (cheap but slow
recovery) and the paper's adaptive policy (near-MTU recovery speed at a
fraction of the clocking bytes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import ClockingPolicy, TltConfig
from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig

COLUMNS = ["policy", "fg_p99_ms", "fg_p999_ms", "clocking_kB", "pause_per_1k"]


def clocking_metrics(result):
    """Summary row plus clocking bytes (module-level so the parallel
    runner can address it from worker processes and cache on it)."""
    row = result.summary_row()
    row["clocking_kB"] = result.stats.clocking_bytes / 1e3
    return row


def run(scale="small", seeds: Sequence[int] = (1,)) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for policy in (ClockingPolicy.ALWAYS_MTU, ClockingPolicy.ALWAYS_1B,
                   ClockingPolicy.ADAPTIVE):
        config = ScenarioConfig(
            transport="dctcp", tlt=True, pfc=True, scale=scale,
            tlt_config=TltConfig(clocking=policy),
        )
        row = run_averaged(config, seeds, metrics=clocking_metrics)
        row["policy"] = policy.value
        rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 17: important ACK-clocking policy ablation (DCTCP+TLT+PFC)")


if __name__ == "__main__":
    main()
