"""Figure 11 — (a) important fraction vs threshold K; (b) queue sizes.

TLT keeps the unimportant (red) queue under the color-aware dropping
threshold and the *total* maximum queue well below vanilla DCTCP's
burst-driven maximum, while the median queue stays near/below K_ECN.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.common import print_table, resolve_scale
from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.sim.units import KB

DEFAULT_THRESHOLDS = tuple(k * KB for k in (100, 200, 400, 700))

COLUMNS_A = ["threshold_kB", "important_fraction", "important_loss_rate"]
COLUMNS_B = ["scheme", "max_queue_kB", "max_red_queue_kB", "median_queue_kB"]


def run_fraction(scale="small", seed: int = 1,
                 thresholds: Sequence[int] = DEFAULT_THRESHOLDS) -> List[Dict]:
    """Panel (a): fraction of important packets by threshold (fg 5%)."""
    scale = resolve_scale(scale)
    base = ScenarioConfig(transport="dctcp", tlt=True, scale=scale, seed=seed)
    rows = []
    for k in thresholds:
        result = run_scenario(replace(base, color_threshold_bytes=k))
        rows.append(
            {
                "threshold_kB": k // KB,
                "important_fraction": result.stats.important_fraction_bytes(),
                "important_loss_rate": result.stats.important_loss_rate(),
            }
        )
    return rows


def run_queues(scale="small", seed: int = 1) -> List[Dict]:
    """Panel (b): queue occupancy with and without TLT (DCTCP)."""
    scale = resolve_scale(scale)
    rows = []
    for name, tlt in (("dctcp", False), ("dctcp+tlt", True)):
        config = ScenarioConfig(transport="dctcp", tlt=tlt, scale=scale, seed=seed)
        result = run_scenario(config)
        max_queue = max(s.max_queue_occupancy() for s in result.net.switches)
        max_red = max(s.max_red_occupancy() for s in result.net.switches)
        median = float(np.median(result.queue_samples)) if result.queue_samples else 0.0
        rows.append(
            {
                "scheme": name,
                "max_queue_kB": max_queue / KB,
                "max_red_queue_kB": max_red / KB,
                "median_queue_kB": median / KB,
            }
        )
    return rows


def run(scale="small", seed: int = 1) -> Dict[str, List[Dict]]:
    return {"fraction": run_fraction(scale, seed), "queues": run_queues(scale, seed)}


def main(scale="small") -> None:
    results = run(scale)
    print_table(results["fraction"], COLUMNS_A,
                "Figure 11a: important fraction vs threshold")
    print_table(results["queues"], COLUMNS_B,
                "Figure 11b: queue occupancy with/without TLT")


if __name__ == "__main__":
    main()
