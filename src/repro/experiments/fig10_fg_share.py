"""Figure 10 — fraction of important packets vs foreground share.

With no foreground traffic only ~3% of bytes are important; the
fraction grows with the incast share because short flows have a higher
important fraction and congestion shrinks windows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig

DEFAULT_SHARES = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20)

COLUMNS = ["fg_share", "important_fraction", "important_loss_rate", "fg_p999_ms"]


def run(scale="small", seeds: Sequence[int] = (1,),
        shares: Sequence[float] = DEFAULT_SHARES) -> List[Dict]:
    scale = resolve_scale(scale)
    base = ScenarioConfig(transport="dctcp", tlt=True, scale=scale)
    rows: List[Dict] = []
    for share in shares:
        if share <= 0:
            config = replace(base, enable_incast=False)
        else:
            config = replace(base, fg_share=share)
        row = run_averaged(config, seeds)
        row["fg_share"] = share
        rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 10: fraction of important packets vs foreground share")


if __name__ == "__main__":
    main()
