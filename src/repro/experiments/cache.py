"""Content-addressed on-disk cache for experiment job results.

A job is identified by the SHA-256 fingerprint of its fully resolved
:class:`~repro.experiments.scenarios.ScenarioConfig` (every field,
recursively, including nested dataclasses and enums), the seed, the
metrics function used to reduce the run, and the code version. Results
are stored as one small JSON artifact per key, so re-running an
experiment — locally or in CI — only executes the (scenario, seed)
pairs whose configuration or code actually changed.

The cache directory defaults to ``~/.cache/tlt-repro`` and can be
moved with the ``TLT_CACHE_DIR`` environment variable or the
``--cache-dir`` CLI flag. The code-version component prefers the git
commit of the source tree (so editing + committing invalidates
everything) and falls back to the package version for non-git
installs; when iterating on uncommitted changes, pass ``--no-cache``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import tempfile
import time
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

from repro.version import __version__

#: Bump to invalidate every cached artifact on cache-format changes.
CACHE_SCHEMA = 1

ENV_CACHE_DIR = "TLT_CACHE_DIR"
ENV_CODE_VERSION = "TLT_CACHE_VERSION"

_code_version_memo: Optional[str] = None


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "tlt-repro"


def code_version() -> str:
    """Version string mixed into every fingerprint.

    ``TLT_CACHE_VERSION`` env override > git HEAD of the source tree >
    package ``__version__``. Memoised per process.
    """
    global _code_version_memo
    override = os.environ.get(ENV_CODE_VERSION)
    if override:
        return override
    if _code_version_memo is None:
        _code_version_memo = _git_head() or f"pkg-{__version__}"
    return _code_version_memo


def _git_head() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "-C", os.path.dirname(os.path.abspath(__file__)),
             "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    head = out.stdout.strip()
    return f"git-{head}" if out.returncode == 0 and head else None


def encode_value(value: Any) -> Any:
    """Recursively encode a config value into canonical JSON-able data.

    Dataclasses keep their type name (so two config classes with the
    same field values hash differently), enums encode their value, and
    sets are sorted for order independence. Unknown objects fall back
    to ``repr`` — stable enough for config-style values.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": encode_value(value.value)}
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((encode_value(v) for v in value), key=repr)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def fingerprint(config: Any, seed: int, metrics: Optional[str] = None,
                version: Optional[str] = None) -> str:
    """Content hash of (config, seed, metrics reducer, code version)."""
    payload = {
        "schema": CACHE_SCHEMA,
        "code": version if version is not None else code_version(),
        "config": encode_value(config),
        "seed": int(seed),
        "metrics": metrics,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """One JSON artifact per fingerprint under ``root``."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """Return the cached artifact for ``key`` or None.

        Corrupt or partially written artifacts count as misses rather
        than raising (a crashed writer must not poison later sweeps).
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
            if not isinstance(artifact, dict) or artifact.get("key") != key:
                raise ValueError("artifact/key mismatch")
            if "row" not in artifact:
                raise ValueError("truncated artifact")
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(self, key: str, row: Dict, *, seed: Optional[int] = None,
            events: int = 0, wall_s: float = 0.0) -> Path:
        """Atomically write one result artifact; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "key": key,
            "row": row,
            "seed": seed,
            "events": int(events),
            "wall_s": float(wall_s),
            "created_unix": time.time(),
            "code": code_version(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
