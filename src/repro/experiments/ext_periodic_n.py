"""Extension — sensitivity to the periodic marking interval N (§5.2).

For rate-based TLT on vanilla DCQCN, one extra packet in every N is
marked important so long flows detect losses promptly. The paper
(footnote 2) reports TLT is insensitive to N: tail FCT differs by less
than 3% between N = 96 and N = 384. This ablation sweeps N, including
"disabled" (last-packet marking only).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.config import TltConfig
from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig

DEFAULT_NS: Sequence[Optional[int]] = (None, 48, 96, 192, 384)

COLUMNS = ["periodic_n", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms",
           "important_fraction", "timeouts_per_1k"]


def run(scale="small", seeds: Sequence[int] = (1,),
        ns: Sequence[Optional[int]] = DEFAULT_NS) -> List[Dict]:
    scale = resolve_scale(scale)
    base = ScenarioConfig(transport="dcqcn", tlt=True, scale=scale)
    rows: List[Dict] = []
    for n in ns:
        config = replace(base, tlt_config=TltConfig(periodic_n=n))
        row = run_averaged(config, seeds)
        row["periodic_n"] = "off" if n is None else n
        rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Extension: periodic marking interval N (vanilla DCQCN + TLT)")


if __name__ == "__main__":
    main()
