"""Extension — sharded-execution scaling benchmark.

Runs one incast-heavy leaf-spine scenario twice — single-core and
split across N shard workers (:mod:`repro.sim.sharding`) — and
reports wall time, events/sec and the sharded speedup. The two runs
are bit-identical by contract, and this benchmark asserts the cheap
projection of that contract (same duration, same merged event count)
on every invocation, so a scaling regression and a determinism
regression are both visible in ``bench-report`` output.

The default fabric is the paper-scale 96-host leaf-spine (4 spines x
12 ToRs x 8 hosts) with a benchmark-sized workload: heavy enough that
per-window barrier costs amortize, light enough for CI. ``--scale
tiny`` keeps the determinism-suite fabric for smoke use.

Speedup expectations: on a multi-core runner the sharded run should
clear 1.5x at 4 shards; on a single hardware core it degrades to
barrier overhead (<1x) — the ``cores`` field records which situation
produced the numbers.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.experiments.common import print_table
from repro.experiments.scale import Scale, TINY
from repro.experiments.scenarios import ScenarioConfig, run_scenario

#: Paper-scale fabric (96 hosts) with a benchmark-sized workload.
SHARD96 = Scale("shard96", num_spines=4, num_tors=12, hosts_per_tor=8,
                bg_flows=200, incast_events=8, incast_flows_per_sender=8)

COLUMNS = ["mode", "shards", "hosts", "wall_s", "events", "ev_per_s",
           "speedup", "identical"]


def default_shards() -> int:
    return max(2, min(4, os.cpu_count() or 1))


def run(scale="small", seed: int = 1, shards: Optional[int] = None) -> List[Dict]:
    name = scale if isinstance(scale, str) else scale.name
    fabric = TINY if name == "tiny" else SHARD96
    shards = default_shards() if shards is None else max(2, int(shards))
    base = ScenarioConfig(transport="dctcp", tlt=True, scale=fabric,
                          seed=seed, audit=False)

    rows: List[Dict] = []
    signatures = []
    for n in (1, shards):
        started = time.perf_counter()
        result = run_scenario(replace(base, shards=n))
        wall_s = time.perf_counter() - started
        events = result.net.engine.events_processed
        signatures.append((result.duration_ns, events,
                           result.net.stats.timeouts,
                           len(result.net.stats.flows)))
        rows.append({
            "mode": "single" if n == 1 else "sharded",
            "shards": n,
            "hosts": fabric.num_hosts,
            "wall_s": round(wall_s, 3),
            "events": events,
            "ev_per_s": round(events / wall_s) if wall_s > 0 else None,
            "speedup": None,
            "identical": None,
        })

    identical = signatures[0] == signatures[1]
    single, sharded = rows
    if single["wall_s"] and sharded["wall_s"]:
        sharded["speedup"] = round(single["wall_s"] / sharded["wall_s"], 2)
    sharded["identical"] = identical
    sharded["cores"] = os.cpu_count()
    if not identical:
        raise AssertionError(
            f"sharded run diverged from single-core: {signatures[0]} != {signatures[1]}"
        )
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Extension: sharded execution scaling (bit-identical by contract)")
