"""CLI: regenerate any figure/table of the paper.

Usage::

    tlt-experiment list
    tlt-experiment fig05 --scale small
    tlt-experiment fig05 --scale small --seeds 5 --jobs 4
    tlt-experiment all --scale tiny --jobs 2
    tlt-experiment bench-report --scale tiny --out BENCH_tiny.json

``--jobs N`` fans seeded runs out over N worker processes (results are
bit-identical to a serial run), ``--seeds N`` averages seeds 1..N on
modules that support seed averaging, and completed runs are served
from the on-disk result cache (disable with ``--no-cache``; see
``repro.experiments.cache``). ``bench-report`` times every experiment
and writes a machine-readable ``BENCH_*.json`` with wall time and
simulated events/sec — the input of ``tools/check_bench_regression.py``.
``--profile`` wraps a run in :class:`repro.sim.profiler.Profiler` and
writes ``profile_<id>.pstats`` + ``profile_<id>.json``.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import platform
import sys
import time
from typing import Dict, List

from repro.experiments import parallel, perf
from repro.experiments.export import rows_to_csv, write_json
from repro.version import __version__

EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_rto_cdf",
    "fig02": "repro.experiments.fig02_fixed_rto",
    "fig05": "repro.experiments.fig05_tcp_family",
    "fig06": "repro.experiments.fig06_roce_family",
    "fig07": "repro.experiments.fig07_timeouts_pauses",
    "fig08": "repro.experiments.fig08_threshold_sweep",
    "fig09": "repro.experiments.fig09_load_sweep",
    "fig10": "repro.experiments.fig10_fg_share",
    "fig11": "repro.experiments.fig11_queue_behavior",
    "fig12": "repro.experiments.fig12_redis_incast",
    "fig13": "repro.experiments.fig13_mixed_traffic",
    "fig14": "repro.experiments.fig14_incast_microbench",
    "fig15": "repro.experiments.fig15_workloads",
    "fig16": "repro.experiments.fig16_delivery_cdf",
    "fig17": "repro.experiments.fig17_clocking_ablation",
    "fig18": "repro.experiments.fig18_incast_degree",
    "table1": "repro.experiments.table1_important_loss",
    # Extensions beyond the paper's evaluation section.
    "ext-incremental": "repro.experiments.ext_incremental",
    "ext-periodic-n": "repro.experiments.ext_periodic_n",
    "ext-corruption": "repro.experiments.ext_corruption",
    "ext-faults": "repro.experiments.ext_faults",
    "ext-multipath": "repro.experiments.ext_multipath",
    "ext-policies": "repro.experiments.ext_policies",
    "ext-shard-scale": "repro.experiments.ext_shard_scale",
    "service-slo": "repro.experiments.service_slo",
}


def _call_run(module, scale: str, seeds_n: int):
    """Invoke ``module.run`` with seeds 1..N when the module supports it."""
    kwargs = {"scale": scale}
    if seeds_n > 1:
        parameters = inspect.signature(module.run).parameters
        if "seeds" in parameters:
            kwargs["seeds"] = tuple(range(1, seeds_n + 1))
        else:
            print(f"note: {module.__name__} runs single-seed; --seeds ignored",
                  file=sys.stderr)
    return module.run(**kwargs)


def _print_rows(module, result) -> None:
    """Generic table print for the --seeds path (module.main only takes
    a scale, so curated printing is bypassed when seeds are requested)."""
    from repro.experiments.common import print_table

    parts = result if isinstance(result, dict) else {"": result}
    for part, rows in parts.items():
        if not rows:
            continue
        columns = getattr(module, "COLUMNS", None)
        if not columns or any(c not in rows[0] for c in columns):
            columns = list(rows[0].keys())
        print_table(rows, columns, part)


def _run_one(name: str, args) -> None:
    module = importlib.import_module(EXPERIMENTS[name])
    started = time.time()

    def execute() -> None:
        if args.csv or (args.seeds or 1) > 1:
            result = _call_run(module, args.scale, args.seeds or 1)
            if args.csv:
                parts = result if isinstance(result, dict) else {None: result}
                for part, rows in parts.items():
                    suffix = f"_{part}" if part else ""
                    path = rows_to_csv(rows, f"{args.csv}/{name}{suffix}.csv")
                    print(f"wrote {path}")
            else:
                _print_rows(module, result)
        else:
            module.main(scale=args.scale)

    if args.profile:
        from repro.sim.profiler import Profiler

        with Profiler(tag=name, out_dir=args.profile_dir) as profiler:
            execute()
        print(f"wrote {profiler.pstats_path}")
        print(f"wrote {profiler.json_path}")
    else:
        execute()
    print(f"[{name} completed in {time.time() - started:.1f}s]\n")


def _bench_report(names: List[str], args) -> int:
    """Time every experiment; write wall time + events/sec as JSON."""
    from repro.sim import backend as backend_mod

    # Resolve once: the whole report runs under one backend, and the
    # regression gate keys its baseline on this name.
    active_backend = backend_mod.current_backend()
    report = {
        "schema": 1,
        "scale": args.scale,
        "jobs": parallel.get_context().jobs,
        "python": platform.python_version(),
        "version": __version__,
        "backend": active_backend,
        "experiments": {},
    }
    total_wall = 0.0
    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        perf.TALLY.reset()
        started = time.perf_counter()
        _call_run(module, args.scale, args.seeds or 1)
        wall_s = time.perf_counter() - started
        total_wall += wall_s
        snap = perf.TALLY.snapshot()
        rate = snap["events"] / snap["wall_s"] if snap["wall_s"] > 0 else None
        report["experiments"][name] = {
            "wall_s": round(wall_s, 3),
            "sim_events": snap["events"],
            "sim_wall_s": round(snap["wall_s"], 3),
            "runs": snap["runs"],
            "cached_runs": snap["cached_runs"],
            "events_per_sec": round(rate) if rate else None,
            "backend": active_backend,
        }
        shown = f"{round(rate):,} events/s" if rate else "cached/no sim"
        print(f"{name:16s} {active_backend:9s} {wall_s:8.1f}s  {shown}")
    report["total_wall_s"] = round(total_wall, 3)
    path = write_json(report, args.out or f"BENCH_{args.scale}.json")
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tlt-experiment",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig05), 'all', 'list' or 'bench-report'")
    parser.add_argument("--scale", default="small",
                        help="tiny | small | medium | paper (default: small)")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="average seeds 1..N on modules that support it (default: 1)")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="run up to N (scenario, seed) jobs in parallel worker "
                             "processes (default: $TLT_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always execute; do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: $TLT_CACHE_DIR or "
                             "~/.cache/tlt-repro)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="kill+retry a single run after this many seconds "
                             "(forces worker processes)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the run: wraps it in cProfile + the "
                             "engine's per-callback attribution and writes "
                             "profile_<id>.pstats and profile_<id>.json "
                             "(forces --jobs 1 and --no-cache so the work "
                             "actually happens in this process)")
    parser.add_argument("--profile-dir", default=".", metavar="DIR",
                        help="directory for --profile output files (default: .)")
    parser.add_argument("--audit", action="store_true",
                        help="run with the runtime invariant auditor attached "
                             "(raises AuditError with a trace dump on any "
                             "violated simulation invariant)")
    parser.add_argument("--faults", default=None, metavar="SPEC.JSON",
                        help="inject a fault schedule (corruption, link flaps, "
                             "switch failure, PFC storms; see repro.faults) "
                             "into every run of the sweep")
    parser.add_argument("--telemetry", default=None, metavar="OUTDIR",
                        help="attach the telemetry subsystem to every run: "
                             "streaming JSONL samples, Prometheus exposition, "
                             "an ASCII run report and flight-recorder dumps "
                             "into OUTDIR; per-worker streams are merged into "
                             "OUTDIR/merged.jsonl after the sweep (cached "
                             "runs are not re-simulated and emit no "
                             "telemetry — combine with --no-cache for fresh "
                             "streams)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="service runs only: save a mid-run simulation "
                             "checkpoint into DIR at the arrival-span "
                             "midpoint (pure backend; resume with "
                             "repro.service.resume_service; excluded from "
                             "cache keys like --telemetry/--shards, so "
                             "combine with --no-cache to force execution)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="split every leaf-spine run across N shard worker "
                             "processes synchronized by conservative lookahead "
                             "(bit-identical results by contract; excluded from "
                             "cache keys, so combine with --no-cache to force "
                             "sharded execution; orthogonal to --jobs, which "
                             "parallelizes across runs)")
    parser.add_argument("--csv", default=None, metavar="DIR",
                        help="also write the result rows as CSV files into DIR")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="bench-report output path (default: BENCH_<scale>.json)")
    parser.add_argument("--only", default=None, metavar="IDS",
                        help="bench-report: comma-separated subset of experiments")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            print(f"{name:8s} {module}")
        return 0

    if args.seeds is not None and args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2

    if args.audit:
        # Via the environment so pool workers (fork or spawn) inherit it.
        os.environ["TLT_AUDIT"] = "1"

    if args.faults:
        from repro.faults.schedule import FaultSchedule

        try:
            FaultSchedule.load(args.faults)  # fail fast on a bad spec
        except (OSError, ValueError, KeyError) as exc:
            print(f"--faults {args.faults}: {exc}", file=sys.stderr)
            return 2
        # Via the environment so pool workers inherit it; the resolved
        # spec is folded into result-cache keys (Job.cache_key).
        os.environ["TLT_FAULTS"] = os.path.abspath(args.faults)

    if args.telemetry:
        # Via the environment so pool workers inherit it. Telemetry is
        # excluded from cache keys (observation, not result).
        os.environ["TLT_TELEMETRY"] = os.path.abspath(args.telemetry)

    if args.checkpoint:
        # Via the environment so pool workers inherit it. Like
        # telemetry and shards, a checkpoint is execution strategy,
        # not a scenario input: cache keys ignore it.
        os.environ["TLT_CHECKPOINT"] = os.path.abspath(args.checkpoint)

    if args.shards is not None:
        if args.shards < 1:
            print("--shards must be >= 1", file=sys.stderr)
            return 2
        # Via the environment so ScenarioConfig.resolved_shards picks it
        # up in pool workers too. Like telemetry, sharding is an
        # execution strategy, not a scenario input: cache keys ignore it.
        os.environ["TLT_SHARDS"] = str(args.shards)

    if args.profile:
        # Worker processes would escape the profiler, and cache hits
        # would leave it nothing to measure.
        args.jobs = 1
        args.no_cache = True

    parallel.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
    )

    if args.experiment == "bench-report":
        names = args.only.split(",") if args.only else list(EXPERIMENTS)
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
            return 2
        return _bench_report(names, args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        _run_one(name, args)

    if args.telemetry:
        # Deterministic merge of per-worker streams by (seed, sim time).
        from repro.telemetry import merge_streams

        merged, count = merge_streams(args.telemetry)
        if merged:
            print(f"merged {count} telemetry records -> {merged}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
