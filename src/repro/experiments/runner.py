"""CLI: regenerate any figure/table of the paper.

Usage::

    tlt-experiment list
    tlt-experiment fig05 --scale small
    tlt-experiment all --scale tiny
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Dict

EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_rto_cdf",
    "fig02": "repro.experiments.fig02_fixed_rto",
    "fig05": "repro.experiments.fig05_tcp_family",
    "fig06": "repro.experiments.fig06_roce_family",
    "fig07": "repro.experiments.fig07_timeouts_pauses",
    "fig08": "repro.experiments.fig08_threshold_sweep",
    "fig09": "repro.experiments.fig09_load_sweep",
    "fig10": "repro.experiments.fig10_fg_share",
    "fig11": "repro.experiments.fig11_queue_behavior",
    "fig12": "repro.experiments.fig12_redis_incast",
    "fig13": "repro.experiments.fig13_mixed_traffic",
    "fig14": "repro.experiments.fig14_incast_microbench",
    "fig15": "repro.experiments.fig15_workloads",
    "fig16": "repro.experiments.fig16_delivery_cdf",
    "fig17": "repro.experiments.fig17_clocking_ablation",
    "fig18": "repro.experiments.fig18_incast_degree",
    "table1": "repro.experiments.table1_important_loss",
    # Extensions beyond the paper's evaluation section.
    "ext-incremental": "repro.experiments.ext_incremental",
    "ext-periodic-n": "repro.experiments.ext_periodic_n",
    "ext-corruption": "repro.experiments.ext_corruption",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tlt-experiment",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument("experiment", help="experiment id (e.g. fig05), 'all' or 'list'")
    parser.add_argument("--scale", default="small",
                        help="tiny | small | medium | paper (default: small)")
    parser.add_argument("--csv", default=None, metavar="DIR",
                        help="also write the result rows as CSV files into DIR")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            print(f"{name:8s} {module}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        started = time.time()
        if args.csv:
            from repro.experiments.export import rows_to_csv

            result = module.run(scale=args.scale)
            if isinstance(result, dict):
                for part, rows in result.items():
                    path = rows_to_csv(rows, f"{args.csv}/{name}_{part}.csv")
                    print(f"wrote {path}")
            else:
                path = rows_to_csv(result, f"{args.csv}/{name}.csv")
                print(f"wrote {path}")
        else:
            module.main(scale=args.scale)
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
