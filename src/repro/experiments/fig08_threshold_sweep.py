"""Figure 8 — impact of the color-aware dropping threshold (DCTCP+TLT).

Without PFC: a small K drops more red packets (hurting background
flows); a large K lets the queue grow until important packets drop and
timeouts reappear at the tail. With PFC: larger K triggers PAUSE more.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import KB

DEFAULT_THRESHOLDS = tuple(k * KB for k in (100, 200, 400, 700, 1000))

COLUMNS = ["pfc", "threshold_kB", "fg_p99_ms", "fg_p999_ms", "bg_avg_ms",
           "timeouts_per_1k", "pause_per_1k", "important_loss_rate"]


def run(scale="small", seeds: Sequence[int] = (1,),
        thresholds: Sequence[int] = DEFAULT_THRESHOLDS) -> List[Dict]:
    scale = resolve_scale(scale)
    rows: List[Dict] = []
    for pfc in (False, True):
        base = ScenarioConfig(transport="dctcp", tlt=True, pfc=pfc, scale=scale)
        for k in thresholds:
            row = run_averaged(replace(base, color_threshold_bytes=k), seeds)
            row["pfc"] = pfc
            row["threshold_kB"] = k // KB
            rows.append(row)
    return rows


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Figure 8: FCT vs color-aware dropping threshold (DCTCP+TLT)")


if __name__ == "__main__":
    main()
