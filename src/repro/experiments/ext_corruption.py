"""Extension — non-congestion losses (§5 fallback behavior).

TLT guarantees delivery of *important* packets only against congestion
drops. When hardware corrupts packets (silent drops on a ToR), green
packets die too and TLT must gracefully fall back to the underlying
transport's RTO. This sweep injects uniform random corruption at every
switch and tracks how timeouts creep back in as the corruption rate
rises — demonstrating the fallback is graceful, not catastrophic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import TltConfig
from repro.experiments.common import print_table, resolve_scale
from repro.experiments.scenarios import ScenarioConfig, build_network, make_transport_config
from repro.faults import FaultInjector
from repro.sim.units import KB, MILLIS
from repro.transport.base import FlowSpec
from repro.transport.registry import create_flow
from repro.workload.incast import IncastTraffic

DEFAULT_RATES = (0.0, 1e-5, 1e-4, 1e-3, 1e-2)

COLUMNS = ["corruption_rate", "fg_p99_ms", "timeouts_per_1k", "corrupted_green",
           "incomplete"]


def _run(rate: float, scale, seed: int = 1) -> Dict:
    config = ScenarioConfig(transport="dctcp", tlt=True, scale=scale, seed=seed)
    net = build_network(config)
    # Each injector draws from a stream derived from the scenario seed
    # and the device name: different seeds corrupt different packet
    # sets (so --seeds sweeps measure real variance), the same seed is
    # bit-reproducible.
    injectors = [
        FaultInjector(
            switch, rate,
            rng=net.rng.stream(f"fault.corruption.{switch.name}"),
            stats=net.stats,
        )
        for switch in net.switches
    ]
    tconfig = make_transport_config(config)

    def create(spec: FlowSpec) -> None:
        create_flow("dctcp", net, spec, tconfig, TltConfig())

    incast = IncastTraffic(
        net, create, flow_size=8 * KB,
        flows_per_sender=scale.incast_flows_per_sender,
        num_events=scale.incast_events, interval_ns=600_000, start_ns=100_000,
    )
    incast.schedule()
    horizon = incast.specs[-1].start_ns + 100 * MILLIS
    net.engine.run(until=horizon)
    while net.stats.incomplete_flows() and net.engine.now < 3 * horizon and net.engine.pending:
        net.engine.run(until=net.engine.now + 50 * MILLIS)

    stats = net.stats
    return {
        "corruption_rate": rate,
        "fg_p99_ms": stats.fct_summary("fg")["p99"] / 1e6,
        "timeouts_per_1k": stats.timeouts_per_1k_flows(),
        "corrupted_green": float(sum(i.corrupted_green for i in injectors)),
        "incomplete": float(stats.incomplete_flows()),
    }


def run(scale="small", seed: int = 1,
        rates: Sequence[float] = DEFAULT_RATES) -> List[Dict]:
    scale = resolve_scale(scale)
    return [_run(rate, scale, seed) for rate in rates]


def main(scale="small") -> None:
    print_table(run(scale), COLUMNS,
                "Extension: TLT under non-congestion (corruption) losses")


if __name__ == "__main__":
    main()
