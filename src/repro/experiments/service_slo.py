"""Extension — service-level SLOs under open-loop load (the paper's
§2 motivation, measured end to end).

The paper's figures score transports by flow completion time; a
datacenter operator scores them by *response-time SLO at offered
load*. This experiment closes that gap with the service emulator
(:mod:`repro.service`): a load-balancer front fans every request over
a cache tier (fanout 4 — each request is a mini-incast into the LB
host's downlink) and a storage tier, driven by an **open-loop**
Poisson arrival process, so offered load keeps arriving whether or not
earlier requests finished — the regime where one RTO on the critical
path blows a millisecond SLO.

The ladder sweeps arrival rate ×1/2/4/8 over ``BASE_RATE_RPS`` for the
baseline transport and for the same transport with TLT, then reports
each mode's **SLO capacity**: the highest rung where p99 response time
meets the target *and* RTO fires stay within the timeout budget. The
headline gate is the ISSUE's claim — TLT's SLO capacity is at least
2× the baseline's breaking rate, i.e. TLT still holds the SLO at the
rung where the baseline has already collapsed into timeout-dominated
tails (hundreds of RTO fires per 1k flows vs zero, see the ladder
rows).

SLO target: 5 ms p99 — RTO-min (4 ms) plus queueing headroom, so a
request whose critical path eats even one RTO cannot meet it.

Scale note: rungs are tuned for the *tiny* fabric CI runs (6 hosts,
40 Gbps, one LB downlink as the contended port); paper-scale runs
(``--scale small`` upward, more requests) keep the same ×2 spacing —
capacities shift with host count, the TLT/baseline ratio is the claim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig, ScenarioResult

#: Ladder rung 1 (requests/second); rungs are ×1/2/4/8 this.
BASE_RATE_RPS = 20_000.0
RATE_MULTIPLIERS = (1, 2, 4, 8)

#: Open-loop requests per run (per rung, per seed).
REQUESTS = 400

#: p99 response-time target: RTO-min (4 ms) + 1 ms queueing headroom.
SLO_P99_MS = 5.0

COLUMNS = [
    "rate_krps", "p50_ms", "p99_ms", "p999_ms", "timeouts_per_1k",
    "req_per_s", "slo_met",
]
SUMMARY_COLUMNS = [
    "mode", "slo_capacity_krps", "break_krps", "capacity_ratio", "gate_2x",
]


def service_spec(rate_rps: float, hosts: int) -> Dict:
    """The tier graph for one rung: LB → {cache ×4 fanout, storage}."""
    backends = max(2, hosts - 1)  # all non-LB hosts serve both tiers
    return {
        "requests": REQUESTS,
        "rate_rps": rate_rps,
        "process": "poisson",
        "lb_hosts": 1,
        "tiers": [
            {"name": "cache", "servers": backends, "fanout": min(4, backends),
             "workload": "cache_follower", "max_bytes": 64_000,
             "service_ns": 2_000},
            {"name": "storage", "servers": backends, "fanout": 1,
             "workload": "web_server", "max_bytes": 8_000,
             "service_ns": 10_000},
        ],
        "slo_p99_ms": SLO_P99_MS,
        "timeout_budget_per_1k": 1.0,
    }


def service_row(result: ScenarioResult) -> Dict[str, float]:
    """Metrics reducer for pool workers (module-level: importable by
    qualname, so rows cache and fan out across processes)."""
    emulator = result.service
    summary = emulator.request_sketch.summarize()
    stats = result.stats
    duration_s = result.duration_ns / 1e9 if result.duration_ns else 1.0
    p99_ms = summary["p99"] / 1e6
    timeouts_per_1k = stats.timeouts_per_1k_flows()
    spec = emulator.spec
    met = (p99_ms <= spec.slo_p99_ms
           and timeouts_per_1k <= spec.timeout_budget_per_1k)
    return {
        "p50_ms": summary["p50"] / 1e6,
        "p99_ms": p99_ms,
        "p999_ms": summary["p999"] / 1e6,
        "timeouts_per_1k": timeouts_per_1k,
        "req_per_s": emulator.completed / duration_s,
        "completed": float(emulator.completed),
        "hedges": float(emulator.hedges),
        "slo_met": float(met),
    }


def _config(scale, rate_rps: float, *, tlt: bool) -> ScenarioConfig:
    return ScenarioConfig(
        transport="dctcp", tlt=tlt, scale=scale,
        service=service_spec(rate_rps, scale.num_hosts),
        enable_background=False, enable_incast=False,
    )


def _ladder(scale, seeds: Sequence[int], *, tlt: bool) -> List[Dict]:
    rows = []
    for mult in RATE_MULTIPLIERS:
        rate = BASE_RATE_RPS * mult
        row = run_averaged(_config(scale, rate, tlt=tlt), seeds,
                           metrics=service_row)
        # A rung only counts as held when *every* seed met the SLO.
        row["slo_met"] = float(row["slo_met"] >= 1.0)
        row["rate_krps"] = rate / 1e3
        rows.append(row)
    return rows


def _slo_capacity_krps(rows: List[Dict]) -> float:
    """Highest contiguous rung (from the bottom) holding the SLO."""
    capacity = 0.0
    for row in rows:
        if not row["slo_met"]:
            break
        capacity = row["rate_krps"]
    return capacity


def _break_krps(rows: List[Dict]) -> float:
    """First rung where the SLO is violated (0 = never broke)."""
    for row in rows:
        if not row["slo_met"]:
            return row["rate_krps"]
    return 0.0


def run(scale="tiny", seeds: Sequence[int] = (1, 2, 3)) -> Dict[str, List[Dict]]:
    scale = resolve_scale(scale)
    base_rows = _ladder(scale, seeds, tlt=False)
    tlt_rows = _ladder(scale, seeds, tlt=True)

    base_cap = _slo_capacity_krps(base_rows)
    tlt_cap = _slo_capacity_krps(tlt_rows)
    base_break = _break_krps(base_rows)
    ratio = tlt_cap / base_cap if base_cap else float("inf")
    # The headline gate, two conditions: TLT still holds the SLO at
    # the rung that broke the baseline, and its SLO capacity is at
    # least 2x the baseline's.
    gate = float(base_break > 0 and tlt_cap >= base_break and ratio >= 2.0)
    summary = [
        {"mode": "dctcp", "slo_capacity_krps": base_cap,
         "break_krps": base_break, "capacity_ratio": 1.0, "gate_2x": ""},
        {"mode": "dctcp+tlt", "slo_capacity_krps": tlt_cap,
         "break_krps": _break_krps(tlt_rows), "capacity_ratio": ratio,
         "gate_2x": gate},
    ]
    return {"base": base_rows, "tlt": tlt_rows, "summary": summary}


def main(scale="tiny") -> None:
    result = run(scale)
    print_table(result["base"], COLUMNS,
                f"Service SLO ladder: dctcp baseline (p99 target {SLO_P99_MS} ms)")
    print_table(result["tlt"], COLUMNS,
                f"Service SLO ladder: dctcp+TLT (p99 target {SLO_P99_MS} ms)")
    print_table(result["summary"], SUMMARY_COLUMNS,
                "SLO capacity: highest arrival rate holding the p99 target")


if __name__ == "__main__":
    main()
