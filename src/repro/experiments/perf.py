"""Simulation-throughput accounting for ``tlt-experiment bench-report``.

A process-global :class:`PerfTally` accumulates how many engine events
every scenario run processed and how long it took, regardless of where
the run happened: :func:`repro.experiments.scenarios.run_scenario`
reports in-process runs directly, and the parallel job runner
(:mod:`repro.experiments.parallel`) reports runs executed in worker
processes from the parent side (a child's tally dies with the child).
"""

from __future__ import annotations

import threading
from typing import Dict


class PerfTally:
    """Thread-safe accumulator of (events, wall seconds) per scenario run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.events = 0
            self.wall_s = 0.0
            self.runs = 0
            self.cached_runs = 0

    def add(self, events: int, wall_s: float) -> None:
        """Record one executed scenario run."""
        with self._lock:
            self.events += int(events)
            self.wall_s += float(wall_s)
            self.runs += 1

    def add_cached(self) -> None:
        """Record a run that was served from the result cache."""
        with self._lock:
            self.cached_runs += 1

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "events": self.events,
                "wall_s": self.wall_s,
                "runs": self.runs,
                "cached_runs": self.cached_runs,
            }

    @property
    def events_per_sec(self) -> float:
        with self._lock:
            return self.events / self.wall_s if self.wall_s > 0 else 0.0


#: Process-global tally used by ``tlt-experiment bench-report``.
TALLY = PerfTally()
