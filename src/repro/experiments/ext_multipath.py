"""Extension — multipath load balancing under asymmetry and flaps.

The paper's evaluation (and PRs 1-8) runs every fabric as single-path
ECMP over symmetric links, which is exactly where the §5 "TLT keeps
the tail flat" claim is easiest. This extension probes the claim on
the k=4 fat-tree with the machinery of this PR: per-switch path
selection (``static-hash`` / ``flowlet`` / ``wcmp``), asymmetric core
capacity, and link flaps with an overlapping-window degrade.

Two parts:

- **modes** — the asymmetric fat-tree (one core at quarter rate), no
  faults: baseline transport vs TLT for each selection mode. Ranks the
  selectors (wcmp shifts load off the slow core by weight; flowlet by
  idle-gap re-picks) and shows TLT's FCT win survives asymmetry.
- **churn** — TLT per selection mode on the *symmetric* vs the
  *asymmetric* fat-tree, both running the same flap schedule (two
  overlapping edge-uplink down windows + a mid-run core degrade, the
  shapes from the PR 4 fault subsystem). Gate (the §5 claim under
  churn): foreground p99 on the asymmetric fabric is no worse than on
  the symmetric one within :func:`_no_worse`'s documented tolerance —
  the multipath layer absorbs the capacity skew instead of letting the
  degraded paths grow an RTO-bound tail.

Run under ``--audit`` this doubles as a property check: flowlet/wcmp
re-picks during flap windows must never enqueue on a down port (the
auditor's dead-egress invariant) and green-drop faithfulness holds on
every path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import print_table, resolve_scale, run_averaged
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.units import MICROS

#: Selection modes ranked by the experiment (FIB kinds, see
#: :func:`repro.net.routing.make_fib`).
MODES = ("static-hash", "flowlet", "wcmp")

#: Per-core rate factors for the asymmetric k=4 fat-tree: core3 at
#: quarter rate. wcmp sees it as weight 10 vs 40; flowlet drains it by
#: re-picking; static-hash keeps hashing flows onto it.
ASYM_CORES = (1.0, 1.0, 1.0, 0.25)

COLUMNS = [
    "mode", "fct_base_ms", "fct_tlt_ms", "timeouts_base", "timeouts_tlt",
    "flowlets", "reroutes",
]
CHURN_COLUMNS = [
    "mode", "fct_sym_ms", "fct_asym_ms", "timeouts_per_1k", "flowlets",
    "reroutes", "incomplete", "no_worse",
]


def flap_spec() -> Dict:
    """Flap schedule for the k=4 fat-tree: two *overlapping* edge-uplink
    down windows (the resurrection-bug shape — pod 0's edges lose one
    uplink each, staggered so both windows are open at once) plus a
    mid-run degrade/restore on the already-slow core."""
    return {
        "events": [
            {"time_ns": 100 * MICROS, "kind": "link_down", "target": "edge0_0:2"},
            {"time_ns": 300 * MICROS, "kind": "link_down", "target": "edge0_1:2"},
            {"time_ns": 700 * MICROS, "kind": "link_up", "target": "edge0_0:2"},
            {"time_ns": 900 * MICROS, "kind": "link_up", "target": "edge0_1:2"},
            {"time_ns": 400 * MICROS, "kind": "link_degrade", "target": "core3:0",
             "params": {"factor": 0.5}},
            {"time_ns": 1200 * MICROS, "kind": "link_restore", "target": "core3:0"},
        ]
    }


#: Absolute slack (ms) for declaring the symmetric-vs-asymmetric FCT
#: comparison a tie (same rationale as ext_faults: a sub-RTO gap is
#: tail jitter, not a multipath failure).
FCT_TIE_MS = 0.1


def _fct_ms(row: Dict) -> float:
    """Comparison metric: p99 foreground FCT, the paper's headline."""
    return row["fg_p99_ms"]


def _no_worse(sym: Dict, asym: Dict) -> float:
    """1.0 when the asymmetric fabric's tail is no worse than the
    symmetric one's under the same flap schedule.

    Documented tolerance: the asymmetric run only counts as *worse*
    when it exceeds the symmetric run by more than the symmetric run's
    own seed-to-seed deviation, and never over a 5% relative or a
    sub-timeout (0.1 ms) absolute gap — the slack model shared with
    :func:`repro.experiments.ext_faults._no_worse`."""
    slack = max(sym.get("fg_p99_ms_std", 0.0), 0.05 * _fct_ms(sym), FCT_TIE_MS)
    return float(_fct_ms(asym) <= _fct_ms(sym) + slack)


def _config(scale, mode: str, *, tlt: bool, asym: bool, faults=None) -> ScenarioConfig:
    return ScenarioConfig(
        transport="dctcp", tlt=tlt, scale=scale, topology="fat_tree",
        path_selection=mode,
        core_rate_factors=ASYM_CORES if asym else None,
        faults=faults,
    )


def run(scale="small", seeds: Sequence[int] = (1, 2, 3)) -> Dict[str, List[Dict]]:
    scale = resolve_scale(scale)

    mode_rows: List[Dict] = []
    for mode in MODES:
        base = run_averaged(_config(scale, mode, tlt=False, asym=True), seeds)
        tlt = run_averaged(_config(scale, mode, tlt=True, asym=True), seeds)
        mode_rows.append(
            {
                "mode": mode,
                "fct_base_ms": _fct_ms(base),
                "fct_tlt_ms": _fct_ms(tlt),
                "timeouts_base": base["timeouts_per_1k"],
                "timeouts_tlt": tlt["timeouts_per_1k"],
                "flowlets": tlt["flowlets"],
                "reroutes": tlt["reroutes"],
            }
        )

    spec = flap_spec()
    churn_rows: List[Dict] = []
    for mode in MODES:
        sym = run_averaged(
            _config(scale, mode, tlt=True, asym=False, faults=spec), seeds)
        asym = run_averaged(
            _config(scale, mode, tlt=True, asym=True, faults=spec), seeds)
        churn_rows.append(
            {
                "mode": mode,
                "fct_sym_ms": _fct_ms(sym),
                "fct_asym_ms": _fct_ms(asym),
                "timeouts_per_1k": asym["timeouts_per_1k"],
                "flowlets": asym["flowlets"],
                "reroutes": asym["reroutes"],
                "incomplete": asym["incomplete"],
                "no_worse": _no_worse(sym, asym),
            }
        )
    return {"modes": mode_rows, "churn": churn_rows}


def main(scale="small") -> None:
    result = run(scale)
    print_table(result["modes"], COLUMNS,
                "Extension: selection modes on the asymmetric fat-tree")
    print_table(result["churn"], CHURN_COLUMNS,
                "Extension: §5 gate under flaps — asymmetric vs symmetric tail")


if __name__ == "__main__":
    main()
