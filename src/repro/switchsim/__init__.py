"""Shared-buffer switch with commodity-chip features.

Implements the switch model of §4 of the paper:

- shared-buffer MMU with the Choudhury–Hahne dynamic threshold (α),
- color-aware dropping of *red* (unimportant) packets at threshold K,
- ECN marking (DCTCP step marking, DCQCN RED-like marking),
- Priority-based Flow Control (802.1Qbb) with XOFF/XON accounting,
- per-hop INT telemetry for HPCC.
"""

from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.ecn import EcnScheme, RedEcn, StepEcn
from repro.switchsim.pfc import PfcConfig, PfcEngine
from repro.switchsim.queue import EgressQueue
from repro.switchsim.switch import Switch, SwitchConfig

__all__ = [
    "SharedBuffer",
    "EcnScheme",
    "RedEcn",
    "StepEcn",
    "PfcConfig",
    "PfcEngine",
    "EgressQueue",
    "Switch",
    "SwitchConfig",
]
