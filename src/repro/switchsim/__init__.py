"""Shared-buffer switch with commodity-chip features.

Implements the switch model of §4 of the paper:

- shared-buffer MMU with the Choudhury–Hahne dynamic threshold (α),
- pluggable admission policies (:mod:`repro.switchsim.policy`:
  Choudhury–Hahne default, BShare delay-driven sharing, FairQ fair
  allocation, tiny-buffer regime, adaptive-K controller),
- color-aware dropping of *red* (unimportant) packets at threshold K,
- ECN marking (DCTCP step marking, DCQCN RED-like marking),
- Priority-based Flow Control (802.1Qbb) with XOFF/XON accounting,
- per-hop INT telemetry for HPCC.
"""

from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.ecn import EcnScheme, RedEcn, StepEcn
from repro.switchsim.pfc import PfcConfig, PfcEngine
from repro.switchsim.policy import (
    POLICIES,
    AdaptiveK,
    AdmissionPolicy,
    BShare,
    ChoudhuryHahne,
    FairQ,
    TinyBuffer,
    make_policy,
)
from repro.switchsim.queue import EgressQueue
from repro.switchsim.switch import Switch, SwitchConfig

__all__ = [
    "SharedBuffer",
    "EcnScheme",
    "RedEcn",
    "StepEcn",
    "PfcConfig",
    "PfcEngine",
    "EgressQueue",
    "Switch",
    "SwitchConfig",
    "AdmissionPolicy",
    "ChoudhuryHahne",
    "BShare",
    "FairQ",
    "TinyBuffer",
    "AdaptiveK",
    "POLICIES",
    "make_policy",
]
