"""Priority-based Flow Control (802.1Qbb) engine.

Per-ingress-port byte accounting with XOFF/XON thresholds. When an
ingress port's buffered bytes cross XOFF, the switch sends a PAUSE
frame (maximum quanta) to the upstream transmitter and keeps refreshing
it until the count drops below XON, at which point an explicit RESUME
(zero-quanta PAUSE) is sent. This reproduces the Head-of-Line blocking
behaviour whose costs the paper measures: every flow sharing the paused
ingress port stalls, whatever its egress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.units import tx_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.switchsim.switch import Switch

#: 802.1Qbb pause time unit: 512 bit-times.
PAUSE_QUANTUM_BITS = 512
#: Maximum pause duration in quanta (16-bit field).
MAX_PAUSE_QUANTA = 0xFFFF


def max_pause_ns(rate_bps: int) -> int:
    """Duration of a maximum-quanta PAUSE on a ``rate_bps`` link."""
    return tx_time_ns(MAX_PAUSE_QUANTA * PAUSE_QUANTUM_BITS // 8, rate_bps)


@dataclass
class PfcConfig:
    """PFC thresholds. ``None`` XOFF derives a default from the buffer."""

    enabled: bool = False
    xoff_bytes: Optional[int] = None
    xon_fraction: float = 0.8  # XON = xon_fraction * XOFF

    def resolved_xoff(self, buffer_bytes: int, num_ports: int) -> int:
        if self.xoff_bytes is not None:
            return self.xoff_bytes
        # Static per-ingress-port share of half the pool, as in common
        # lossless configurations: the other half is headroom for the
        # packets in flight while a PAUSE propagates upstream.
        return max(buffer_bytes // (2 * max(num_ports, 1)), 3_000)


class PfcEngine:
    """Per-switch PFC state machine over all ingress ports."""

    def __init__(self, switch: "Switch", xoff_bytes: int, xon_bytes: int):
        self.switch = switch
        self.engine = switch.engine
        self.xoff = xoff_bytes
        self.xon = xon_bytes
        self.ingress_bytes: Dict[int, int] = {}
        self.asserted: Dict[int, bool] = {}
        self._refresh_events: Dict[int, object] = {}
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        # Optional audit trace ring (set by repro.audit.Auditor).
        self.audit_ring = None

    # -- accounting ------------------------------------------------------------

    def on_admit(self, ingress_port_no: int, size: int) -> None:
        total = self.ingress_bytes.get(ingress_port_no, 0) + size
        self.ingress_bytes[ingress_port_no] = total
        if total >= self.xoff and not self.asserted.get(ingress_port_no, False):
            self._assert_pause(ingress_port_no)

    def on_release(self, ingress_port_no: int, size: int) -> None:
        total = self.ingress_bytes.get(ingress_port_no, 0) - size
        self.ingress_bytes[ingress_port_no] = total
        if total <= self.xon and self.asserted.get(ingress_port_no, False):
            self._deassert_pause(ingress_port_no)

    # -- pause frames ----------------------------------------------------------

    def _assert_pause(self, port_no: int) -> None:
        self.asserted[port_no] = True
        self._send_pause(port_no)

    def _send_pause(self, port_no: int) -> None:
        if not self.asserted.get(port_no, False):
            return
        port = self.switch.ports[port_no]
        duration = max_pause_ns(port.rate_bps)
        port.send_pause(duration)
        self.pause_frames_sent += 1
        self.switch.stats.pause_frames += 1
        if self.audit_ring is not None:
            self.audit_ring.record(
                "pfc_pause", device=self.switch.name, port=port_no,
                time_ns=self.engine.now,
                info=self.ingress_bytes.get(port_no, 0),
            )
        # Refresh before the quanta expire, as real switches do while
        # the ingress stays above XOFF.
        event = self.engine.schedule_timer(duration // 2, self._send_pause, port_no)
        self._refresh_events[port_no] = event

    def _deassert_pause(self, port_no: int) -> None:
        self.asserted[port_no] = False
        event = self._refresh_events.pop(port_no, None)
        if event is not None:
            event.cancel()
        self.switch.ports[port_no].send_pause(0)
        self.resume_frames_sent += 1
        self.switch.stats.resume_frames += 1
        if self.audit_ring is not None:
            self.audit_ring.record(
                "pfc_resume", device=self.switch.name, port=port_no,
                time_ns=self.engine.now,
                info=self.ingress_bytes.get(port_no, 0),
            )
