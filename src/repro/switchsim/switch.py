"""The shared-buffer switch device.

Admission pipeline for every arriving packet (§4 of the paper):

1. **Color-aware dropping** — a red (unimportant) packet is dropped when
   the egress queue's red occupancy would exceed the color-aware
   dropping threshold K. This check runs *before* anything else, which
   is exactly how TLT proactively sheds load to protect green packets
   (and to avoid triggering PFC).
2. **Dynamic threshold** — packets are dropped when the egress queue
   exceeds ``alpha * (free pool)`` or the pool is exhausted. With PFC
   enabled the lossless class is never dropped by the dynamic
   threshold (PFC pushes back upstream before that happens; headroom is
   assumed sufficient, as on a correctly configured lossless fabric) —
   only true pool exhaustion drops.
3. **ECN marking** — on admission, per the configured scheme.
4. **PFC accounting** — per-ingress counters drive XOFF/XON.

INT (HPCC) records are appended at dequeue time with the post-dequeue
queue length, cumulative transmitted bytes and the port rate.

**Traffic classes** (§5.3, incremental deployment): each port carries
``num_traffic_classes`` FIFO queues selected by ``packet.tclass`` and
served round-robin. ``color_classes`` restricts color-aware dropping to
the TLT-enabled classes so legacy (non-TLT) traffic in its own class is
never red-dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.net.link import Port
from repro.net.node import Device
from repro.net.packet import Color, IntRecord, Packet, PacketKind, recycle
from repro.net.routing import RoutingError, make_fib
from repro.sim.engine import Engine
from repro.stats.collector import NetStats
from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.ecn import EcnScheme, StepEcn
from repro.switchsim.pfc import PfcConfig, PfcEngine
from repro.switchsim.policy import make_policy
from repro.switchsim.queue import EgressQueue


@dataclass
class SwitchConfig:
    """Per-switch configuration.

    One ``SwitchConfig`` instance is typically shared by every switch
    of a topology, so anything holding per-switch *state* must be a
    factory or a declarative spec, instantiated per switch:

    - ``ecn`` carries a shared scheme object (fine for the stateless
      ``StepEcn``); ``ecn_factory``, when set, wins and is called with
      the switch name so each switch gets its own scheme instance —
      scenario builds use it to give every switch an independent
      name-seeded ``RedEcn`` RNG stream (identical across shard
      replicas, which is what makes the RoCE family shardable).
    - ``admission`` is a policy *spec* (``None`` | name | dict — see
      :func:`repro.switchsim.policy.make_policy`), never an instance.
      ``None`` keeps the default Choudhury–Hahne + static-K on the
      open-coded fast paths; any explicit spec binds the generic
      policy-dispatch variants at construction instead (no per-packet
      branch either way).
    - ``path_selection`` is likewise a *spec* (``None`` | name | dict —
      see :func:`repro.net.routing.make_fib`), resolved into a fresh
      per-switch FIB at construction: ``None`` keeps the default
      static-hash ECMP (bit-identical lookups to the pre-selector
      code), ``"flowlet"`` / ``"wcmp"`` install the multipath
      selectors.
    """

    buffer_bytes: int = 4_500_000  # paper: 4.5 MB per simulated switch
    alpha: float = 1.0
    color_threshold_bytes: Optional[int] = None  # K; None disables coloring
    ecn: Optional[EcnScheme] = None
    #: Per-switch ECN scheme factory (switch name -> scheme); wins over
    #: ``ecn`` when set.
    ecn_factory: Optional[Callable[[str], EcnScheme]] = None
    pfc: PfcConfig = field(default_factory=PfcConfig)
    int_enabled: bool = False
    num_traffic_classes: int = 1
    #: Classes subject to color-aware dropping; None means all classes.
    color_classes: Optional[Tuple[int, ...]] = None
    #: Admission-policy spec (see repro.switchsim.policy.make_policy).
    admission: Optional[object] = None
    #: Path-selection spec (see repro.net.routing.make_fib).
    path_selection: Optional[object] = None


class Switch(Device):
    """A shared-buffer switch with per-class FIFO egress queues."""

    def __init__(
        self,
        engine: Engine,
        switch_id: int,
        config: SwitchConfig,
        stats: NetStats,
        name: Optional[str] = None,
    ):
        super().__init__(engine, name or f"switch{switch_id}")
        self.switch_id = switch_id
        self.config = config
        self.stats = stats
        self.buffer = SharedBuffer(config.buffer_bytes, config.alpha)
        # Per-switch FIB from the path-selection spec (never a shared
        # instance: the flowlet table and weights are per-switch state).
        self.fib = make_fib(switch_id, config.path_selection, engine)
        self._port_queues: List[List[EgressQueue]] = []
        self._rr: List[int] = []  # per-port round-robin pointer
        self.pfc: Optional[PfcEngine] = None
        # Per-switch ECN scheme: the factory (when set) gives every
        # switch its own instance — stateful schemes (RedEcn's RNG)
        # must never be shared fabric-wide through a shared config.
        self.ecn: Optional[EcnScheme] = (
            config.ecn_factory(self.name) if config.ecn_factory is not None
            else config.ecn
        )
        # Admission policy, one instance per switch. ``admission=None``
        # keeps the default Choudhury–Hahne + static-K semantics on the
        # open-coded fast paths below; an explicit spec dispatches
        # through the policy object instead. The choice is bound here,
        # at construction — never re-tested per packet.
        self.policy = make_policy(config.admission).bind(self)
        self._default_policy = config.admission is None
        # Local drop counters (stats also aggregates network-wide).
        self.drops_red = 0
        self.drops_green = 0
        # Optional runtime invariant auditor (repro.audit.Auditor).
        # The data path comes in two variants — with and without audit
        # hooks — registered as the *base* receive implementation so an
        # un-audited run never tests ``audit is None`` per packet, and
        # so interceptors survive audit toggling.
        self.audit = None
        self._set_base_receive(
            self._receive_fast if self._default_policy else self._receive_policy_fast
        )
        self.poll = self._poll_fast

    # -- construction ------------------------------------------------------------

    def add_port(self, rate_bps: int, delay_ns: int) -> Port:
        port = super().add_port(rate_bps, delay_ns)
        self._port_queues.append(
            [EgressQueue(port.port_no) for _ in range(self.config.num_traffic_classes)]
        )
        self._rr.append(0)
        return port

    def finalize(self) -> None:
        """Call after all ports are added: sets up PFC thresholds and
        lets the admission policy resolve per-port state (byte budgets,
        the adaptive-K controller timer)."""
        if self.config.pfc.enabled:
            xoff = self.config.pfc.resolved_xoff(self.config.buffer_bytes, len(self.ports))
            xon = int(xoff * self.config.pfc.xon_fraction)
            self.pfc = PfcEngine(self, xoff, xon)
        self.policy.on_finalize()
        # Capacity-derived path weights for weighted selectors (the
        # fault layer re-syncs them on link_degrade/link_restore).
        self.fib.on_finalize(self.ports)

    @property
    def queues(self) -> List[EgressQueue]:
        """All egress queues of this switch (every port and class)."""
        return [q for qs in self._port_queues for q in qs]

    def queue_for(self, port_no: int, tclass: int = 0) -> EgressQueue:
        return self._port_queues[port_no][tclass]

    def set_auditor(self, auditor) -> None:
        """Attach (or detach, with ``None``) the runtime auditor.

        Swaps the audited or the hook-free data-path variant in as the
        *base* receive implementation. Interceptors installed via
        :meth:`Device.add_interceptor` (``FaultInjector``,
        ``PacketTracer``, test taps) are preserved across the swap, in
        order — audit can be toggled at any point without disconnecting
        them.
        """
        self.audit = auditor
        if auditor is None:
            self._set_base_receive(
                self._receive_fast if self._default_policy
                else self._receive_policy_fast
            )
            self.poll = self._poll_fast
        else:
            self._set_base_receive(
                self._receive_audited if self._default_policy
                else self._receive_policy_audited
            )
            self.poll = self._poll_audited

    # -- data path ---------------------------------------------------------------
    #
    # _receive_fast/_receive_audited (and _poll_fast/_poll_audited) are
    # the same pipeline; the audited variants add the auditor hook
    # calls. Keep the pairs in sync when changing admission logic —
    # and keep _receive_policy_fast/_receive_policy_audited (the
    # generic AdmissionPolicy dispatch) semantically identical: with
    # the default ChoudhuryHahne policy all four must produce the same
    # fingerprints (pinned by tests/test_policy.py).

    def _receive_fast(self, packet: Packet, in_port: Port) -> None:
        # Fib.lookup, open-coded for the single-path common case.
        fib = self.fib
        try:
            routes = fib._routes[packet.dst]
        except KeyError:
            raise RoutingError(self.switch_id, packet.dst) from None
        egress_no = (
            routes[0] if len(routes) == 1 else fib.lookup(packet.dst, packet.flow_id)
        )
        port_queues = self._port_queues[egress_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            tclass = 0
            queue = port_queues[0]
        else:
            tclass = packet.tclass if 0 <= packet.tclass < nclasses else 0
            queue = port_queues[tclass]
        size = packet.size

        # 1. Color-aware dropping of unimportant packets.
        k = self.config.color_threshold_bytes
        if (
            k is not None
            and packet.color == Color.RED
            and queue.red_bytes + size > k
            and (self.config.color_classes is None or tclass in self.config.color_classes)
        ):
            self._drop(packet, "color", queue)
            return

        # 2. Dynamic-threshold admission (per-port occupancy across classes).
        port_occupancy = (
            queue.occupancy if nclasses == 1 else sum(q.occupancy for q in port_queues)
        )
        buf = self.buffer
        used = buf.used
        if self.pfc is None:
            # SharedBuffer.admits, open-coded.
            if used + size > buf.capacity:
                self._drop(packet, "pool", queue, port_occupancy)
                return
            if port_occupancy >= buf.alpha * (buf.capacity - used):
                self._drop(packet, "dynamic", queue, port_occupancy)
                return
        else:
            # Lossless class: only true pool exhaustion drops.
            if used + size > buf.capacity:
                self._drop(packet, "pool", queue, port_occupancy)
                return

        # SharedBuffer.reserve + EgressQueue.push, open-coded (the
        # capacity check above makes overcommit impossible here).
        used += size
        buf.used = used
        if used > buf.peak_used:
            buf.peak_used = used
        queue.items.append((packet, in_port.port_no))
        occupancy = queue.occupancy + size
        queue.occupancy = occupancy
        if packet.color == Color.RED:
            red = queue.red_bytes + size
            queue.red_bytes = red
            if red > queue.max_red_bytes:
                queue.max_red_bytes = red
        if occupancy > queue.max_occupancy:
            queue.max_occupancy = occupancy

        # 3. ECN marking on the instantaneous (post-enqueue) queue length.
        ecn = self.ecn
        if ecn is not None and packet.ecn_capable and not packet.ce:
            # StepEcn.should_mark, open-coded for the common scheme.
            if (
                occupancy > ecn.k_bytes
                if type(ecn) is StepEcn
                else ecn.should_mark(occupancy)
            ):
                packet.ce = True
                self.stats.ecn_marks += 1

        # 4. PFC ingress accounting.
        if self.pfc is not None:
            self.pfc.on_admit(in_port.port_no, size)

        port = self.ports[egress_no]
        if not port.busy and not port.paused:
            port.kick()

    def _receive_audited(self, packet: Packet, in_port: Port) -> None:
        # Fib.lookup, open-coded for the single-path common case.
        fib = self.fib
        try:
            routes = fib._routes[packet.dst]
        except KeyError:
            raise RoutingError(self.switch_id, packet.dst) from None
        egress_no = (
            routes[0] if len(routes) == 1 else fib.lookup(packet.dst, packet.flow_id)
        )
        port_queues = self._port_queues[egress_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            tclass = 0
            queue = port_queues[0]
        else:
            tclass = packet.tclass if 0 <= packet.tclass < nclasses else 0
            queue = port_queues[tclass]
        size = packet.size

        # 1. Color-aware dropping of unimportant packets.
        k = self.config.color_threshold_bytes
        if (
            k is not None
            and packet.color == Color.RED
            and queue.red_bytes + size > k
            and (self.config.color_classes is None or tclass in self.config.color_classes)
        ):
            self._drop(packet, "color", queue)
            return

        # 2. Dynamic-threshold admission (per-port occupancy across classes).
        port_occupancy = (
            queue.occupancy if nclasses == 1 else sum(q.occupancy for q in port_queues)
        )
        buf = self.buffer
        used = buf.used
        if self.pfc is None:
            # SharedBuffer.admits, open-coded.
            if used + size > buf.capacity:
                self._drop(packet, "pool", queue, port_occupancy)
                return
            if port_occupancy >= buf.alpha * (buf.capacity - used):
                self._drop(packet, "dynamic", queue, port_occupancy)
                return
        else:
            # Lossless class: only true pool exhaustion drops.
            if used + size > buf.capacity:
                self._drop(packet, "pool", queue, port_occupancy)
                return

        # SharedBuffer.reserve + EgressQueue.push, open-coded (the
        # capacity check above makes overcommit impossible here).
        used += size
        buf.used = used
        if used > buf.peak_used:
            buf.peak_used = used
        queue.items.append((packet, in_port.port_no))
        occupancy = queue.occupancy + size
        queue.occupancy = occupancy
        if packet.color == Color.RED:
            red = queue.red_bytes + size
            queue.red_bytes = red
            if red > queue.max_red_bytes:
                queue.max_red_bytes = red
        if occupancy > queue.max_occupancy:
            queue.max_occupancy = occupancy
        self.audit.on_enqueue(self, packet, egress_no)

        # 3. ECN marking on the instantaneous (post-enqueue) queue length.
        ecn = self.ecn
        if ecn is not None and packet.ecn_capable and not packet.ce:
            # StepEcn.should_mark, open-coded for the common scheme.
            if (
                occupancy > ecn.k_bytes
                if type(ecn) is StepEcn
                else ecn.should_mark(occupancy)
            ):
                packet.ce = True
                self.stats.ecn_marks += 1

        # 4. PFC ingress accounting.
        if self.pfc is not None:
            self.pfc.on_admit(in_port.port_no, size)

        port = self.ports[egress_no]
        if not port.busy and not port.paused:
            port.kick()

    # _receive_policy_fast/_receive_policy_audited: the same admission
    # pipeline routed through an explicit AdmissionPolicy (bound when
    # ``SwitchConfig.admission`` is set). Enqueue accounting goes
    # through the canonical SharedBuffer.reserve / EgressQueue.push —
    # the parity tests hold these and the open-coded variants above to
    # identical counters and identical ECN boundary semantics
    # (post-enqueue occupancy, mark strictly above K).

    def _receive_policy_fast(self, packet: Packet, in_port: Port) -> None:
        fib = self.fib
        try:
            routes = fib._routes[packet.dst]
        except KeyError:
            raise RoutingError(self.switch_id, packet.dst) from None
        egress_no = (
            routes[0] if len(routes) == 1 else fib.lookup(packet.dst, packet.flow_id)
        )
        port_queues = self._port_queues[egress_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            tclass = 0
            queue = port_queues[0]
        else:
            tclass = packet.tclass if 0 <= packet.tclass < nclasses else 0
            queue = port_queues[tclass]
        size = packet.size
        policy = self.policy

        # 1. Color-aware dropping of unimportant packets.
        k = policy.color_threshold(queue)
        if (
            k is not None
            and packet.color == Color.RED
            and queue.red_bytes + size > k
            and (self.config.color_classes is None or tclass in self.config.color_classes)
        ):
            self._drop(packet, "color", queue)
            return

        # 2. Policy admission (per-port occupancy across classes).
        port_occupancy = (
            queue.occupancy if nclasses == 1 else sum(q.occupancy for q in port_queues)
        )
        reason = policy.admit(queue, port_occupancy, size, self.pfc is not None)
        if reason is not None:
            self._drop(packet, reason, queue, port_occupancy)
            return

        self.buffer.reserve(size)
        queue.push(packet, in_port.port_no)

        # 3. ECN marking on the instantaneous (post-enqueue) queue length.
        ecn = self.ecn
        if ecn is not None and packet.ecn_capable and not packet.ce:
            if ecn.should_mark(queue.occupancy):
                packet.ce = True
                self.stats.ecn_marks += 1

        # 4. PFC ingress accounting.
        if self.pfc is not None:
            self.pfc.on_admit(in_port.port_no, size)

        port = self.ports[egress_no]
        if not port.busy and not port.paused:
            port.kick()

    def _receive_policy_audited(self, packet: Packet, in_port: Port) -> None:
        fib = self.fib
        try:
            routes = fib._routes[packet.dst]
        except KeyError:
            raise RoutingError(self.switch_id, packet.dst) from None
        egress_no = (
            routes[0] if len(routes) == 1 else fib.lookup(packet.dst, packet.flow_id)
        )
        port_queues = self._port_queues[egress_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            tclass = 0
            queue = port_queues[0]
        else:
            tclass = packet.tclass if 0 <= packet.tclass < nclasses else 0
            queue = port_queues[tclass]
        size = packet.size
        policy = self.policy

        # 1. Color-aware dropping of unimportant packets.
        k = policy.color_threshold(queue)
        if (
            k is not None
            and packet.color == Color.RED
            and queue.red_bytes + size > k
            and (self.config.color_classes is None or tclass in self.config.color_classes)
        ):
            self._drop(packet, "color", queue)
            return

        # 2. Policy admission (per-port occupancy across classes).
        port_occupancy = (
            queue.occupancy if nclasses == 1 else sum(q.occupancy for q in port_queues)
        )
        reason = policy.admit(queue, port_occupancy, size, self.pfc is not None)
        if reason is not None:
            self._drop(packet, reason, queue, port_occupancy)
            return

        self.buffer.reserve(size)
        queue.push(packet, in_port.port_no)
        self.audit.on_enqueue(self, packet, egress_no)

        # 3. ECN marking on the instantaneous (post-enqueue) queue length.
        ecn = self.ecn
        if ecn is not None and packet.ecn_capable and not packet.ce:
            if ecn.should_mark(queue.occupancy):
                packet.ce = True
                self.stats.ecn_marks += 1

        # 4. PFC ingress accounting.
        if self.pfc is not None:
            self.pfc.on_admit(in_port.port_no, size)

        port = self.ports[egress_no]
        if not port.busy and not port.paused:
            port.kick()

    def _poll_fast(self, port: Port) -> Optional[Packet]:
        port_queues = self._port_queues[port.port_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            # EgressQueue.pop, open-coded.
            queue = port_queues[0]
            if not queue.items:
                return None
            entry = queue.items.popleft()
            psize = entry[0].size
            queue.occupancy -= psize
            queue.dequeued_bytes += psize
            if entry[0].color == Color.RED:
                queue.red_bytes -= psize
        else:
            start = self._rr[port.port_no]
            entry = None
            for offset in range(nclasses):
                idx = (start + offset) % nclasses
                queue = port_queues[idx]
                entry = queue.pop()
                if entry is not None:
                    self._rr[port.port_no] = (idx + 1) % nclasses
                    break
        if entry is None:
            return None
        packet, ingress_no = entry
        # SharedBuffer.release, open-coded (keeps the under-run check).
        buf = self.buffer
        buf.used -= packet.size
        if buf.used < 0:
            raise AssertionError("shared buffer under-run")
        if self.pfc is not None:
            self.pfc.on_release(ingress_no, packet.size)
        if (
            self.config.int_enabled
            and packet.kind == PacketKind.DATA
            and packet.int_records is not None
        ):
            qlen = sum(q.occupancy for q in port_queues)
            packet.add_int_record(
                IntRecord(qlen, port.tx_bytes, self.engine.now, port.rate_bps)
            )
        return packet

    def _poll_audited(self, port: Port) -> Optional[Packet]:
        port_queues = self._port_queues[port.port_no]
        nclasses = len(port_queues)
        if nclasses == 1:
            # EgressQueue.pop, open-coded.
            queue = port_queues[0]
            if not queue.items:
                return None
            entry = queue.items.popleft()
            psize = entry[0].size
            queue.occupancy -= psize
            queue.dequeued_bytes += psize
            if entry[0].color == Color.RED:
                queue.red_bytes -= psize
        else:
            start = self._rr[port.port_no]
            entry = None
            for offset in range(nclasses):
                idx = (start + offset) % nclasses
                queue = port_queues[idx]
                entry = queue.pop()
                if entry is not None:
                    self._rr[port.port_no] = (idx + 1) % nclasses
                    break
        if entry is None:
            return None
        packet, ingress_no = entry
        # SharedBuffer.release, open-coded (keeps the under-run check).
        buf = self.buffer
        buf.used -= packet.size
        if buf.used < 0:
            raise AssertionError("shared buffer under-run")
        self.audit.on_dequeue(self, packet, port.port_no)
        if self.pfc is not None:
            self.pfc.on_release(ingress_no, packet.size)
        if (
            self.config.int_enabled
            and packet.kind == PacketKind.DATA
            and packet.int_records is not None
        ):
            qlen = sum(q.occupancy for q in port_queues)
            packet.add_int_record(
                IntRecord(qlen, port.tx_bytes, self.engine.now, port.rate_bps)
            )
        return packet

    # -- helpers ---------------------------------------------------------------------

    def _drop(self, packet: Packet, reason: str, queue: EgressQueue,
              port_occupancy: Optional[int] = None) -> None:
        """Account a dropped packet. ``reason`` is one of ``"color"``
        (red over threshold K), ``"dynamic"`` (dynamic threshold) or
        ``"pool"`` (shared pool exhausted)."""
        self.stats.count_drop(packet)
        if packet.color == Color.RED:
            self.drops_red += 1
        else:
            self.drops_green += 1
        # Drops are off the fast path; a plain None-check suffices here.
        if self.audit is not None:
            self.audit.on_drop(self, packet, queue, reason, port_occupancy)
        # The switch is the packet's terminal point: recycle it.
        recycle(packet)

    def total_queued_bytes(self) -> int:
        return self.buffer.used

    def max_queue_occupancy(self) -> int:
        return max((q.max_occupancy for q in self.queues), default=0)

    def max_red_occupancy(self) -> int:
        return max((q.max_red_bytes for q in self.queues), default=0)
