"""ECN marking schemes.

- :class:`StepEcn` — DCTCP's single-threshold instantaneous marking:
  mark every packet while the queue exceeds ``K_ECN``.
- :class:`RedEcn` — DCQCN's RED-like probabilistic marking with
  ``K_min``/``K_max``/``P_max`` on the instantaneous queue length.
"""

from __future__ import annotations

import random


class EcnScheme:
    """Interface: decide whether to CE-mark given the queue length."""

    def should_mark(self, queue_bytes: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class StepEcn(EcnScheme):
    """DCTCP-style marking: CE when instantaneous queue exceeds K."""

    def __init__(self, k_bytes: int):
        if k_bytes <= 0:
            raise ValueError("K_ECN must be positive")
        self.k_bytes = k_bytes

    def should_mark(self, queue_bytes: int) -> bool:
        return queue_bytes > self.k_bytes


class RedEcn(EcnScheme):
    """DCQCN-style RED marking on the instantaneous queue length."""

    def __init__(self, k_min: int, k_max: int, p_max: float, rng: random.Random):
        if not 0 <= k_min < k_max:
            raise ValueError("require 0 <= k_min < k_max")
        if not 0 < p_max <= 1:
            raise ValueError("require 0 < p_max <= 1")
        self.k_min = k_min
        self.k_max = k_max
        self.p_max = p_max
        self.rng = rng

    def should_mark(self, queue_bytes: int) -> bool:
        if queue_bytes <= self.k_min:
            return False
        if queue_bytes >= self.k_max:
            return True
        prob = self.p_max * (queue_bytes - self.k_min) / (self.k_max - self.k_min)
        return self.rng.random() < prob
