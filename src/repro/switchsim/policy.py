"""Pluggable switch admission policies (the MMU drop/admit decision).

The paper evaluates TLT on one fixed MMU configuration: Choudhury–Hahne
dynamic thresholds for admission plus a static color threshold K for
red (unimportant) drops. ROADMAP item 3 asks the obvious follow-up —
is that still the right call against the buffer-sharing literature? —
so the decision is now an :class:`AdmissionPolicy` chosen per switch
via ``SwitchConfig.admission``:

- ``"ch-static-k"`` (:class:`ChoudhuryHahne`) — the paper's default.
  With ``admission=None`` the switch keeps its open-coded fast paths;
  with the explicit name it runs the same math through the generic
  dispatch (the two are fingerprint-identical, pinned by tests).
- ``"bshare"`` (:class:`BShare`) — queueing-delay-driven sharing: a
  port may buffer at most ``rate * target_delay`` bytes, so admission
  bounds worst-case queueing delay rather than buffer share.
- ``"fairq"`` (:class:`FairQ`) — fair allocation: the pool is split
  evenly across currently backlogged ports.
- ``"tiny-buffer"`` (:class:`TinyBuffer`) — a small static per-port
  cap (the tiny-buffer regime: a few BDPs, no dynamic sharing).
- ``"adaptive-k"`` (:class:`AdaptiveK`) — CH admission plus a
  controller on the engine's timer wheel that retunes K from live
  per-queue occupancy (the same state the telemetry samplers export).

Contract: ``admit`` is called *before* any state changes and must not
mutate anything — the auditor re-evaluates it at drop time to verify
every congestion drop was justified (§4 green-drop faithfulness, now
checked against whichever policy made the call). Policies are bound to
their switch at construction (one instance per switch — ``admission``
is a declarative spec precisely so a shared ``SwitchConfig`` never
shares mutable policy state, the bug class the fabric-global ECN RNG
had).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.switchsim.queue import EgressQueue


class AdmissionPolicy:
    """Decide admit/drop for one arriving packet on one switch.

    Subclasses override :meth:`_admit_lossy` (and optionally
    :meth:`color_threshold`, :meth:`on_finalize`, :meth:`invariants`).
    The pool-exhaustion check and the lossless (PFC) rule — only true
    pool exhaustion may drop — are fixed in :meth:`admit` for every
    policy: they are what makes a fabric lossless, not a tunable.
    """

    #: Registry name; also stamped on telemetry rows.
    name = "policy"

    def __init__(self) -> None:
        self.switch = None
        self.buffer = None
        self.config = None

    # -- lifecycle ---------------------------------------------------------------

    def bind(self, switch) -> "AdmissionPolicy":
        """Attach to ``switch`` (called once, at switch construction)."""
        self.switch = switch
        self.buffer = switch.buffer
        self.config = switch.config
        return self

    def on_finalize(self) -> None:
        """Hook called from ``Switch.finalize()`` once all ports exist."""

    # -- the decision ------------------------------------------------------------

    def color_threshold(self, queue: EgressQueue) -> Optional[int]:
        """Threshold K for red drops on ``queue`` (None disables)."""
        return self.config.color_threshold_bytes

    def admit(self, queue: EgressQueue, port_occupancy: int, size: int,
              lossless: bool) -> Optional[str]:
        """Admit ``size`` bytes to ``queue``, or return a drop reason.

        ``port_occupancy`` is the total buffered bytes of the target
        port across traffic classes. Returns ``None`` (admit),
        ``"pool"`` (shared pool exhausted) or ``"dynamic"`` (the
        policy's lossy admission limit). Must not mutate any state.
        """
        buf = self.buffer
        if buf.used + size > buf.capacity:
            return "pool"
        if lossless:
            return None
        return self._admit_lossy(queue, port_occupancy, size)

    def _admit_lossy(self, queue: EgressQueue, port_occupancy: int,
                     size: int) -> Optional[str]:
        return None

    # -- introspection -----------------------------------------------------------

    def invariants(self) -> List[str]:
        """Violated internal invariants (checked by the auditor suite)."""
        return []

    def describe(self) -> Dict:
        """One flat dict of live policy state (telemetry ``policy`` stream)."""
        return {"policy": self.name, "k": self.config.color_threshold_bytes}


class ChoudhuryHahne(AdmissionPolicy):
    """The paper's MMU: dynamic threshold ``alpha * (B - used)``.

    Byte-for-byte the math of the switch's open-coded fast path — the
    fingerprint-parity tests hold the two together.
    """

    name = "ch-static-k"

    def _admit_lossy(self, queue: EgressQueue, port_occupancy: int,
                     size: int) -> Optional[str]:
        buf = self.buffer
        if port_occupancy >= buf.alpha * (buf.capacity - buf.used):
            return "dynamic"
        return None


class BShare(AdmissionPolicy):
    """Queueing-delay-driven sharing: cap each port's backlog at the
    bytes its line rate drains in ``target_delay_ns``.

    Admission then bounds worst-case per-hop queueing delay directly
    (BShare's premise) instead of bounding the buffer *share* like
    Choudhury–Hahne. Per-port byte budgets are resolved once at
    finalize time from the actual port rates.
    """

    name = "bshare"

    def __init__(self, target_delay_ns: int = 100_000) -> None:
        super().__init__()
        if target_delay_ns <= 0:
            raise ValueError("target_delay_ns must be positive")
        self.target_delay_ns = target_delay_ns
        self._port_limit: List[int] = []

    def on_finalize(self) -> None:
        self._port_limit = [
            max(1, port.rate_bps * self.target_delay_ns // 8 // 1_000_000_000)
            for port in self.switch.ports
        ]

    def _admit_lossy(self, queue: EgressQueue, port_occupancy: int,
                     size: int) -> Optional[str]:
        if port_occupancy + size > self._port_limit[queue.port_no]:
            return "dynamic"
        return None

    def invariants(self) -> List[str]:
        if self.switch.ports and not self._port_limit:
            return [f"{self.name}: finalize never ran (no port budgets)"]
        return [
            f"{self.name}: non-positive byte budget on port {no}"
            for no, limit in enumerate(self._port_limit) if limit <= 0
        ]

    def describe(self) -> Dict:
        row = super().describe()
        row["policy"] = self.name
        return row


class FairQ(AdmissionPolicy):
    """Fair allocation: split the pool evenly over backlogged ports.

    A port may buffer at most ``capacity / max(1, busy_ports)`` bytes,
    counting the target port as busy — the fair-share discipline of the
    FairQ line of work, applied to buffer admission. The busy-port scan
    is O(ports); this is a lab policy, not the default fast path.
    """

    name = "fairq"

    def _admit_lossy(self, queue: EgressQueue, port_occupancy: int,
                     size: int) -> Optional[str]:
        busy = 1 if port_occupancy == 0 else 0  # the target port itself
        for port_queues in self.switch._port_queues:
            for q in port_queues:
                if q.occupancy:
                    busy += 1
                    break
        if port_occupancy + size > self.buffer.capacity // max(1, busy):
            return "dynamic"
        return None


class TinyBuffer(AdmissionPolicy):
    """Tiny-buffer regime: a small static per-port cap, no sharing.

    Models a switch provisioned with a few BDPs per port (the
    tiny-buffer argument: with paced, desynchronized traffic, deep
    buffers only add delay). Green packets *can* be congestion-dropped
    at the cap on a lossy fabric — the policy-aware auditor accepts
    that as a justified dynamic drop, and the sweep shows what it
    costs TLT.
    """

    name = "tiny-buffer"

    def __init__(self, cap_bytes: int = 40_000) -> None:
        super().__init__()
        if cap_bytes <= 0:
            raise ValueError("cap_bytes must be positive")
        self.cap_bytes = cap_bytes

    def _admit_lossy(self, queue: EgressQueue, port_occupancy: int,
                     size: int) -> Optional[str]:
        if port_occupancy + size > self.cap_bytes:
            return "dynamic"
        return None


class AdaptiveK(ChoudhuryHahne):
    """CH admission plus a timer-wheel controller retuning K live.

    Every ``interval_ns`` of sim time the controller reads the same
    per-queue occupancy the telemetry samplers export and nudges the
    color threshold: when green backlog builds past
    ``green_target_fraction * K0`` red packets are admitted too
    greedily, so K is cut (×``decrease``); when red occupancy rides
    close to K with most of the pool idle, K is raised (×``increase``).
    K stays clamped to ``[K0/4, K0*4]``. The controller arms in
    ``Switch.finalize()`` and re-arms only while the run has
    incomplete flows, so it never keeps an idle engine alive.
    """

    name = "adaptive-k"

    def __init__(self, interval_ns: int = 100_000, increase: float = 1.25,
                 decrease: float = 0.8, green_target_fraction: float = 0.25) -> None:
        super().__init__()
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.interval_ns = interval_ns
        self.increase = increase
        self.decrease = decrease
        self.green_target_fraction = green_target_fraction
        self.k: Optional[int] = None
        self.k0: Optional[int] = None
        self.k_lo: Optional[int] = None
        self.k_hi: Optional[int] = None
        self.adjustments = 0
        self._sampler = None

    def bind(self, switch) -> "AdmissionPolicy":
        super().bind(switch)
        k0 = self.config.color_threshold_bytes
        if k0 is not None:
            self.k = self.k0 = k0
            self.k_lo = max(1, k0 // 4)
            self.k_hi = k0 * 4
        return self

    def color_threshold(self, queue: EgressQueue) -> Optional[int]:
        return self.k

    def on_finalize(self) -> None:
        if self.k is None or self._sampler is not None:
            return
        # Lazy import: switchsim must stay importable without telemetry.
        from repro.telemetry.samplers import Sampler

        policy = self

        class _Controller(Sampler):
            stream = "policy"

            def sample(self) -> None:
                policy._retune()

        # Liveness mirrors the scenario samplers: flow records exist
        # from schedule time, so the controller rides along exactly
        # while the run has work and stops itself on the first tick
        # after the last flow completes.
        stats = self.switch.stats
        self._sampler = _Controller(
            self.switch.engine, self.interval_ns,
            active=lambda: bool(stats.incomplete_flows()),
        )

    def _retune(self) -> None:
        green_peak = 0
        red_peak = 0
        for queue in self.switch.queues:
            occ = queue.occupancy
            if not occ:
                continue
            red = queue.red_bytes
            if occ - red > green_peak:
                green_peak = occ - red
            if red > red_peak:
                red_peak = red
        k = self.k
        buf = self.buffer
        if green_peak > self.green_target_fraction * self.k0:
            new_k = max(self.k_lo, int(k * self.decrease))
        elif red_peak >= 0.9 * k and buf.used < buf.capacity // 2:
            new_k = min(self.k_hi, int(k * self.increase))
        else:
            return
        if new_k != k:
            self.k = new_k
            self.adjustments += 1

    def invariants(self) -> List[str]:
        if self.k is None:
            return []
        violations = []
        if not self.k_lo <= self.k <= self.k_hi:
            violations.append(
                f"{self.name}: K={self.k} outside clamp "
                f"[{self.k_lo}, {self.k_hi}]"
            )
        return violations

    def describe(self) -> Dict:
        return {"policy": self.name, "k": self.k}


#: Registry of selectable policies, by spec name.
POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    ChoudhuryHahne.name: ChoudhuryHahne,
    BShare.name: BShare,
    FairQ.name: FairQ,
    TinyBuffer.name: TinyBuffer,
    AdaptiveK.name: AdaptiveK,
}


def make_policy(spec) -> AdmissionPolicy:
    """Instantiate the policy for one switch from a declarative spec.

    ``None`` -> the default :class:`ChoudhuryHahne` (the switch also
    keeps its open-coded fast path in that case); a string -> the named
    policy with default parameters; a dict -> ``{"name": ..., params}``.
    A fresh instance is returned per call: policy state is always
    per-switch even when many switches share one ``SwitchConfig``.
    """
    if spec is None:
        return ChoudhuryHahne()
    if isinstance(spec, AdmissionPolicy):
        raise TypeError(
            "admission must be a declarative spec (name or dict), not a "
            "policy instance — instances hold per-switch state and would "
            "be shared by every switch of the topology"
        )
    if isinstance(spec, str):
        name, params = spec, {}
    elif isinstance(spec, dict):
        params = dict(spec)
        name = params.pop("name", None)
        if name is None:
            raise ValueError("admission dict spec requires a 'name' key")
    else:
        raise TypeError(f"admission spec must be None/str/dict, got {type(spec).__name__}")
    cls = POLICIES.get(name)
    if cls is None:
        raise ValueError(f"unknown admission policy {name!r}; "
                         f"available: {sorted(POLICIES)}")
    return cls(**params)
