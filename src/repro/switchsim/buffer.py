"""Shared-buffer MMU with dynamic per-queue thresholds.

Implements the dynamic threshold algorithm of Choudhury & Hahne
([26] in the paper): an arriving packet destined to egress queue *i*
is dropped when ``Q_i >= alpha * (B - used)`` where ``used`` is the
total buffer occupancy. ``alpha = 1`` (the paper's setting) lets a
single busy queue take at most 50% of the free pool.
"""

from __future__ import annotations


class SharedBuffer:
    """Tracks the shared pool and answers admission queries."""

    __slots__ = ("capacity", "alpha", "used", "peak_used")

    def __init__(self, capacity_bytes: int, alpha: float = 1.0):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.capacity = capacity_bytes
        self.alpha = alpha
        self.used = 0
        self.peak_used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def dynamic_threshold(self) -> float:
        """Current per-queue occupancy limit, alpha * (B - used)."""
        return self.alpha * (self.capacity - self.used)

    def admits(self, queue_occupancy: int, size: int) -> bool:
        """Would the dynamic threshold admit ``size`` bytes to a queue
        currently holding ``queue_occupancy`` bytes?"""
        if self.used + size > self.capacity:
            return False
        # dynamic_threshold(), inlined for the per-packet path.
        return queue_occupancy < self.alpha * (self.capacity - self.used)

    def reserve(self, size: int) -> None:
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used
        if self.used > self.capacity:
            raise AssertionError("shared buffer overcommitted")

    def release(self, size: int) -> None:
        self.used -= size
        if self.used < 0:
            raise AssertionError("shared buffer under-run")
