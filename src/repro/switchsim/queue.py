"""A single FIFO egress queue with per-color accounting.

The FIFO preserves packet order (the reason TLT uses colors within one
queue rather than separate queues, §4.1). Entries remember the ingress
port so PFC counters can be released on dequeue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.net.packet import Color, Packet


class EgressQueue:
    """FIFO of ``(packet, ingress_port_no)`` with byte-accurate occupancy."""

    __slots__ = (
        "port_no",
        "items",
        "occupancy",
        "red_bytes",
        "max_occupancy",
        "max_red_bytes",
        "dequeued_bytes",
    )

    def __init__(self, port_no: int):
        self.port_no = port_no
        self.items: Deque[Tuple[Packet, int]] = deque()
        self.occupancy = 0
        self.red_bytes = 0
        self.max_occupancy = 0
        self.max_red_bytes = 0
        self.dequeued_bytes = 0

    def push(self, packet: Packet, ingress_port_no: int) -> None:
        self.items.append((packet, ingress_port_no))
        self.occupancy += packet.size
        if packet.color == Color.RED:
            self.red_bytes += packet.size
            if self.red_bytes > self.max_red_bytes:
                self.max_red_bytes = self.red_bytes
        if self.occupancy > self.max_occupancy:
            self.max_occupancy = self.occupancy

    def pop(self) -> Optional[Tuple[Packet, int]]:
        if not self.items:
            return None
        packet, ingress = self.items.popleft()
        self.occupancy -= packet.size
        self.dequeued_bytes += packet.size
        if packet.color == Color.RED:
            self.red_bytes -= packet.size
        return packet, ingress

    def __len__(self) -> int:
        return len(self.items)
