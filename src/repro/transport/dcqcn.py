"""DCQCN rate control (Zhu et al., SIGCOMM 2015).

The receiver-side piece (CNP generation, at most one per 50 µs while CE
marks arrive) lives in :class:`repro.transport.roce.RoceReceiver`; this
module is the sender-side rate machine:

- **cut** on CNP: ``Rt = Rc; Rc = Rc·(1-α/2); α = (1-g)·α + g``;
- **α decay** every 55 µs without a CNP: ``α = (1-g)·α``;
- **increase** events from a 55 µs timer and a byte counter, moving
  through fast recovery → additive increase → hyper increase stages.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.transport.base import TransportConfig


class DcqcnRateControl:
    """Per-flow DCQCN rate state machine."""

    def __init__(self, engine: Engine, config: TransportConfig, on_rate_change: Optional[Callable[[], None]] = None):
        self.engine = engine
        self.config = config
        self.on_rate_change = on_rate_change
        self.rc = float(config.link_rate_bps)  # current rate
        self.rt = float(config.link_rate_bps)  # target rate
        self.alpha = 1.0
        self.time_stage = 0
        self.byte_stage = 0
        self._bytes_since = 0
        self._alpha_event = None
        self._rate_event = None
        self._active = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._schedule_alpha_timer()
        self._schedule_rate_timer()

    def stop(self) -> None:
        self._active = False
        for event in (self._alpha_event, self._rate_event):
            if event is not None:
                event.cancel()
        self._alpha_event = None
        self._rate_event = None

    @property
    def rate_bps(self) -> int:
        return int(self.rc)

    # -- congestion feedback ---------------------------------------------------

    def on_cnp(self) -> None:
        """React to a Congestion Notification Packet: cut the rate."""
        g = self.config.dcqcn_g
        self.rt = self.rc
        self.rc = max(self.rc * (1 - self.alpha / 2), self.config.min_rate_bps)
        self.alpha = (1 - g) * self.alpha + g
        self.time_stage = 0
        self.byte_stage = 0
        self._bytes_since = 0
        self._schedule_alpha_timer(restart=True)
        self._schedule_rate_timer(restart=True)
        self._notify()

    def on_bytes_sent(self, nbytes: int) -> None:
        """Feed the byte counter; may trigger an increase event."""
        if not self._active:
            return
        self._bytes_since += nbytes
        if self._bytes_since >= self.config.dcqcn_byte_counter:
            self._bytes_since = 0
            self.byte_stage += 1
            self._increase()

    # -- timers ---------------------------------------------------------------------

    def _schedule_alpha_timer(self, restart: bool = False) -> None:
        if self._alpha_event is not None:
            if not restart:
                return
            self._alpha_event.cancel()
        self._alpha_event = self.engine.schedule_timer(
            self.config.dcqcn_alpha_timer_ns, self._alpha_fire
        )

    def _alpha_fire(self) -> None:
        self._alpha_event = None
        if not self._active:
            return
        self.alpha *= 1 - self.config.dcqcn_g
        self._schedule_alpha_timer()

    def _schedule_rate_timer(self, restart: bool = False) -> None:
        if self._rate_event is not None:
            if not restart:
                return
            self._rate_event.cancel()
        self._rate_event = self.engine.schedule_timer(
            self.config.dcqcn_rate_timer_ns, self._rate_fire
        )

    def _rate_fire(self) -> None:
        self._rate_event = None
        if not self._active:
            return
        self.time_stage += 1
        self._increase()
        self._schedule_rate_timer()

    # -- increase stages -----------------------------------------------------------

    def _increase(self) -> None:
        f = self.config.dcqcn_fr_stages
        if self.time_stage < f and self.byte_stage < f:
            pass  # fast recovery: move Rc halfway to Rt, target unchanged
        elif self.time_stage >= f and self.byte_stage >= f:
            self.rt += self.config.dcqcn_rate_hai_bps  # hyper increase
        else:
            self.rt += self.config.dcqcn_rate_ai_bps  # additive increase
        self.rt = min(self.rt, float(self.config.link_rate_bps))
        self.rc = (self.rt + self.rc) / 2
        self.rc = min(self.rc, float(self.config.link_rate_bps))
        self._notify()

    def _notify(self) -> None:
        if self.on_rate_change is not None:
            self.on_rate_change()
