"""DCTCP: ECN-fraction-proportional window control (Alizadeh et al.).

The receiver echoes the CE bit of every data packet (we ACK every
packet, so the echo is exact — equivalent to DCTCP's delayed-ACK state
machine at higher fidelity). The sender maintains the EWMA marked
fraction α per observation window and reduces ``cwnd`` once per window
by ``α/2``. On packet loss DCTCP falls back to vanilla TCP halving.
"""

from __future__ import annotations

from repro.net.node import Host
from repro.stats.collector import NetStats
from repro.transport.base import (
    ByteStreamReceiver,
    ByteStreamSender,
    FlowSpec,
    TransportConfig,
)


class DctcpSender(ByteStreamSender):
    """DCTCP sender; requires ``config.ecn = True``."""

    name = "dctcp"

    def __init__(self, host: Host, spec: FlowSpec, config: TransportConfig, stats: NetStats):
        super().__init__(host, spec, config, stats)
        self.alpha = 1.0  # start conservative, as in the DCTCP paper
        self._acked_total = 0
        self._acked_marked = 0
        self._obs_window_end = 0
        self._cwr_window_end = -1

    # -- hooks ------------------------------------------------------------------

    def cc_after_ack(self, newly_acked: int) -> None:
        self._acked_total += newly_acked
        if self.snd_una >= self._obs_window_end:
            if self._acked_total > 0:
                fraction = self._acked_marked / self._acked_total
                g = self.config.dctcp_g
                self.alpha = (1 - g) * self.alpha + g * fraction
            self._acked_total = 0
            self._acked_marked = 0
            self._obs_window_end = self.snd_nxt

    def cc_on_ecn_echo(self, newly_acked: int) -> None:
        self._acked_marked += newly_acked
        # One proportional reduction per window of data.
        if self.snd_una > self._cwr_window_end:
            self._cwr_window_end = self.snd_nxt
            new_cwnd = int(self.cwnd * (1 - self.alpha / 2))
            self.cwnd = max(new_cwnd, self.mss)
            self.ssthresh = self.cwnd
            self._ca_acc = 0


class DctcpReceiver(ByteStreamReceiver):
    """DCTCP receiver: CE echo happens in the base (per-packet ACKs)."""


def dctcp_config(**overrides) -> TransportConfig:
    """A TransportConfig with DCTCP defaults (ECN on)."""
    config = TransportConfig(**overrides)
    config.ecn = True
    return config
