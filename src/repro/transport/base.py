"""Shared transport machinery and the window-based byte-stream base.

:class:`ByteStreamSender` / :class:`ByteStreamReceiver` implement the
mechanics every TCP-family transport shares: a segment scoreboard with
SACK, dup-ACK-threshold-1 early retransmit, Linux-style RTO handling
with exponential backoff, and NewReno-style recovery. Congestion
control variants (Reno, DCTCP) override the ``cc_*`` hooks.

TLT hooks (``tlt`` on the sender, ``tlt_rx`` on the receiver) are
optional objects provided by :mod:`repro.core.window`; when absent the
transport behaves exactly like the baseline protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from collections import deque

from repro.net.node import Host
from repro.net.packet import Color, Packet, PacketKind, TltMark, alloc_packet
from repro.sim.units import MICROS, MILLIS
from repro.stats.collector import FlowRecord, NetStats
from repro.transport.rto import FixedRto, RtoEstimator
from repro.transport.sack import ReceiverBuffer


@dataclass
class FlowSpec:
    """Description of one flow to run."""

    flow_id: int
    src: int
    dst: int
    size: int
    start_ns: int = 0
    group: str = "bg"  # "fg" foreground/incast or "bg" background
    on_complete_rx: Optional[Callable[["FlowRecord"], None]] = None
    on_complete_ack: Optional[Callable[["FlowRecord"], None]] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size}")
        if self.src == self.dst:
            raise ValueError("flow source and destination must differ")
        if self.start_ns < 0:
            raise ValueError("flow start time cannot be negative")


@dataclass
class TransportConfig:
    """Knobs shared across the transport suite (paper defaults)."""

    mss: int = 1460
    init_cwnd_segments: int = 10
    rto_min_ns: int = 4 * MILLIS
    rto_max_ns: int = 1_000 * MILLIS
    fixed_rto_ns: Optional[int] = None  # static RTO (e.g. the 160 us strawman)
    dupack_threshold: int = 1
    ecn: bool = False  # sender sets ECT, reacts to echoes (DCTCP)
    dctcp_g: float = 1.0 / 16.0
    tlp_enabled: bool = False
    tlp_pto_min_ns: int = 10 * MICROS
    # Model the 3-way handshake and FIN teardown. SYN/SYN-ACK/FIN are
    # control packets — always important/green under TLT (§5). Off by
    # default: the paper's benchmarks pre-establish connections.
    handshake: bool = False
    # Sender window cap (the role the receive window plays on real
    # hosts); None derives 4x BDP from base_rtt/link_rate.
    max_cwnd_bytes: Optional[int] = None
    # Switch traffic class carried by every packet of the flow
    # (incremental deployment, §5.3: TLT and legacy traffic can be
    # isolated in separate egress queues).
    traffic_class: int = 0
    # Color stamped on every packet of a *non-TLT* flow. None keeps the
    # default (green, i.e. untouched by color-aware dropping). Set to
    # Color.RED to model legacy traffic whose packets carry no TLT DSCP
    # and are classified unimportant by a TLT-configured ACL — the
    # §5.3 misdeployment the incremental-deployment experiment shows.
    plain_color: Optional[object] = None
    # RoCE family additions.
    packet_payload: int = 1000
    window_cap_bytes: Optional[int] = None
    # HPCC parameters.
    hpcc_eta: float = 0.95
    hpcc_max_stage: int = 5
    hpcc_wai_bytes: int = 1000  # additive increase per adjustment
    base_rtt_ns: int = 80 * MICROS
    # DCQCN parameters.
    dcqcn_rate_ai_bps: int = 40_000_000  # 40 Mbps additive increase
    dcqcn_rate_hai_bps: int = 400_000_000
    dcqcn_g: float = 1.0 / 256.0
    dcqcn_alpha_timer_ns: int = 55 * MICROS
    dcqcn_rate_timer_ns: int = 55 * MICROS
    dcqcn_byte_counter: int = 10 * 1_000_000
    dcqcn_fr_stages: int = 5
    cnp_interval_ns: int = 50 * MICROS
    min_rate_bps: int = 40_000_000
    link_rate_bps: int = 40_000_000_000

    def make_rto(self) -> RtoEstimator:
        if self.fixed_rto_ns is not None:
            return FixedRto(self.fixed_rto_ns, self.rto_max_ns)
        return RtoEstimator(self.rto_min_ns, self.rto_max_ns)


class Segment:
    """Sender-side scoreboard entry for one transmitted segment."""

    __slots__ = (
        "start",
        "end",
        "size",
        "acked",
        "sacked",
        "lost",
        "in_pipe",
        "retx_count",
        "first_tx_ns",
        "last_tx_ns",
        "delivered",
    )

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end
        self.size = end - start  # bounds are fixed for the segment's life
        self.acked = False
        self.sacked = False
        self.lost = False
        self.in_pipe = False
        self.retx_count = 0
        self.first_tx_ns = -1
        self.last_tx_ns = -1
        self.delivered = False  # delivery-time sample recorded

    def __repr__(self) -> str:  # pragma: no cover
        flags = "".join(
            c
            for c, f in (
                ("A", self.acked),
                ("S", self.sacked),
                ("L", self.lost),
                ("P", self.in_pipe),
            )
            if f
        )
        return f"Seg[{self.start},{self.end}){flags}"


class ByteStreamReceiver:
    """Receives a byte stream, ACKs every data packet, generates SACK."""

    def __init__(self, host: Host, spec: FlowSpec, config: TransportConfig, stats: NetStats):
        self.host = host
        self.spec = spec
        self.config = config
        self.stats = stats
        self.engine = host.engine
        self.buffer = ReceiverBuffer()
        self.tlt_rx = None  # set by repro.core.window.TltWindowReceiver
        self.done = False
        host.register_endpoint(spec.flow_id, self)

    @property
    def record(self) -> Optional[FlowRecord]:
        """The flow record created by the sender (shared via stats)."""
        return self.stats.flows.get(self.spec.flow_id)

    def on_packet(self, packet: Packet) -> None:
        kind = packet.kind
        if kind != PacketKind.DATA:  # DATA first: it is the common case
            if kind == PacketKind.SYN:
                self._send_syn_ack(packet)
            # FIN and anything else: teardown is fire-and-forget;
            # bookkeeping is done at rx.
            return
        tlt_rx = self.tlt_rx
        if tlt_rx is not None:
            tlt_rx.on_data(packet)
        buffer = self.buffer
        buffer.on_data(packet.seq, packet.payload)
        spec = self.spec
        if not self.done and buffer.rcv_nxt >= spec.size:
            self.done = True
            if self.record is not None:
                self.record.end_rx_ns = self.engine.now
            if spec.on_complete_rx is not None:
                spec.on_complete_rx(self.record)
        # _send_ack, inlined: one ACK per delivered data packet.
        config = self.config
        ack = alloc_packet(
            spec.flow_id, spec.dst, spec.src, PacketKind.ACK, 0, 0, buffer.rcv_nxt
        )
        ack.sack = buffer.sack_blocks() if buffer.intervals else ()
        ack.ecn_echo = packet.ce
        ack.ts_echo = packet.ts_sent
        ack.tclass = config.traffic_class
        # Pure ACKs are control packets: always important (green).
        ack.color = Color.GREEN
        ack.mark = TltMark.CONTROL
        if tlt_rx is not None:
            tlt_rx.mark_ack(ack)
        elif config.plain_color is not None:
            ack.color = config.plain_color
            ack.mark = TltMark.NONE
        self.host.send(ack)

    def _send_syn_ack(self, syn: Packet) -> None:
        """Reply to a SYN; idempotent for retransmitted SYNs."""
        syn_ack = alloc_packet(self.spec.flow_id, self.spec.dst, self.spec.src, PacketKind.SYN_ACK)
        syn_ack.ts_echo = syn.ts_sent
        syn_ack.tclass = self.config.traffic_class
        syn_ack.color = Color.GREEN
        syn_ack.mark = TltMark.CONTROL
        self.host.send(syn_ack)

    def _send_ack(self, data_packet: Packet) -> None:
        """Out-of-line ACK generation (kept for subclasses and tests;
        the DATA path in :meth:`on_packet` inlines this)."""
        spec = self.spec
        buffer = self.buffer
        ack = alloc_packet(
            spec.flow_id, spec.dst, spec.src, PacketKind.ACK, 0, 0, buffer.rcv_nxt
        )
        ack.sack = buffer.sack_blocks() if buffer.intervals else ()
        ack.ecn_echo = data_packet.ce
        ack.ts_echo = data_packet.ts_sent
        ack.tclass = self.config.traffic_class
        # Pure ACKs are control packets: always important (green).
        ack.color = Color.GREEN
        ack.mark = TltMark.CONTROL
        if self.tlt_rx is not None:
            self.tlt_rx.mark_ack(ack)
        elif self.config.plain_color is not None:
            ack.color = self.config.plain_color
            ack.mark = TltMark.NONE
        self.host.send(ack)


class ByteStreamSender:
    """Window-based reliable sender (base for TCP/DCTCP and variants)."""

    #: overridden by subclasses for reporting
    name = "bytestream"

    def __init__(
        self,
        host: Host,
        spec: FlowSpec,
        config: TransportConfig,
        stats: NetStats,
    ):
        self.host = host
        self.spec = spec
        self.config = config
        self.stats = stats
        self.engine = host.engine
        self.record = stats.new_flow(
            spec.flow_id, spec.src, spec.dst, spec.size, spec.start_ns, spec.group
        )

        mss = config.mss
        self.mss = mss
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = config.init_cwnd_segments * mss
        self.ssthresh = 1 << 60
        self.pipe = 0
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self.segments: List[Segment] = []
        self._head = 0  # index of first not-fully-acked segment
        self.lost_queue: Deque[Segment] = deque()
        self._ca_acc = 0  # congestion-avoidance byte accumulator
        self._highest_sacked = 0  # highest SACKed sequence seen
        self._scan_hint = 0  # first index possibly unresolved below SACK
        # Retransmitted segments awaiting ACK. An insertion-ordered dict,
        # not a set: Segment hashes by identity, so set iteration order
        # would depend on heap addresses — the RACK re-mark loop in
        # _detect_losses() would then retransmit same-pass losses in a
        # process-dependent order. Dict iteration is insertion
        # (= retransmission) order, a pure function of simulation state.
        self._retx_inflight: dict = {}
        if config.max_cwnd_bytes is not None:
            self.max_cwnd = config.max_cwnd_bytes
        else:
            bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
            self.max_cwnd = max(4 * bdp, 64 * mss)

        self.rto = config.make_rto()
        self._rto_deadline: Optional[int] = None
        self._rto_event = None
        self._pto_event = None
        self._probe_outstanding = False

        self.tlt = None  # set by repro.core.window.TltWindowSender
        self.started = False
        self.established = False  # True once the (optional) handshake ends
        self.completed = False

        host.register_endpoint(spec.flow_id, self)
        # Handle kept so a sharded run can neuter the inert sender
        # replica on a non-owning shard (repro.sim.sharding).
        self._start_event = self.engine.schedule_at(spec.start_ns, self.start)

    # ------------------------------------------------------------------ start

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        if self.config.handshake:
            self._send_syn()
        else:
            self.established = True
            self.try_send()

    # ------------------------------------------------------------ handshake

    def _send_syn(self) -> None:
        syn = alloc_packet(self.spec.flow_id, self.spec.src, self.spec.dst, PacketKind.SYN)
        syn.ts_sent = self.engine.now
        syn.tclass = self.config.traffic_class
        syn.color = Color.GREEN
        syn.mark = TltMark.CONTROL
        self.host.send(syn)
        # SYN retransmission timer (counts as a timeout when it fires).
        self._arm_rto()

    def _on_syn_ack(self, packet: Packet) -> None:
        if self.established:
            return
        self.established = True
        if packet.ts_echo > 0:
            self.rto.on_rtt_sample(self.engine.now - packet.ts_echo)
        self._cancel_rto()
        self.try_send()

    def _send_fin(self) -> None:
        fin = alloc_packet(self.spec.flow_id, self.spec.src, self.spec.dst, PacketKind.FIN)
        fin.ts_sent = self.engine.now
        fin.tclass = self.config.traffic_class
        fin.color = Color.GREEN
        fin.mark = TltMark.CONTROL
        self.host.send(fin)

    # ------------------------------------------------------------ send path

    def _next_candidate(self):
        """Peek the next thing to send: a lost segment or new data.

        Returns ``("retx", segment)``, ``("new", length)`` or None.
        """
        while self.lost_queue:
            seg = self.lost_queue[0]
            if seg.acked or seg.sacked or not seg.lost:
                self.lost_queue.popleft()
                continue
            return ("retx", seg)
        if self.snd_nxt < self.spec.size:
            return ("new", min(self.mss, self.spec.size - self.snd_nxt))
        return None

    def try_send(self) -> int:
        """Send as much as the window allows; returns packets sent.

        Open-coded version of the :meth:`_next_candidate` walk — this
        runs once per ACK, and the tuple returns showed up in profiles.
        """
        if not self.started or not self.established or self.completed:
            return 0
        sent = 0
        lost_queue = self.lost_queue
        cwnd = self.cwnd  # constant across the burst (_transmit never adjusts it)
        mss = self.mss
        spec_size = self.spec.size
        while True:
            # Retransmissions first (same policy as _next_candidate).
            seg = None
            while lost_queue:
                head = lost_queue[0]
                if head.acked or head.sacked or not head.lost:
                    lost_queue.popleft()
                    continue
                seg = head
                break
            if seg is not None:
                if self.pipe + seg.size > cwnd:
                    break
                lost_queue.popleft()
            else:
                remaining = spec_size - self.snd_nxt
                if remaining <= 0:
                    break
                size = mss if mss < remaining else remaining
                if self.pipe + size > cwnd:
                    break
                seg = Segment(self.snd_nxt, self.snd_nxt + size)
                self.segments.append(seg)
                self.snd_nxt = seg.end
            self._transmit(seg)
            sent += 1
        return sent

    def _transmit(self, seg: Segment, clock_mark: bool = False) -> None:
        now = self.engine.now
        size = seg.size
        record = self.record
        is_retx = seg.first_tx_ns >= 0
        if is_retx:
            seg.retx_count += 1
            seg.lost = False
            record.retx_bytes += size
            self._retx_inflight[seg] = None
        else:
            seg.first_tx_ns = now
        seg.last_tx_ns = now
        if not seg.in_pipe:
            seg.in_pipe = True
            self.pipe += size

        spec = self.spec
        config = self.config
        packet = alloc_packet(
            spec.flow_id, spec.src, spec.dst, PacketKind.DATA, seg.start, size
        )
        packet.ecn_capable = config.ecn
        packet.ts_sent = now
        packet.tclass = config.traffic_class
        packet.is_retx = is_retx
        record.tx_bytes += size

        tlt = self.tlt
        if tlt is not None:
            if clock_mark:
                tlt.mark_clock_data(packet)
            else:
                tlt.mark_data(packet, self._is_last_allowed(seg))
        elif config.plain_color is not None:
            packet.color = config.plain_color
        self.host.send(packet)
        self._arm_rto()
        self._arm_pto()

    def _is_last_allowed(self, just_sent: Segment) -> bool:
        """True when no further send can follow right now (window edge
        or end of data) — the packet at the tail of the current burst.

        Open-coded :meth:`_next_candidate` walk (including its stale-
        entry cleanup); this runs once per TLT-marked transmission.
        """
        lost_queue = self.lost_queue
        if just_sent.end >= self.spec.size and not lost_queue:
            return True
        while lost_queue:
            head = lost_queue[0]
            if head.acked or head.sacked or not head.lost:
                lost_queue.popleft()
                continue
            return self.pipe + head.size > self.cwnd
        remaining = self.spec.size - self.snd_nxt
        if remaining <= 0:
            return True
        size = self.mss if self.mss < remaining else remaining
        return self.pipe + size > self.cwnd

    # ------------------------------------------------------------ receive path

    def on_packet(self, packet: Packet) -> None:
        if self.completed:
            return
        kind = packet.kind
        if kind != PacketKind.ACK:  # ACK first: it is the common case
            if kind == PacketKind.SYN_ACK:
                self._on_syn_ack(packet)
            return
        tlt = self.tlt
        if tlt is not None and not tlt.on_ack(packet):
            return  # Important Clock Echo suppressed below snd_una
        now = self.engine.now

        # Timestamp-based RTT sample (Karn-safe: echo carries the actual
        # transmission time of the packet that triggered this ACK).
        ts_echo = packet.ts_echo
        if ts_echo > 0:
            rtt = now - ts_echo
            self.rto.on_rtt_sample(rtt)
            self.stats.add_rtt_sample(rtt, self.spec.group)

        newly_acked = 0
        ack = packet.ack
        snd_una = self.snd_una
        if ack > snd_una:
            newly_acked = ack - snd_una
            self.snd_una = ack
            self.dupacks = 0
            self._probe_outstanding = False
            self._advance_head(ack)
            if self.in_recovery and ack >= self.recover_point:
                self.in_recovery = False
            self._restart_rto()
        elif ack == snd_una and snd_una < self.snd_nxt:
            self.dupacks += 1

        sacked_bytes = self._apply_sack(packet.sack)

        if tlt is not None:
            # Echo-based loss detection runs once the ACK/SACK state is
            # current, so freshly acknowledged segments are not marked.
            tlt.on_ack_post(packet)

        config = self.config
        # ECN echo processing (DCTCP overrides).
        if packet.ecn_echo and config.ecn:
            self.cc_on_ecn_echo(newly_acked)
        self.cc_after_ack(newly_acked)

        if newly_acked and not self.in_recovery:
            self.cc_on_ack_increase(newly_acked)

        # Loss detection: dup-ACK threshold (1 = early retransmit) or
        # SACK holes below the highest SACKed sequence.
        if self.dupacks >= config.dupack_threshold or sacked_bytes:
            self._detect_losses()

        if self.snd_una >= self.spec.size:
            self._complete()
            return

        self.try_send()
        if tlt is not None:
            tlt.after_ack()

    def _advance_head(self, ack: int) -> None:
        segs = self.segments
        idx = self._head
        n = len(segs)
        now = self.engine.now
        pipe_drop = 0
        retx_pop = self._retx_inflight.pop
        add_sample = self.stats.add_delivery_sample
        while idx < n:
            seg = segs[idx]
            if seg.end > ack:
                break
            if seg.in_pipe:
                seg.in_pipe = False
                pipe_drop += seg.size
            if not seg.delivered:
                seg.delivered = True
                add_sample(now - seg.first_tx_ns)
            seg.acked = True
            seg.lost = False
            retx_pop(seg, None)
            idx += 1
        if pipe_drop:
            self.pipe -= pipe_drop
        self._head = idx
        if self._scan_hint < idx:
            self._scan_hint = idx

    def _apply_sack(self, blocks) -> int:
        """Mark SACKed segments. Segments are MSS-aligned, so a block's
        first segment index is ``lo // mss`` — no window scan needed."""
        if not blocks:
            return 0
        newly = 0
        now = self.engine.now
        segs = self.segments
        mss = self.mss
        head = self._head
        n = len(segs)
        pipe_drop = 0
        retx_pop = self._retx_inflight.pop
        add_sample = self.stats.add_delivery_sample
        for lo, hi in blocks:
            if hi > self._highest_sacked:
                self._highest_sacked = hi
            idx = lo // mss
            if idx < head:
                idx = head
            while idx < n:
                seg = segs[idx]
                if seg.start >= hi:
                    break
                if not (seg.acked or seg.sacked) and seg.start >= lo and seg.end <= hi:
                    seg.sacked = True
                    seg.lost = False
                    if seg.in_pipe:
                        seg.in_pipe = False
                        pipe_drop += seg.size
                    if not seg.delivered:
                        seg.delivered = True
                        add_sample(now - seg.first_tx_ns)
                    retx_pop(seg, None)
                    newly += seg.size
                idx += 1
        if pipe_drop:
            self.pipe -= pipe_drop
        return newly

    def _outstanding(self):
        """Iterate segments at/after the head (not cumulatively acked)."""
        segs = self.segments
        for idx in range(self._head, len(segs)):
            yield segs[idx]

    def _detect_losses(self) -> None:
        """Mark holes lost (dup-ACK threshold 1 / SACK-based).

        Three rules, each amortized O(1) per segment transition:

        1. never-retransmitted segments below the highest SACK are holes
           (scanned once thanks to the resolved-prefix hint);
        2. on a duplicate ACK the head-of-line segment is a hole
           (early retransmit, dup-ACK threshold 1);
        3. a *retransmitted* segment is only re-marked once it has aged
           a full SRTT below the highest SACK (RACK-style) — re-marking
           it on every ACK would spuriously retransmit in-flight data.
        """
        now = self.engine.now
        srtt = self.rto.srtt or self.config.base_rtt_ns
        marked = 0
        segs = self.segments
        n = len(segs)
        highest = self._highest_sacked

        idx = max(self._head, self._scan_hint)
        while idx < n:
            seg = segs[idx]
            if seg.end > highest:
                break
            if not (seg.acked or seg.sacked or seg.lost) and seg.retx_count == 0:
                self._mark_lost(seg)
                marked += 1
            idx += 1
        self._scan_hint = idx

        if self.dupacks >= self.config.dupack_threshold and self._head < n:
            head_seg = segs[self._head]
            if not (head_seg.acked or head_seg.sacked or head_seg.lost):
                if head_seg.retx_count == 0 or head_seg.last_tx_ns + srtt <= now:
                    self._mark_lost(head_seg)
                    marked += 1

        if self._retx_inflight:
            for seg in list(self._retx_inflight):
                if seg.acked or seg.sacked or seg.lost:
                    self._retx_inflight.pop(seg, None)
                    continue
                if seg.end <= highest and seg.last_tx_ns + srtt <= now:
                    self._mark_lost(seg)
                    marked += 1

        if marked:
            self._enter_recovery()

    def _mark_lost(self, seg: Segment) -> None:
        if seg.lost or seg.acked or seg.sacked:
            return
        seg.lost = True
        if seg.in_pipe:
            seg.in_pipe = False
            self.pipe -= seg.size
        self._retx_inflight.pop(seg, None)
        self.lost_queue.append(seg)

    def mark_lost_sent_before(self, tx_time_ns: int) -> int:
        """TLT echo-based loss detection: everything transmitted at or
        before ``tx_time_ns`` that is still unacknowledged is lost
        (§5.1, 'guaranteed fast loss detection'). Returns bytes marked."""
        marked = 0
        for seg in self._outstanding():
            if seg.acked or seg.sacked or seg.lost:
                continue
            if seg.last_tx_ns >= 0 and seg.last_tx_ns <= tx_time_ns and seg.in_pipe:
                self._mark_lost(seg)
                marked += seg.size
        if marked:
            self._enter_recovery()
        return marked

    def _enter_recovery(self) -> None:
        if self.in_recovery:
            return
        self.in_recovery = True
        self.recover_point = self.snd_nxt
        self.stats.fast_retransmits += 1
        self.cc_on_loss()

    # --------------------------------------------------------------- timers

    def _arm_rto(self) -> None:
        if self._rto_deadline is None:
            self._restart_rto()

    def _restart_rto(self) -> None:
        self._rto_deadline = self.engine.now + self.rto.current
        if self._rto_event is None:
            self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)

    def _cancel_rto(self) -> None:
        self._rto_deadline = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.completed or self._rto_deadline is None:
            return
        now = self.engine.now
        if now < self._rto_deadline:
            self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)
            return
        if self.snd_una >= self.spec.size:
            return
        self._on_timeout()

    def _on_timeout(self) -> None:
        self.record.timeouts += 1
        self.stats.timeouts += 1
        if self.stats.audit_ring is not None:
            self.stats.audit_ring.record(
                "rto_fire", flow=self.spec.flow_id, time_ns=self.engine.now,
                info=self.rto.current,
            )
        if self.stats.on_rto_fire is not None:
            self.stats.on_rto_fire(self.spec.flow_id, self.rto.current)
        self.rto.backoff()
        if not self.established:
            # SYN (or SYN-ACK) lost: retransmit the SYN.
            self._rto_deadline = self.engine.now + self.rto.current
            self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)
            self._send_syn()
            return
        self.dupacks = 0
        # Collapse the window and retransmit from snd_una.
        self.ssthresh = max(self.pipe // 2, 2 * self.mss)
        self.cwnd = self.mss
        self._ca_acc = 0
        self.in_recovery = True
        self.recover_point = self.snd_nxt
        for seg in self._outstanding():
            if not (seg.acked or seg.sacked):
                self._mark_lost(seg)
        self._rto_deadline = self.engine.now + self.rto.current
        self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)
        self.try_send()

    # -------------------------------------------------------------- TLP

    def _arm_pto(self) -> None:
        if not self.config.tlp_enabled or self._probe_outstanding:
            return
        srtt = self.rto.srtt or self.config.base_rtt_ns
        pto = max(2 * srtt, self.config.tlp_pto_min_ns)
        pto = min(pto, self.rto.current)
        if self._pto_event is not None:
            self._pto_event.cancel()
        self._pto_event = self.engine.schedule_timer(pto, self._pto_fire)

    def _pto_fire(self) -> None:
        self._pto_event = None
        if self.completed or self.snd_una >= self.spec.size:
            return
        if self.pipe == 0 and self.snd_nxt <= self.snd_una:
            return
        # Transmit a loss probe: new data if any, else the highest
        # outstanding segment.
        self._probe_outstanding = True
        if self.snd_nxt < self.spec.size:
            size = min(self.mss, self.spec.size - self.snd_nxt)
            seg = Segment(self.snd_nxt, self.snd_nxt + size)
            self.segments.append(seg)
            self.snd_nxt = seg.end
            self._transmit(seg)
            return
        for idx in range(len(self.segments) - 1, self._head - 1, -1):
            seg = self.segments[idx]
            if not (seg.acked or seg.sacked):
                self._transmit(seg)
                return

    # ------------------------------------------------------- TLT helpers

    def is_all_acked(self) -> bool:
        """True when every byte of the flow has been acknowledged."""
        return self.snd_una >= self.spec.size

    def has_unrepaired_loss(self) -> bool:
        while self.lost_queue:
            seg = self.lost_queue[0]
            if seg.acked or seg.sacked or not seg.lost:
                self.lost_queue.popleft()
                continue
            return True
        return False

    def outstanding_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    def clock_retransmit(self) -> int:
        """Important ACK-clocking, 1-MSS flavor: retransmit the first
        lost segment (or the first unacked one when nothing is marked
        lost). The caller (TLT controller) marks the packet.
        Returns the number of bytes sent."""
        seg: Optional[Segment] = None
        while self.lost_queue:
            head = self.lost_queue[0]
            if head.acked or head.sacked or not head.lost:
                self.lost_queue.popleft()
                continue
            seg = head
            self.lost_queue.popleft()
            break
        if seg is None:
            for cand in self._outstanding():
                if not (cand.acked or cand.sacked):
                    seg = cand
                    break
        if seg is None:
            return 0
        self._transmit(seg, clock_mark=True)
        return seg.size

    def clock_one_byte(self) -> None:
        """Important ACK-clocking, 1-byte flavor: resend the first
        unacked byte (minimal footprint, §5.1)."""
        packet = alloc_packet(
            self.spec.flow_id, self.spec.src, self.spec.dst, PacketKind.DATA,
            seq=self.snd_una, payload=1,
        )
        packet.ecn_capable = self.config.ecn
        packet.ts_sent = self.engine.now
        packet.tclass = self.config.traffic_class
        packet.is_retx = True
        if self.tlt is not None:
            self.tlt.mark_clock_data(packet)
        self.host.send(packet)
        self._arm_rto()

    # ------------------------------------------------------- CC hooks

    def cc_on_ack_increase(self, newly_acked: int) -> None:
        """Reno growth: slow start below ssthresh, else 1 MSS per RTT;
        capped at ``max_cwnd`` (the receive-window role)."""
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly_acked, self.mss)
        else:
            self._ca_acc += self.mss * newly_acked
            if self._ca_acc >= self.cwnd:
                self._ca_acc -= self.cwnd
                self.cwnd += self.mss
        if self.cwnd > self.max_cwnd:
            self.cwnd = self.max_cwnd

    def cc_on_loss(self) -> None:
        """Reno halving on entering fast recovery."""
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.ssthresh
        self._ca_acc = 0

    def cc_on_ecn_echo(self, newly_acked: int) -> None:
        """ECN reaction; vanilla TCP treats it like loss (once per window)."""

    def cc_after_ack(self, newly_acked: int) -> None:
        """Per-ACK hook for subclasses (e.g. DCTCP fraction tracking)."""

    # ------------------------------------------------------------- completion

    def _complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        self._cancel_rto()
        if self._pto_event is not None:
            self._pto_event.cancel()
            self._pto_event = None
        self.record.end_ack_ns = self.engine.now
        self.record.final_rto_ns = self.rto.base_rto
        self.record.final_srtt_ns = self.rto.srtt
        if self.config.handshake:
            self._send_fin()
        if self.spec.on_complete_ack is not None:
            self.spec.on_complete_ack(self.record)
