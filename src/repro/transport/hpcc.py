"""HPCC window control (Li et al., SIGCOMM 2019).

Every data packet requests in-band telemetry; switches append one
record per hop at dequeue (queue length, cumulative transmitted bytes,
timestamp, link rate), and the receiver echoes the stack on the ACK.
The sender estimates per-link normalized in-flight ``U`` and drives the
window toward ``eta`` (95%) utilization:

- ``U > eta`` (or too many additive steps): ``W = Wc / (U/eta) + W_AI``,
- otherwise ``W = Wc + W_AI``,

with the reference window ``Wc`` updated once per RTT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import IntRecord, Packet
from repro.transport.base import TransportConfig


class HpccController:
    """Per-flow HPCC window computation from echoed INT stacks."""

    def __init__(self, config: TransportConfig):
        self.config = config
        bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
        self.window = bdp
        self.reference_window = float(bdp)
        self.max_window = bdp
        self.u = 0.0
        self.inc_stage = 0
        self._last_update_seq = 0
        self._prev_ints: Optional[List[IntRecord]] = None

    def on_ack(self, ack: Packet, snd_nxt: int) -> None:
        """Process an ACK carrying an INT echo; updates ``self.window``."""
        ints = ack.int_echo
        if not ints:
            return
        u = self._measure_inflight(ints)
        update_wc = ack.ack > self._last_update_seq
        self._compute_window(u, update_wc)
        if update_wc:
            self._last_update_seq = snd_nxt
        self._prev_ints = ints

    # -- HPCC Algorithm 1 ------------------------------------------------------

    def _measure_inflight(self, ints: List[IntRecord]) -> float:
        base_rtt = self.config.base_rtt_ns
        prev = self._prev_ints
        u_max = 0.0
        tau = base_rtt
        for hop, record in enumerate(ints):
            if prev is not None and hop < len(prev):
                prev_rec = prev[hop]
                dt = record.ts - prev_rec.ts
                dbytes = record.tx_bytes - prev_rec.tx_bytes
                qlen = min(record.qlen, prev_rec.qlen)
            else:
                dt = base_rtt
                dbytes = 0
                qlen = record.qlen
            if dt <= 0:
                continue
            tx_rate_bps = dbytes * 8 * 1_000_000_000 / dt
            bdp_bytes = record.rate_bps * base_rtt / 8 / 1_000_000_000
            u_hop = qlen / bdp_bytes + tx_rate_bps / record.rate_bps
            if u_hop > u_max:
                u_max = u_hop
                tau = dt
        tau = min(tau, base_rtt)
        self.u = (1 - tau / base_rtt) * self.u + (tau / base_rtt) * u_max
        return self.u

    def _compute_window(self, u: float, update_wc: bool) -> None:
        eta = self.config.hpcc_eta
        w_ai = self.config.hpcc_wai_bytes
        # An idle path measures U ~ 0; clamp so the multiplicative
        # branch (taken after max_stage additive steps) grows the
        # window instead of dividing by zero.
        u = max(u, 0.01)
        if u >= eta or self.inc_stage >= self.config.hpcc_max_stage:
            new_w = self.reference_window / (u / eta) + w_ai
            if update_wc:
                self.inc_stage = 0
                self.reference_window = new_w
        else:
            new_w = self.reference_window + w_ai
            if update_wc:
                self.inc_stage += 1
                self.reference_window = new_w
        self.window = int(min(max(new_w, w_ai), self.max_window))
