"""Receiver-side sequence tracking and SACK block generation.

Works in abstract sequence units: bytes for the TCP family, packet
sequence numbers for the RoCE family.
"""

from __future__ import annotations

from typing import List, Tuple


class ReceiverBuffer:
    """Tracks the cumulative point and out-of-order islands."""

    __slots__ = ("rcv_nxt", "intervals", "last_seq")

    def __init__(self) -> None:
        self.rcv_nxt = 0
        #: Disjoint, sorted [start, end) islands strictly above rcv_nxt.
        self.intervals: List[Tuple[int, int]] = []
        self.last_seq = -1

    def on_data(self, seq: int, length: int) -> int:
        """Record arrival of [seq, seq+length); returns bytes newly
        advanced past the cumulative point (0 for pure duplicates)."""
        if length <= 0:
            return 0
        start, end = seq, seq + length
        self.last_seq = seq
        before = self.rcv_nxt
        if end <= self.rcv_nxt:
            return 0  # stale duplicate
        start = max(start, self.rcv_nxt)

        # In-order fast path: no islands and nothing to merge.
        if start <= self.rcv_nxt and not self.intervals:
            self.rcv_nxt = end
            return end - before

        # Merge into the island list.
        merged: List[Tuple[int, int]] = []
        placed = False
        for lo, hi in self.intervals:
            if hi < start or lo > end:
                merged.append((lo, hi))
            else:
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append((start, end))
        merged.sort()
        self.intervals = merged

        # Advance the cumulative point across now-contiguous islands.
        while self.intervals and self.intervals[0][0] <= self.rcv_nxt:
            lo, hi = self.intervals.pop(0)
            if hi > self.rcv_nxt:
                self.rcv_nxt = hi
        return self.rcv_nxt - before

    def sack_blocks(self, max_blocks: int = 3) -> Tuple[Tuple[int, int], ...]:
        """Up to ``max_blocks`` SACK blocks; the island holding the most
        recently received sequence is reported first (RFC 2018)."""
        intervals = self.intervals
        if not intervals:
            return ()
        if len(intervals) == 1:
            # One island: recency reordering and truncation are no-ops.
            return (intervals[0],)
        blocks = list(intervals)
        recent = None
        for block in blocks:
            if block[0] <= self.last_seq < block[1]:
                recent = block
                break
        if recent is not None:
            blocks.remove(recent)
            blocks.insert(0, recent)
        return tuple(blocks[:max_blocks])

    def holes_exist(self) -> bool:
        return bool(self.intervals)

    def received_total(self) -> int:
        """Total distinct sequence units received."""
        return self.rcv_nxt + sum(hi - lo for lo, hi in self.intervals)
