"""Linux-style retransmission timeout estimation.

``RTO = SRTT + max(G, 4 * RTTVAR)``, clamped to ``[rto_min, rto_max]``,
with SRTT/RTTVAR EWMAs per RFC 6298 (gains 1/8 and 1/4) and exponential
backoff on consecutive timeouts. All arithmetic is integer nanoseconds.
"""

from __future__ import annotations

from repro.sim.units import MICROS, MILLIS


def _div_rtz(value: int, divisor: int) -> int:
    """Integer division rounding toward zero (RFC 6298 EWMA steps).

    Python's ``//`` floors toward -inf, so a negative EWMA delta like
    ``-1 // 8 == -1`` would systematically drag SRTT/RTTVAR low.
    """
    quotient = abs(value) // divisor
    return quotient if value >= 0 else -quotient


class RtoEstimator:
    """Tracks SRTT/RTTVAR and produces the current RTO."""

    __slots__ = ("rto_min", "rto_max", "granularity", "srtt", "rttvar", "backoff_count")

    def __init__(
        self,
        rto_min: int = 4 * MILLIS,
        rto_max: int = 1_000 * MILLIS,
        granularity: int = 10 * MICROS,
    ):
        if rto_min <= 0 or rto_max < rto_min:
            raise ValueError("invalid RTO bounds")
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.granularity = granularity
        self.srtt = 0  # 0 means "no sample yet"
        self.rttvar = 0
        self.backoff_count = 0

    def on_rtt_sample(self, rtt_ns: int) -> None:
        """Feed one RTT measurement (Karn-safe samples only)."""
        if rtt_ns <= 0:
            rtt_ns = 1
        srtt = self.srtt
        if srtt == 0:
            self.srtt = rtt_ns
            self.rttvar = rtt_ns // 2
        else:
            # _div_rtz, open-coded: this runs once per ACK-borne sample.
            delta = srtt - rtt_ns
            if delta < 0:
                delta = -delta
            d = delta - self.rttvar
            self.rttvar += d // 4 if d >= 0 else -(-d // 4)
            d = rtt_ns - srtt
            self.srtt += d // 8 if d >= 0 else -(-d // 8)
        self.backoff_count = 0

    @property
    def base_rto(self) -> int:
        """RTO before backoff."""
        if self.srtt == 0:
            return self.rto_min  # conservative default before any sample
        rto = self.srtt + max(self.granularity, 4 * self.rttvar)
        return min(max(rto, self.rto_min), self.rto_max)

    @property
    def current(self) -> int:
        """RTO including exponential backoff."""
        rto = self.base_rto << self.backoff_count
        return min(rto, self.rto_max)

    def backoff(self) -> None:
        """Double the RTO after a timeout (capped by rto_max)."""
        if (self.base_rto << self.backoff_count) < self.rto_max:
            self.backoff_count += 1


class FixedRto(RtoEstimator):
    """A static RTO (the 'aggressive fixed timeout' strawman of §2.2).

    RTT samples are accepted (so transports can still report SRTT) but
    never change the timeout; backoff still applies.
    """

    def __init__(self, rto_ns: int, rto_max: int = 1_000 * MILLIS):
        super().__init__(rto_min=rto_ns, rto_max=rto_max)
        self._fixed = rto_ns

    @property
    def base_rto(self) -> int:
        return self._fixed
