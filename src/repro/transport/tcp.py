"""TCP NewReno with SACK — the paper's "vanilla TCP" baseline.

The behaviour lives in :class:`repro.transport.base.ByteStreamSender`;
this subclass only pins the name and the default ECN setting (off).
"""

from __future__ import annotations

from repro.transport.base import ByteStreamReceiver, ByteStreamSender


class TcpSender(ByteStreamSender):
    """NewReno + SACK sender with dup-ACK threshold 1."""

    name = "tcp"


class TcpReceiver(ByteStreamReceiver):
    """Standard byte-stream receiver (per-packet ACKs, SACK)."""
