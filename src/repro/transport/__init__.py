"""Datacenter transports implemented from scratch on the simulator.

TCP family (byte-stream, window-based):
  - :mod:`repro.transport.tcp` — TCP NewReno with SACK and dup-ACK
    threshold 1 (early retransmit),
  - :mod:`repro.transport.dctcp` — DCTCP,
  - :mod:`repro.transport.tlp` — Tail Loss Probe add-on.

RoCE family (packet-sequence):
  - :mod:`repro.transport.roce` — the shared PSN base (go-back-N or
    selective retransmission, CNP plumbing, rate pacing, window caps),
  - :mod:`repro.transport.dcqcn` — DCQCN rate control (vanilla and
    +SACK variants),
  - :mod:`repro.transport.irn` — IRN (BDP window + selective retx),
  - :mod:`repro.transport.hpcc` — HPCC (INT-based window control).

Use :func:`repro.transport.registry.create_flow` to instantiate a
sender/receiver pair by transport name.
"""

from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.registry import TRANSPORTS, create_flow

__all__ = ["FlowSpec", "TransportConfig", "TRANSPORTS", "create_flow"]
