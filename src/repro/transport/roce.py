"""The RoCE family: a packet-sequence (PSN) transport base.

One sender/receiver pair supports every RoCE variant in the paper:

================  ========  =========  ==========  ==============
variant           recovery  pacing     window      RTO
================  ========  =========  ==========  ==============
``dcqcn``         go-back-N DCQCN rate —           static 4 ms
``dcqcn-sack``    selective DCQCN rate —           static 4 ms
``irn``           selective DCQCN rate BDP cap     RTO_high 1.93 ms
``hpcc``          selective —          HPCC (INT)  static 4 ms
================  ========  =========  ==========  ==============

Receivers ACK every packet (cumulative PSN + SACK blocks in selective
mode), NACK on out-of-order arrival in go-back-N mode, and emit a CNP
at most once per 50 µs while CE-marked packets arrive (DCQCN).

TLT attaches to ``hpcc``/``irn`` through the window-based controller
(§5.1; clocking injects a duplicate of the first unacknowledged packet
— RoCE cannot segment a PSN into bytes, a substitution documented in
DESIGN.md) and to ``dcqcn``/``dcqcn-sack`` through the rate-based
controller (§5.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.net.node import Host
from repro.net.packet import Color, HEADER_BYTES, Packet, PacketKind, TltMark, alloc_packet
from repro.net.topology import Network
from repro.sim.units import MILLIS, tx_time_ns
from repro.stats.collector import FlowRecord, NetStats
from repro.transport.base import FlowSpec, TransportConfig
from repro.transport.dcqcn import DcqcnRateControl
from repro.transport.hpcc import HpccController
from repro.transport.rto import FixedRto
from repro.transport.sack import ReceiverBuffer


class PState:
    """Per-PSN scoreboard entry."""

    __slots__ = ("acked", "sacked", "lost", "in_pipe", "first_tx_ns", "last_tx_ns", "retx_count", "delivered")

    def __init__(self) -> None:
        self.acked = False
        self.sacked = False
        self.lost = False
        self.in_pipe = False
        self.first_tx_ns = -1
        self.last_tx_ns = -1
        self.retx_count = 0
        self.delivered = False


class RoceSender:
    """Rate- and/or window-limited PSN sender."""

    name = "roce"

    def __init__(
        self,
        host: Host,
        spec: FlowSpec,
        config: TransportConfig,
        stats: NetStats,
        recovery: str = "sack",
        use_dcqcn: bool = True,
        window_cap_bytes: Optional[int] = None,
        use_hpcc: bool = False,
        rto_ns: int = 4 * MILLIS,
    ):
        if recovery not in ("sack", "gbn"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        self.host = host
        self.spec = spec
        self.config = config
        self.stats = stats
        self.engine = host.engine
        self.recovery = recovery
        self.record = stats.new_flow(
            spec.flow_id, spec.src, spec.dst, spec.size, spec.start_ns, spec.group
        )

        payload = config.packet_payload
        self.payload = payload
        self.npkts = max(1, -(-spec.size // payload))
        self._last_payload = spec.size - (self.npkts - 1) * payload
        self.states: List[PState] = [PState() for _ in range(self.npkts)]

        self.snd_una = 0  # first unacked PSN
        self.snd_next = 0  # next new PSN
        self.snd_ptr = 0  # go-back-N transmit pointer
        self.snd_max = 0  # highest PSN+1 ever sent
        self.pipe = 0
        self.dupacks = 0
        self.lost_queue: Deque[int] = deque()
        self._highest_sacked = 0  # highest SACKed PSN bound (exclusive)
        self._scan_hint = 0  # first PSN possibly unresolved below SACK
        self._retx_inflight: set = set()  # retransmitted PSNs awaiting ACK

        self.rate_ctrl = DcqcnRateControl(self.engine, config) if use_dcqcn else None
        self.hpcc = HpccController(config) if use_hpcc else None
        self.window_cap_bytes = window_cap_bytes
        self._next_tx_time = 0
        self._send_event = None

        self.rto = FixedRto(rto_ns, config.rto_max_ns)
        self._rto_deadline: Optional[int] = None
        self._rto_event = None
        self._rack_event = None  # reorder timer re-marking aged retx

        self.tlt = None  # window-based TLT controller (irn/hpcc)
        self.tlt_rate = None  # rate-based TLT controller (dcqcn variants)
        self.started = False
        self.completed = False

        host.register_endpoint(spec.flow_id, self)
        # Handle kept so a sharded run can neuter the inert sender
        # replica on a non-owning shard (repro.sim.sharding).
        self._start_event = self.engine.schedule_at(spec.start_ns, self.start)

    # -------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        if self.rate_ctrl is not None:
            self.rate_ctrl.start()
        self._schedule_send()

    def payload_of(self, psn: int) -> int:
        return self._last_payload if psn == self.npkts - 1 else self.payload

    def is_all_acked(self) -> bool:
        return self.snd_una >= self.npkts

    # ------------------------------------------------------------- send engine

    def _next_candidate(self) -> Optional[int]:
        if self.recovery == "gbn":
            return self.snd_ptr if self.snd_ptr < self.npkts else None
        while self.lost_queue:
            psn = self.lost_queue[0]
            st = self.states[psn]
            if st.acked or st.sacked or not st.lost:
                self.lost_queue.popleft()
                continue
            return psn
        return self.snd_next if self.snd_next < self.npkts else None

    def effective_window(self) -> Optional[int]:
        if self.hpcc is not None:
            return self.hpcc.window
        return self.window_cap_bytes

    def _window_blocked(self, size: int) -> bool:
        window = self.effective_window()
        if window is None:
            return False
        return self.pipe + size > window and self.pipe > 0

    def _schedule_send(self) -> None:
        if self._send_event is not None or self.completed or not self.started:
            return
        psn = self._next_candidate()
        if psn is None:
            return
        if self._window_blocked(self.payload_of(psn) + HEADER_BYTES):
            return  # resumed on the next ACK
        at = max(self.engine.now, self._next_tx_time)
        self._send_event = self.engine.schedule_at(at, self._send_fire)

    def _send_fire(self) -> None:
        self._send_event = None
        if self.completed:
            return
        psn = self._next_candidate()
        if psn is None:
            return
        size = self.payload_of(psn) + HEADER_BYTES
        if self._window_blocked(size):
            return
        if self.recovery == "gbn":
            self.snd_ptr += 1
        else:
            if psn == self.snd_next:
                self.snd_next += 1
            else:
                self.lost_queue.popleft()
        self._transmit(psn)
        self._schedule_send()

    def _transmit(self, psn: int, clock_mark: bool = False) -> None:
        now = self.engine.now
        st = self.states[psn]
        is_retx = st.first_tx_ns >= 0
        payload = self.payload_of(psn)
        if is_retx:
            st.retx_count += 1
            self.record.retx_bytes += payload
            if self.recovery == "sack":
                self._retx_inflight.add(psn)
                self._arm_rack_timer()
        else:
            st.first_tx_ns = now
        st.last_tx_ns = now
        st.lost = False
        if not st.in_pipe:
            st.in_pipe = True
            self.pipe += payload + HEADER_BYTES
        if psn + 1 > self.snd_max:
            self.snd_max = psn + 1

        packet = alloc_packet(
            self.spec.flow_id, self.spec.src, self.spec.dst, PacketKind.DATA,
            seq=psn, payload=payload,
        )
        packet.ecn_capable = True
        packet.ts_sent = now
        packet.tclass = self.config.traffic_class
        packet.is_retx = is_retx
        if self.hpcc is not None:
            packet.int_records = []  # request INT telemetry
        self.record.tx_bytes += payload

        if self.tlt is not None:
            if clock_mark:
                self.tlt.mark_clock_data(packet)
            else:
                self.tlt.mark_data(packet, self._is_last_allowed(psn))
        elif self.tlt_rate is not None:
            self.tlt_rate.mark_data(packet, psn, is_retx)

        self.host.send(packet)
        self._arm_rto()
        if self.rate_ctrl is not None:
            self.rate_ctrl.on_bytes_sent(packet.size)
            self._next_tx_time = now + tx_time_ns(
                packet.size, max(self.rate_ctrl.rate_bps, self.config.min_rate_bps)
            )

    def _is_last_allowed(self, just_sent: int) -> bool:
        nxt = self._next_candidate()
        if nxt is None:
            return True
        return self._window_blocked(self.payload_of(nxt) + HEADER_BYTES)

    # ------------------------------------------------------------ receive path

    def on_packet(self, packet: Packet) -> None:
        if self.completed:
            return
        if packet.kind == PacketKind.CNP:
            if self.rate_ctrl is not None:
                self.rate_ctrl.on_cnp()
            return
        if packet.kind == PacketKind.NACK:
            self._on_nack(packet)
            return
        if packet.kind != PacketKind.ACK:
            return

        if self.tlt is not None and not self.tlt.on_ack(packet):
            return
        now = self.engine.now
        if packet.ts_echo > 0:
            rtt = now - packet.ts_echo
            self.rto.on_rtt_sample(rtt)
            self.stats.add_rtt_sample(rtt, self.spec.group)

        newly_acked = 0
        if packet.ack > self.snd_una:
            newly_acked = packet.ack - self.snd_una
            self._advance_una(packet.ack)
            self.dupacks = 0
            self._restart_rto()
        elif packet.ack == self.snd_una and self.snd_una < self.snd_max:
            self.dupacks += 1

        sacked = self._apply_sack(packet.sack) if self.recovery == "sack" else 0

        if self.tlt is not None:
            self.tlt.on_ack_post(packet)

        if self.hpcc is not None:
            self.hpcc.on_ack(packet, self.snd_next)

        if self.recovery == "sack" and (
            self.dupacks >= self.config.dupack_threshold or sacked
        ):
            self._detect_losses()

        if self.is_all_acked():
            self._complete()
            return

        self._schedule_send()
        if self.tlt is not None:
            self.tlt.after_ack()

    def _on_nack(self, packet: Packet) -> None:
        """Go-back-N: rewind to the receiver's expected PSN."""
        expected = packet.ack
        if expected > self.snd_una:
            self._advance_una(expected)
        if self.recovery == "gbn" and expected < self.snd_ptr:
            self.snd_ptr = expected
            if self.tlt_rate is not None and self.snd_max > expected:
                self.tlt_rate.on_retx_round(expected, self.snd_max - 1)
        self._restart_rto()
        if self.is_all_acked():
            self._complete()
            return
        self._schedule_send()

    def _advance_una(self, ack: int) -> None:
        now = self.engine.now
        for psn in range(self.snd_una, min(ack, self.npkts)):
            st = self.states[psn]
            if st.in_pipe:
                st.in_pipe = False
                self.pipe -= self.payload_of(psn) + HEADER_BYTES
            if not st.delivered and st.first_tx_ns >= 0:
                st.delivered = True
                self.stats.add_delivery_sample(now - st.first_tx_ns)
            st.acked = True
            st.lost = False
            self._retx_inflight.discard(psn)
        self.snd_una = ack
        if self._scan_hint < ack:
            self._scan_hint = ack

    def _apply_sack(self, blocks) -> int:
        if not blocks:
            return 0
        newly = 0
        now = self.engine.now
        for lo, hi in blocks:
            if hi > self._highest_sacked:
                self._highest_sacked = hi
            for psn in range(max(lo, self.snd_una), min(hi, self.snd_max)):
                st = self.states[psn]
                if st.acked or st.sacked:
                    continue
                st.sacked = True
                st.lost = False
                if st.in_pipe:
                    st.in_pipe = False
                    self.pipe -= self.payload_of(psn) + HEADER_BYTES
                if not st.delivered and st.first_tx_ns >= 0:
                    st.delivered = True
                    self.stats.add_delivery_sample(now - st.first_tx_ns)
                self._retx_inflight.discard(psn)
                newly += 1
        return newly

    def _detect_losses(self) -> None:
        """Selective-mode loss detection, mirroring the byte-stream
        sender: never-retransmitted holes below the highest SACK are
        marked once (resolved-prefix scan); a retransmitted packet is
        only re-marked after aging one SRTT (RACK-style) so in-flight
        retransmissions are not spuriously re-sent on every ACK."""
        now = self.engine.now
        srtt = self.rto.srtt or self.config.base_rtt_ns
        highest = self._highest_sacked
        first = None
        last = None

        psn = max(self.snd_una, self._scan_hint)
        while psn < min(highest, self.snd_max):
            st = self.states[psn]
            if not (st.acked or st.sacked or st.lost) and st.retx_count == 0:
                self._mark_lost(psn)
                if first is None:
                    first = psn
                last = psn
            psn += 1
        self._scan_hint = psn

        if self.dupacks >= self.config.dupack_threshold and self.snd_una < self.snd_max:
            st = self.states[self.snd_una]
            if not (st.acked or st.sacked or st.lost):
                if st.retx_count == 0 or st.last_tx_ns + srtt <= now:
                    self._mark_lost(self.snd_una)
                    if first is None:
                        first = self.snd_una
                    last = max(last, self.snd_una) if last is not None else self.snd_una

        if self._retx_inflight:
            for psn in list(self._retx_inflight):
                st = self.states[psn]
                if st.acked or st.sacked or st.lost:
                    self._retx_inflight.discard(psn)
                    continue
                if psn < highest and st.last_tx_ns + srtt <= now:
                    self._mark_lost(psn)
                    if first is None or psn < first:
                        first = psn
                    if last is None or psn > last:
                        last = psn

        if first is not None:
            self.stats.fast_retransmits += 1
            if self.tlt_rate is not None:
                self.tlt_rate.on_retx_round(first, last)
        self._arm_rack_timer()

    def _arm_rack_timer(self) -> None:
        """RACK-style reorder timer: a retransmission below the highest
        SACK whose re-marking is deferred by the aging rule must be
        re-examined even if no further ACK ever arrives (all later
        packets may already be delivered — silence otherwise lasts
        until the full RTO)."""
        if self.recovery != "sack" or not self._retx_inflight or self.completed:
            return
        if self._rack_event is not None:
            return
        srtt = self.rto.srtt or self.config.base_rtt_ns
        self._rack_event = self.engine.schedule_timer(srtt + 1, self._rack_fire)

    def _rack_fire(self) -> None:
        self._rack_event = None
        if self.completed:
            return
        self._detect_losses()
        self._schedule_send()
        self._arm_rack_timer()

    def _mark_lost(self, psn: int) -> None:
        st = self.states[psn]
        if st.lost or st.acked or st.sacked:
            return
        st.lost = True
        if st.in_pipe:
            st.in_pipe = False
            self.pipe -= self.payload_of(psn) + HEADER_BYTES
        self._retx_inflight.discard(psn)
        self.lost_queue.append(psn)

    # ------------------------------------------------------------- timers

    def _arm_rto(self) -> None:
        if self._rto_deadline is None:
            self._restart_rto()

    def _restart_rto(self) -> None:
        self._rto_deadline = self.engine.now + self.rto.current
        if self._rto_event is None:
            self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.completed or self._rto_deadline is None:
            return
        if self.engine.now < self._rto_deadline:
            self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)
            return
        if self.is_all_acked():
            return
        self._on_timeout()

    def _on_timeout(self) -> None:
        self.record.timeouts += 1
        self.stats.timeouts += 1
        if self.stats.audit_ring is not None:
            self.stats.audit_ring.record(
                "rto_fire", flow=self.spec.flow_id, time_ns=self.engine.now,
                info=self.rto.current,
            )
        if self.stats.on_rto_fire is not None:
            self.stats.on_rto_fire(self.spec.flow_id, self.rto.current)
        self.rto.backoff()
        self.dupacks = 0
        first = None
        last = None
        if self.recovery == "gbn":
            self.snd_ptr = self.snd_una
            if self.snd_max > self.snd_una:
                first, last = self.snd_una, self.snd_max - 1
        else:
            for psn in range(self.snd_una, self.snd_max):
                st = self.states[psn]
                if not (st.acked or st.sacked) and not st.lost:
                    self._mark_lost(psn)
                    if first is None:
                        first = psn
                    last = psn
        if first is not None and self.tlt_rate is not None:
            self.tlt_rate.on_retx_round(first, last)
        self._rto_deadline = self.engine.now + self.rto.current
        self._rto_event = self.engine.schedule_timer_at(self._rto_deadline, self._rto_fire)
        self._schedule_send()

    # ------------------------------------------------------- TLT interface

    def has_unrepaired_loss(self) -> bool:
        while self.lost_queue:
            psn = self.lost_queue[0]
            st = self.states[psn]
            if st.acked or st.sacked or not st.lost:
                self.lost_queue.popleft()
                continue
            return True
        return False

    def mark_lost_sent_before(self, tx_time: int) -> int:
        marked = 0
        first = None
        last = None
        for psn in range(self.snd_una, self.snd_max):
            st = self.states[psn]
            if st.acked or st.sacked or st.lost:
                continue
            if 0 <= st.last_tx_ns <= tx_time and st.in_pipe:
                self._mark_lost(psn)
                marked += self.payload_of(psn)
                if first is None:
                    first = psn
                last = psn
        if first is not None:
            self.stats.fast_retransmits += 1
            if self.tlt_rate is not None:
                self.tlt_rate.on_retx_round(first, last)
        return marked

    def try_send(self) -> None:
        self._schedule_send()

    def clock_retransmit(self) -> int:
        """Important ACK-clocking for RoCE: inject the first lost (or
        first unacked) packet immediately, bypassing window and pacing."""
        psn = None
        while self.lost_queue:
            head = self.lost_queue[0]
            st = self.states[head]
            if st.acked or st.sacked or not st.lost:
                self.lost_queue.popleft()
                continue
            psn = head
            self.lost_queue.popleft()
            break
        if psn is None:
            for cand in range(self.snd_una, self.snd_max):
                st = self.states[cand]
                if not (st.acked or st.sacked):
                    psn = cand
                    break
        if psn is None:
            return 0
        self._transmit(psn, clock_mark=True)
        return self.payload_of(psn)

    def clock_one_byte(self) -> None:
        """RoCE cannot segment a PSN — the minimal clocking unit is a
        whole packet (documented substitution)."""
        self.clock_retransmit()

    # ------------------------------------------------------------- completion

    def _complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        self._rto_deadline = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        if self._rack_event is not None:
            self._rack_event.cancel()
            self._rack_event = None
        if self.rate_ctrl is not None:
            self.rate_ctrl.stop()
        self.record.end_ack_ns = self.engine.now
        self.record.final_rto_ns = self.rto.base_rto
        self.record.final_srtt_ns = self.rto.srtt
        if self.spec.on_complete_ack is not None:
            self.spec.on_complete_ack(self.record)


class RoceReceiver:
    """PSN receiver: per-packet ACKs, go-back-N NACKs, CNP generation."""

    def __init__(
        self,
        host: Host,
        spec: FlowSpec,
        config: TransportConfig,
        stats: NetStats,
        recovery: str = "sack",
    ):
        self.host = host
        self.spec = spec
        self.config = config
        self.stats = stats
        self.engine = host.engine
        self.recovery = recovery
        payload = config.packet_payload
        self.npkts = max(1, -(-spec.size // payload))
        self.buffer = ReceiverBuffer()
        self.rcv_nxt = 0  # go-back-N cumulative pointer
        self._nacked_at = -1
        self._last_cnp_ns = -(1 << 60)
        self.tlt_rx = None
        self.done = False
        host.register_endpoint(spec.flow_id, self)

    @property
    def record(self) -> Optional[FlowRecord]:
        return self.stats.flows.get(self.spec.flow_id)

    def on_packet(self, packet: Packet) -> None:
        if packet.kind != PacketKind.DATA:
            return
        if self.tlt_rx is not None:
            self.tlt_rx.on_data(packet)
        self._maybe_cnp(packet)
        if self.recovery == "gbn":
            self._on_data_gbn(packet)
        else:
            self._on_data_sack(packet)

    # -- go-back-N -------------------------------------------------------------

    def _on_data_gbn(self, packet: Packet) -> None:
        psn = packet.seq
        if psn == self.rcv_nxt:
            self.rcv_nxt += 1
            self._nacked_at = -1
            self._check_done()
            self._send_ack(packet, self.rcv_nxt)
        elif psn > self.rcv_nxt:
            # Out-of-order: discard and NACK once per gap.
            if self._nacked_at != self.rcv_nxt:
                self._nacked_at = self.rcv_nxt
                self._send_nack(self.rcv_nxt)
        else:
            self._send_ack(packet, self.rcv_nxt)  # duplicate

    # -- selective -----------------------------------------------------------------

    def _on_data_sack(self, packet: Packet) -> None:
        self.buffer.on_data(packet.seq, 1)
        self.rcv_nxt = self.buffer.rcv_nxt
        self._check_done()
        ack = self._make_ack(packet, self.buffer.rcv_nxt)
        ack.sack = self.buffer.sack_blocks()
        self._finish_ack(ack)

    # -- helpers ----------------------------------------------------------------------

    def _check_done(self) -> None:
        if not self.done and self.rcv_nxt >= self.npkts:
            self.done = True
            record = self.record
            if record is not None:
                record.end_rx_ns = self.engine.now
            if self.spec.on_complete_rx is not None:
                self.spec.on_complete_rx(record)

    def _make_ack(self, data_packet: Packet, ack_psn: int) -> Packet:
        ack = alloc_packet(
            self.spec.flow_id, self.spec.dst, self.spec.src, PacketKind.ACK, ack=ack_psn
        )
        ack.ts_echo = data_packet.ts_sent
        ack.tclass = self.config.traffic_class
        ack.color = Color.GREEN
        ack.mark = TltMark.CONTROL
        if data_packet.int_records is not None:
            ack.int_echo = data_packet.int_records
        return ack

    def _send_ack(self, data_packet: Packet, ack_psn: int) -> None:
        self._finish_ack(self._make_ack(data_packet, ack_psn))

    def _finish_ack(self, ack: Packet) -> None:
        if self.tlt_rx is not None:
            self.tlt_rx.mark_ack(ack)
        self.host.send(ack)

    def _send_nack(self, expected: int) -> None:
        nack = alloc_packet(
            self.spec.flow_id, self.spec.dst, self.spec.src, PacketKind.NACK, ack=expected
        )
        nack.color = Color.GREEN
        nack.mark = TltMark.CONTROL
        self.host.send(nack)

    def _maybe_cnp(self, packet: Packet) -> None:
        if not packet.ce:
            return
        now = self.engine.now
        if now - self._last_cnp_ns < self.config.cnp_interval_ns:
            return
        self._last_cnp_ns = now
        cnp = alloc_packet(self.spec.flow_id, self.spec.dst, self.spec.src, PacketKind.CNP)
        cnp.color = Color.GREEN
        cnp.mark = TltMark.CONTROL
        self.host.send(cnp)


def create_roce_flow(variant: str, net: Network, spec: FlowSpec, config: TransportConfig):
    """Build a RoCE sender/receiver pair for ``variant``."""
    bdp = config.link_rate_bps * config.base_rtt_ns // 8 // 1_000_000_000
    if variant == "dcqcn":
        kwargs = dict(recovery="gbn", use_dcqcn=True)
        rto = config.rto_min_ns
    elif variant == "dcqcn-sack":
        kwargs = dict(recovery="sack", use_dcqcn=True)
        rto = config.rto_min_ns
    elif variant == "irn":
        kwargs = dict(recovery="sack", use_dcqcn=True, window_cap_bytes=bdp)
        rto = 1_930_000  # RTO_high recommended by IRN
    elif variant == "hpcc":
        kwargs = dict(recovery="sack", use_dcqcn=False, use_hpcc=True)
        rto = config.rto_min_ns
    else:
        raise KeyError(f"unknown RoCE variant {variant!r}")
    sender = RoceSender(net.host(spec.src), spec, config, net.stats, rto_ns=rto, **kwargs)
    sender.name = variant
    receiver = RoceReceiver(
        net.host(spec.dst), spec, config, net.stats, recovery=kwargs["recovery"]
    )
    return sender, receiver
