"""Factory: create a sender/receiver pair by transport name.

Names: ``tcp``, ``dctcp`` (byte-stream family) and ``dcqcn``,
``dcqcn-sack``, ``irn``, ``hpcc`` (RoCE family). TLP and TLT are
orthogonal add-ons selected via ``TransportConfig.tlp_enabled`` and the
``tlt`` argument respectively.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.core.config import TltConfig
from repro.net.topology import Network
from repro.transport.base import FlowSpec, TransportConfig


def _tcp_pair(net: Network, spec: FlowSpec, config: TransportConfig):
    from repro.transport.tcp import TcpReceiver, TcpSender

    sender = TcpSender(net.host(spec.src), spec, config, net.stats)
    receiver = TcpReceiver(net.host(spec.dst), spec, config, net.stats)
    return sender, receiver


def _dctcp_pair(net: Network, spec: FlowSpec, config: TransportConfig):
    from repro.transport.dctcp import DctcpReceiver, DctcpSender

    config = replace(config, ecn=True)
    sender = DctcpSender(net.host(spec.src), spec, config, net.stats)
    receiver = DctcpReceiver(net.host(spec.dst), spec, config, net.stats)
    return sender, receiver


def _roce_pair(variant: str):
    def build(net: Network, spec: FlowSpec, config: TransportConfig):
        from repro.transport.roce import create_roce_flow

        return create_roce_flow(variant, net, spec, config)

    return build


TRANSPORTS = {
    "tcp": _tcp_pair,
    "dctcp": _dctcp_pair,
    "dcqcn": _roce_pair("dcqcn"),
    "dcqcn-sack": _roce_pair("dcqcn-sack"),
    "irn": _roce_pair("irn"),
    "hpcc": _roce_pair("hpcc"),
}

#: Transports whose TLT flavor is the window-based controller (§5.1);
#: the rest use the rate-based controller (§5.2).
WINDOW_TLT = {"tcp", "dctcp", "irn", "hpcc"}


def create_flow(
    name: str,
    net: Network,
    spec: FlowSpec,
    config: Optional[TransportConfig] = None,
    tlt: Optional[TltConfig] = None,
) -> Tuple[object, object]:
    """Create sender and receiver for ``spec``; optionally attach TLT."""
    if name not in TRANSPORTS:
        raise KeyError(f"unknown transport {name!r}; choose from {sorted(TRANSPORTS)}")
    config = config or TransportConfig()
    sender, receiver = TRANSPORTS[name](net, spec, config)
    if tlt is not None:
        if name in WINDOW_TLT:
            from repro.core.window import attach_window_tlt

            attach_window_tlt(sender, receiver, tlt, net.stats)
        else:
            from repro.core.rate import attach_rate_tlt

            attach_rate_tlt(sender, receiver, tlt, net.stats)
    return sender, receiver
