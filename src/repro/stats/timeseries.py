"""Windowed time-series measurement: link utilization and throughput.

A :class:`LinkUtilization` samples a port's cumulative transmitted
bytes on a fixed interval, yielding a utilization series — used by the
deep-dive experiments to show where the bottleneck sits and how much
capacity TLT's proactive drops actually cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.link import Port
from repro.sim.engine import Engine


class LinkUtilization:
    """Periodic utilization sampling of one port."""

    def __init__(
        self,
        engine: Engine,
        port: Port,
        interval_ns: int = 100_000,
        duration_ns: Optional[int] = None,
    ):
        """Sample ``port`` every ``interval_ns``.

        Without ``duration_ns`` the sampler keeps the event queue alive
        until :meth:`stop` is called — bound the engine with
        ``run(until=...)`` or pass a duration.
        """
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.port = port
        self.interval_ns = interval_ns
        self.samples: List[float] = []
        self._last_bytes = port.tx_bytes
        self._capacity_bytes = port.rate_bps * interval_ns / 8 / 1e9
        self._stop_at = engine.now + duration_ns if duration_ns is not None else None
        self._event = engine.schedule(interval_ns, self._sample)
        self._stopped = False

    def _sample(self) -> None:
        if self._stopped:
            return
        sent = self.port.tx_bytes - self._last_bytes
        self._last_bytes = self.port.tx_bytes
        self.samples.append(min(sent / self._capacity_bytes, 1.0))
        if self._stop_at is not None and self.engine.now >= self._stop_at:
            self._stopped = True
            self._event = None
            return
        self._event = self.engine.schedule(self.interval_ns, self._sample)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def peak(self) -> float:
        return max(self.samples, default=0.0)

    def busy_fraction(self, threshold: float = 0.9) -> float:
        """Fraction of sampling windows above ``threshold`` utilization."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s >= threshold) / len(self.samples)
