"""Windowed time-series measurement (compatibility alias).

:class:`LinkUtilization` moved into the telemetry sampler framework —
its canonical home is :class:`repro.telemetry.samplers.LinkUtilization`
(same constructor, ``samples``/``mean``/``peak``/``busy_fraction``/
``stop`` API, now scheduled on the engine's timer wheel). This module
re-exports it for existing callers; new code should import from
:mod:`repro.telemetry` and prefer a full :class:`repro.telemetry.Telemetry`
attachment when more than one port is of interest.

.. deprecated:: PR5
   Import :class:`LinkUtilization` from :mod:`repro.telemetry` instead.
"""

from __future__ import annotations

from repro.telemetry.samplers import LinkUtilization

__all__ = ["LinkUtilization"]
