"""Streaming percentile estimation for million-sample runs.

The :class:`Reservoir` (PR 2) keeps percentiles unbiased by sampling,
but a service run of 10^6+ requests wants *every* sample folded in with
O(1) memory — and sharded workers need partial results that merge
**bit-identically** regardless of merge order. Both rule out exact
sample sets (unbounded memory) and P² (no merge operation).

:class:`StreamingQuantile` is a DDSketch-style log-bucketed histogram:

- a value ``v > 0`` lands in bucket ``ceil(log_gamma(v))`` where
  ``gamma = (1 + alpha) / (1 - alpha)``, so every bucket spans one
  ``gamma``-factor of the value range;
- a quantile is answered with the bucket's geometric midpoint, which is
  within relative error ``alpha`` (default **1%**) of a true sample at
  that rank — the documented tolerance tests assert against exact numpy
  percentiles;
- memory is O(number of occupied buckets): the full integer-nanosecond
  latency range (1 ns .. ~3 hours) spans fewer than ~1500 buckets at
  the default ``alpha``, independent of how many samples stream in;
- ``merge`` adds bucket counts elementwise — integer addition is
  commutative and associative, so for integer samples (latencies are
  integer nanoseconds) any merge tree over any shard split of one
  stream reproduces the single-stream sketch **exactly**
  (``to_state()`` equality, not just close quantiles).

``count``/``sum``/``min``/``max`` are tracked exactly, so ``mean`` and
``max`` in :meth:`summarize` carry no sketch error.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

#: Default relative-accuracy target (1%); see the class docstring.
DEFAULT_ALPHA = 0.01

#: Serialized-state schema version (bump on layout changes).
STATE_SCHEMA = 1


class StreamingQuantile:
    """Online quantile sketch with deterministic cross-worker merge."""

    __slots__ = ("alpha", "_gamma", "_log_gamma", "count", "total",
                 "zeros", "_min", "_max", "buckets")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        # Exact sum. Integer samples (the nanosecond-latency contract)
        # keep this an int, so it is order-independent — required for
        # the bit-identical merge guarantee. Float samples degrade it
        # to float accumulation: still deterministic for a fixed
        # ingest/merge order, but not split-invariant.
        self.total = 0
        self.zeros = 0  # values <= 0 (clamped; latencies are >= 0)
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: bucket index -> sample count (sparse; O(log range) entries).
        self.buckets: Dict[int, int] = {}

    # -- ingest -----------------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one sample in (O(1))."""
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= 0:
            self.zeros += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    # -- queries ----------------------------------------------------------------

    def _bucket_value(self, index: int) -> float:
        # Geometric midpoint of (gamma^(i-1), gamma^i]: relative error
        # from any sample in the bucket is at most alpha.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), within ``alpha`` relative error
        of the exact nearest-rank sample; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(0, math.ceil(q * self.count) - 1)  # 0-based nearest rank
        if rank < self.zeros:
            return 0.0
        cumulative = self.zeros
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return self._bucket_value(index)
        return float(self._max or 0.0)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100); mirrors
        :func:`repro.stats.percentile.percentile`."""
        return self.quantile(p / 100.0)

    @property
    def mean(self) -> float:
        return float(self.total / self.count) if self.count else 0.0

    @property
    def min(self) -> float:
        return float(self._min) if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return float(self._max) if self._max is not None else 0.0

    def summarize(self) -> Dict[str, float]:
        """Summary dict with the exact key set (and types: ``count``
        int, everything else float) of
        :func:`repro.stats.percentile.summarize`."""
        return {
            "count": int(self.count),
            "mean": float(self.mean),
            "p50": float(self.quantile(0.50)),
            "p99": float(self.quantile(0.99)),
            "p999": float(self.quantile(0.999)),
            "max": float(self.max),
        }

    # -- merge / serialization ---------------------------------------------------

    def merge(self, other: "StreamingQuantile") -> "StreamingQuantile":
        """Fold ``other`` in, in place. Deterministic: any merge order
        over any split of one stream yields the identical state."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        for index, cnt in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + cnt
        return self

    def to_state(self) -> Dict:
        """Canonical JSON-able state. Two sketches that saw the same
        multiset of samples (in any order, via any shard split) produce
        **equal** states — the merge-determinism contract."""
        return {
            "schema": STATE_SCHEMA,
            "alpha": self.alpha,
            "count": self.count,
            "total": self.total,
            "zeros": self.zeros,
            "min": self._min,
            "max": self._max,
            "buckets": sorted(self.buckets.items()),
        }

    @classmethod
    def from_state(cls, state: Dict) -> "StreamingQuantile":
        if state.get("schema") != STATE_SCHEMA:
            raise ValueError(f"unknown sketch state schema: {state.get('schema')!r}")
        sketch = cls(alpha=state["alpha"])
        sketch.count = int(state["count"])
        sketch.total = state["total"]  # int stays int (exactness)
        sketch.zeros = int(state["zeros"])
        sketch._min = state["min"]
        sketch._max = state["max"]
        sketch.buckets = {int(k): int(v) for k, v in state["buckets"]}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover
        return (f"StreamingQuantile(count={self.count}, "
                f"buckets={len(self.buckets)}, alpha={self.alpha})")


def merge_all(sketches: Sequence[StreamingQuantile],
              alpha: float = DEFAULT_ALPHA) -> StreamingQuantile:
    """Merge shard sketches into a fresh one (inputs untouched)."""
    merged = StreamingQuantile(alpha=sketches[0].alpha if sketches else alpha)
    for sketch in sketches:
        merged.merge(sketch)
    return merged


def merge_states(states: Sequence[Dict]) -> Dict:
    """Merge serialized shard states (the cross-process form)."""
    return merge_all([StreamingQuantile.from_state(s) for s in states]).to_state()


__all__: Tuple[str, ...] = ("StreamingQuantile", "merge_all", "merge_states",
                            "DEFAULT_ALPHA")
