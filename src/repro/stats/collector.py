"""Run-wide measurement state shared by hosts and switches.

One :class:`NetStats` instance is attached to a :class:`repro.net.topology.Network`;
transports and switches increment it directly (cheap integer ops) and
experiments read it after the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.stats.percentile import summarize


class FlowRecord:
    """Lifecycle record of one flow."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "start_ns",
        "group",
        "end_rx_ns",
        "end_ack_ns",
        "timeouts",
        "retx_bytes",
        "tx_bytes",
        "final_rto_ns",
        "final_srtt_ns",
    )

    def __init__(self, flow_id: int, src: int, dst: int, size: int, start_ns: int, group: str):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.start_ns = start_ns
        self.group = group  # "fg" (foreground/incast) or "bg" (background)
        self.end_rx_ns: Optional[int] = None  # receiver has every byte
        self.end_ack_ns: Optional[int] = None  # sender saw everything acked
        self.timeouts = 0
        self.retx_bytes = 0
        self.tx_bytes = 0
        self.final_rto_ns: Optional[int] = None
        self.final_srtt_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.end_rx_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time: flow start until the receiver has all bytes."""
        if self.end_rx_ns is None:
            return None
        return self.end_rx_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlowRecord({self.flow_id}, {self.group}, size={self.size}, "
            f"fct={self.fct_ns})"
        )


#: Cap on per-run sample lists to bound memory in long runs.
MAX_SAMPLES = 500_000


class NetStats:
    """Counters and samples for a whole simulation run."""

    def __init__(self) -> None:
        # Host-side packet accounting.
        self.green_data_packets = 0
        self.red_data_packets = 0
        self.green_data_bytes = 0
        self.red_data_bytes = 0
        self.clocking_bytes = 0  # bytes injected by important ACK-clocking
        self.clocking_packets = 0
        # Switch-side drop accounting.
        self.drops_green = 0
        self.drops_red = 0
        self.drop_bytes = 0
        self.ecn_marks = 0
        # PFC accounting.
        self.pause_frames = 0
        self.resume_frames = 0
        # Transport events.
        self.timeouts = 0
        self.fast_retransmits = 0
        # Sample reservoirs.
        self.rtt_samples_fg: List[int] = []
        self.rtt_samples_bg: List[int] = []
        self.delivery_samples: List[int] = []
        self.flows: Dict[int, FlowRecord] = {}

    # -- flow bookkeeping ------------------------------------------------------

    def new_flow(self, flow_id: int, src: int, dst: int, size: int, start_ns: int, group: str) -> FlowRecord:
        record = FlowRecord(flow_id, src, dst, size, start_ns, group)
        self.flows[flow_id] = record
        return record

    def add_rtt_sample(self, rtt_ns: int, group: str) -> None:
        samples = self.rtt_samples_fg if group == "fg" else self.rtt_samples_bg
        if len(samples) < MAX_SAMPLES:
            samples.append(rtt_ns)

    def add_delivery_sample(self, delivery_ns: int) -> None:
        if len(self.delivery_samples) < MAX_SAMPLES:
            self.delivery_samples.append(delivery_ns)

    # -- derived metrics ---------------------------------------------------------

    def fct_list(self, group: str) -> List[int]:
        """Completion times (ns) of finished flows in ``group``."""
        return [
            r.fct_ns  # type: ignore[misc]
            for r in self.flows.values()
            if r.group == group and r.fct_ns is not None
        ]

    def fct_summary(self, group: str) -> Dict[str, float]:
        return summarize(self.fct_list(group))

    def flow_count(self, group: Optional[str] = None) -> int:
        if group is None:
            return len(self.flows)
        return sum(1 for r in self.flows.values() if r.group == group)

    def incomplete_flows(self, group: Optional[str] = None) -> int:
        return sum(
            1
            for r in self.flows.values()
            if not r.completed and (group is None or r.group == group)
        )

    def timeouts_per_1k_flows(self) -> float:
        flows = len(self.flows)
        if flows == 0:
            return 0.0
        total = sum(r.timeouts for r in self.flows.values())
        return 1000.0 * total / flows

    def pause_frames_per_1k_flows(self) -> float:
        flows = len(self.flows)
        if flows == 0:
            return 0.0
        return 1000.0 * self.pause_frames / flows

    def important_loss_rate(self) -> float:
        """Loss rate of important (green) data packets."""
        if self.green_data_packets == 0:
            return 0.0
        return self.drops_green / self.green_data_packets

    def important_fraction_bytes(self) -> float:
        """Fraction of transmitted data volume marked important."""
        total = self.green_data_bytes + self.red_data_bytes
        if total == 0:
            return 0.0
        return self.green_data_bytes / total

    def goodput_bps(self, group: str, window_ns: int) -> float:
        """Aggregate goodput of completed ``group`` flows over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        done = [r for r in self.flows.values() if r.group == group and r.completed]
        return sum(r.size for r in done) * 8 * 1e9 / window_ns
