"""Run-wide measurement state shared by hosts and switches.

One :class:`NetStats` instance is attached to a :class:`repro.net.topology.Network`;
transports and switches increment it directly (cheap integer ops) and
experiments read it after the run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from repro.net.packet import Color, PacketKind
from repro.stats.percentile import summarize


class FlowRecord:
    """Lifecycle record of one flow."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "start_ns",
        "group",
        "end_rx_ns",
        "end_ack_ns",
        "timeouts",
        "retx_bytes",
        "tx_bytes",
        "final_rto_ns",
        "final_srtt_ns",
    )

    def __init__(self, flow_id: int, src: int, dst: int, size: int, start_ns: int, group: str):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.start_ns = start_ns
        self.group = group  # "fg" (foreground/incast) or "bg" (background)
        self.end_rx_ns: Optional[int] = None  # receiver has every byte
        self.end_ack_ns: Optional[int] = None  # sender saw everything acked
        self.timeouts = 0
        self.retx_bytes = 0
        self.tx_bytes = 0
        self.final_rto_ns: Optional[int] = None
        self.final_srtt_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.end_rx_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time: flow start until the receiver has all bytes."""
        if self.end_rx_ns is None:
            return None
        return self.end_rx_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlowRecord({self.flow_id}, {self.group}, size={self.size}, "
            f"fct={self.fct_ns})"
        )


#: Cap on per-run sample reservoirs to bound memory in long runs.
MAX_SAMPLES = 500_000


class Reservoir:
    """Uniform fixed-capacity sample of a stream (Vitter's Algorithm R).

    Every element of the stream ends up in the sample with probability
    ``capacity / seen``, so percentiles computed over the sample are
    unbiased however long the run — unlike keep-first-N truncation,
    which freezes the sample on cold-start behaviour. Deterministic for
    a given seed and insertion order. Supports the sequence protocol so
    callers can treat it like the list it replaces.
    """

    __slots__ = ("capacity", "seen", "_samples", "_rng")

    def __init__(self, capacity: int = MAX_SAMPLES, seed: object = 0):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._samples: List[int] = []
        self._rng = random.Random(seed)

    def add(self, value: int) -> None:
        self.seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[int]:
        return iter(self._samples)

    def __getitem__(self, index):
        return self._samples[index]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Reservoir({len(self._samples)}/{self.capacity} of {self.seen} seen)"


class NetStats:
    """Counters and samples for a whole simulation run.

    ``seed`` makes the sample reservoirs deterministic; the topology
    builders pass the run seed through.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # Host-side packet accounting.
        self.green_data_packets = 0
        self.red_data_packets = 0
        self.green_data_bytes = 0
        self.red_data_bytes = 0
        self.clocking_bytes = 0  # bytes injected by important ACK-clocking
        self.clocking_packets = 0
        # Switch-side drop accounting. The *_data/*_ctrl split separates
        # data packets from control packets (SYN/ACK/FIN/NACK/CNP, which
        # are forced green under TLT): Table 1's important-loss metric
        # must compare green *data* drops against green *data* sends.
        self.drops_green = 0
        self.drops_red = 0
        self.drops_green_data = 0
        self.drops_red_data = 0
        self.drops_green_ctrl = 0
        self.drops_red_ctrl = 0
        self.drop_bytes = 0
        # Non-congestion (fault-injected) losses: corruption, blackhole
        # windows during link/switch failures. Kept apart from the
        # congestion counters above so the §4 green-drop faithfulness
        # numbers stay about congestion while ``important_loss_rate``
        # still sees every lost green data packet.
        self.drops_fault = 0
        self.drops_fault_green = 0
        self.drops_fault_red = 0
        self.drops_fault_green_data = 0
        self.drops_fault_bytes = 0
        self.ecn_marks = 0
        # PFC accounting.
        self.pause_frames = 0
        self.resume_frames = 0
        # Transport events.
        self.timeouts = 0
        self.fast_retransmits = 0
        # Sample reservoirs (uniform over the run, see Reservoir).
        self.rtt_samples_fg = Reservoir(MAX_SAMPLES, seed=f"{seed}:rtt_fg")
        self.rtt_samples_bg = Reservoir(MAX_SAMPLES, seed=f"{seed}:rtt_bg")
        self.delivery_samples = Reservoir(MAX_SAMPLES, seed=f"{seed}:delivery")
        self.flows: Dict[int, FlowRecord] = {}
        # Retired-flow aggregates: million-request service runs
        # (repro.service) retire completed FlowRecords so ``flows``
        # stays O(live flows); the totals below keep the derived
        # metrics (flow counts, timeouts/1k, goodput) exact.
        self.retired_flows: Dict[str, int] = {}  # group -> count
        self.retired_bytes: Dict[str, int] = {}  # group -> completed bytes
        self.retired_timeouts = 0
        # Flow ids whose sender lives on another shard (sharded runs
        # only, see repro.sim.sharding): the local record is an inert
        # receiver-side replica — tx/retx/timeout counters stay zero by
        # construction, so sender-side ledger checks must skip it.
        self.foreign_src_flows: set = set()
        # Optional audit trace ring (set by repro.audit.Auditor).
        self.audit_ring = None
        # Optional RTO-fire hook ``fn(flow_id, rto_ns)`` (set by
        # repro.telemetry.Telemetry to trigger flight-recorder dumps).
        # RTO fires are rare, so the check stays off the hot path.
        self.on_rto_fire = None

    # -- flow bookkeeping ------------------------------------------------------

    def new_flow(self, flow_id: int, src: int, dst: int, size: int, start_ns: int, group: str) -> FlowRecord:
        record = FlowRecord(flow_id, src, dst, size, start_ns, group)
        self.flows[flow_id] = record
        return record

    def retire_flow(self, flow_id: int) -> bool:
        """Drop a *completed* flow's record, folding it into the
        retired aggregates (O(1) memory for steady-state runs).

        Only completed flows retire — an in-flight record is still
        being written by its transport. Retired flows disappear from
        per-flow views (``fct_list``/``fct_summary``); callers that
        retire must measure latency on their own streaming estimators
        (see :mod:`repro.stats.streaming`). Returns True on retire.
        """
        record = self.flows.get(flow_id)
        if record is None or record.end_rx_ns is None:
            return False
        del self.flows[flow_id]
        self.foreign_src_flows.discard(flow_id)
        group = record.group
        self.retired_flows[group] = self.retired_flows.get(group, 0) + 1
        self.retired_bytes[group] = self.retired_bytes.get(group, 0) + record.size
        self.retired_timeouts += record.timeouts
        return True

    def add_rtt_sample(self, rtt_ns: int, group: str) -> None:
        samples = self.rtt_samples_fg if group == "fg" else self.rtt_samples_bg
        samples.add(rtt_ns)

    def add_delivery_sample(self, delivery_ns: int) -> None:
        self.delivery_samples.add(delivery_ns)

    def count_drop(self, packet) -> None:
        """Account one switch drop, split by color and packet kind."""
        self.drop_bytes += packet.size
        is_data = packet.kind == PacketKind.DATA
        if packet.color == Color.RED:
            self.drops_red += 1
            if is_data:
                self.drops_red_data += 1
            else:
                self.drops_red_ctrl += 1
        else:
            self.drops_green += 1
            if is_data:
                self.drops_green_data += 1
            else:
                self.drops_green_ctrl += 1

    def count_fault_drop(self, packet) -> None:
        """Account one non-congestion loss (corruption, blackhole).

        Deliberately *not* folded into :meth:`count_drop`: the audit
        green-drop checker and the congestion-drop columns must only see
        drops the admission pipeline chose to make.
        """
        self.drops_fault += 1
        self.drops_fault_bytes += packet.size
        if packet.color == Color.RED:
            self.drops_fault_red += 1
        else:
            self.drops_fault_green += 1
            if packet.kind == PacketKind.DATA:
                self.drops_fault_green_data += 1

    # -- derived metrics ---------------------------------------------------------

    def fct_list(self, group: str) -> List[int]:
        """Completion times (ns) of finished flows in ``group``."""
        return [
            r.fct_ns  # type: ignore[misc]
            for r in self.flows.values()
            if r.group == group and r.fct_ns is not None
        ]

    def fct_summary(self, group: str) -> Dict[str, float]:
        return summarize(self.fct_list(group))

    def flow_count(self, group: Optional[str] = None) -> int:
        if group is None:
            return len(self.flows) + sum(self.retired_flows.values())
        return (sum(1 for r in self.flows.values() if r.group == group)
                + self.retired_flows.get(group, 0))

    def incomplete_flows(self, group: Optional[str] = None) -> int:
        return sum(
            1
            for r in self.flows.values()
            if not r.completed and (group is None or r.group == group)
        )

    def timeouts_per_1k_flows(self) -> float:
        flows = self.flow_count()
        if flows == 0:
            return 0.0
        total = sum(r.timeouts for r in self.flows.values()) + self.retired_timeouts
        return 1000.0 * total / flows

    def pause_frames_per_1k_flows(self) -> float:
        flows = self.flow_count()
        if flows == 0:
            return 0.0
        return 1000.0 * self.pause_frames / flows

    def important_loss_rate(self) -> float:
        """Loss rate of important (green) *data* packets.

        Numerator and denominator both count data packets only:
        control packets (SYN/ACK/FIN/NACK/CNP) are forced green but are
        not part of the green data volume Table 1 reports on. Fault
        (non-congestion) losses of green data count too — a corrupted
        important packet is just as lost as a congestion-dropped one.
        """
        if self.green_data_packets == 0:
            return 0.0
        return (
            self.drops_green_data + self.drops_fault_green_data
        ) / self.green_data_packets

    def important_fraction_bytes(self) -> float:
        """Fraction of transmitted data volume marked important."""
        total = self.green_data_bytes + self.red_data_bytes
        if total == 0:
            return 0.0
        return self.green_data_bytes / total

    def goodput_bps(self, group: str, window_ns: int) -> float:
        """Aggregate goodput of completed ``group`` flows over ``window_ns``."""
        if window_ns <= 0:
            return 0.0
        done = sum(r.size for r in self.flows.values()
                   if r.group == group and r.completed)
        done += self.retired_bytes.get(group, 0)
        return done * 8 * 1e9 / window_ns
