"""Plain-text CDF / histogram rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def ascii_cdf(
    samples: Sequence[float],
    label: str = "",
    width: int = 50,
    points: Sequence[float] = (10, 25, 50, 75, 90, 99, 99.9, 100),
    unit: str = "",
) -> str:
    """Render a CDF as percentile bars.

    Each line shows one percentile with a bar proportional to its value
    relative to the maximum, e.g.::

        p50     1.23 ms  ######################
        p99     4.02 ms  ##################################################
    """
    if not len(samples):
        return f"{label}: (no samples)"
    arr = np.asarray(samples, dtype=float)
    values = [float(np.percentile(arr, p)) for p in points]
    peak = max(values) or 1.0
    lines: List[str] = []
    if label:
        lines.append(label)
    for p, value in zip(points, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"  p{p:<5} {value:12.4g}{unit}  {bar}")
    return "\n".join(lines)


def ascii_histogram(
    samples: Sequence[float],
    bins: int = 10,
    width: int = 50,
    label: str = "",
    unit: str = "",
) -> str:
    """Render a histogram with ``bins`` equal-width buckets."""
    if not len(samples):
        return f"{label}: (no samples)"
    counts, edges = np.histogram(np.asarray(samples, dtype=float), bins=bins)
    peak = counts.max() or 1
    lines: List[str] = []
    if label:
        lines.append(label)
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  [{lo:10.4g}, {hi:10.4g}){unit}  {count:6d} {bar}")
    return "\n".join(lines)
