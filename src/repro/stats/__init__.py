"""Measurement: flow records, counters and percentile helpers."""

from repro.stats.collector import FlowRecord, NetStats
from repro.stats.percentile import percentile, summarize

__all__ = ["FlowRecord", "NetStats", "percentile", "summarize"]
