"""Percentile helpers used by every experiment."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def percentile(samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) of ``samples``; 0.0 when empty."""
    if not len(samples):
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), p))


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p99 / p999 / max summary of a sample set.

    Type contract (same for empty and non-empty inputs, and matched by
    :meth:`repro.stats.streaming.StreamingQuantile.summarize` so the
    two are drop-in interchangeable): ``count`` is a builtin ``int``,
    every other value a builtin ``float`` — never a numpy scalar, so
    the dicts JSON-serialize and compare identically either way.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "p999": float(np.percentile(arr, 99.9)),
        "max": float(arr.max()),
    }
