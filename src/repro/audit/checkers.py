"""Invariant checkers: each inspects live simulation state and returns
a list of violation strings (empty = invariant holds).

Checkers are pure readers — they never mutate the network — so running
them on any cadence cannot change simulation results. Every checker
verifies a conservation or consistency property that the paper's
headline numbers (Table 1, Figs 7/11) silently rely on:

- ``check_buffer_conservation`` — the shared-buffer MMU's ``used``
  equals the sum of queue occupancies and stays within capacity;
- ``check_color_accounting`` — per-queue occupancy and ``red_bytes``
  match the packets actually queued (never negative);
- ``check_pfc_consistency`` — per-ingress PFC counters are non-negative,
  sum to the pool occupancy, and the XOFF/XON state machine agrees with
  the counters and the pause-refresh timers;
- ``check_flow_ledger`` — per-flow byte conservation: retransmitted
  bytes never exceed transmitted bytes, first transmissions never
  exceed the flow size, completed flows transmitted at least their
  size, completion timestamps are ordered, and the per-flow timeout
  counters sum to the run-wide one;
- ``check_policy_state`` — each switch's admission policy holds its
  own internal invariants (adaptive-K clamp, resolved port budgets);
- ``check_clock`` — simulated time is monotone and no queued event
  lies in the past.

The green-drop faithfulness property (§4, Table 1: important packets
are only congestion-dropped on true pool exhaustion) is checked at
drop time by :class:`repro.audit.auditor.Auditor`, which has the
admission context in hand.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Color


def check_buffer_conservation(net) -> List[str]:
    violations = []
    for switch in net.switches:
        buffer = switch.buffer
        queued = sum(q.occupancy for q in switch.queues)
        if buffer.used != queued:
            violations.append(
                f"{switch.name}: SharedBuffer.used={buffer.used} != "
                f"sum of queue occupancies {queued}"
            )
        if buffer.used < 0:
            violations.append(f"{switch.name}: SharedBuffer.used negative ({buffer.used})")
        if buffer.used > buffer.capacity:
            violations.append(
                f"{switch.name}: SharedBuffer overcommitted "
                f"({buffer.used} > capacity {buffer.capacity})"
            )
        if buffer.peak_used > buffer.capacity:
            violations.append(
                f"{switch.name}: peak_used {buffer.peak_used} exceeds "
                f"capacity {buffer.capacity}"
            )
    return violations


def check_color_accounting(net) -> List[str]:
    violations = []
    for switch in net.switches:
        for queue in switch.queues:
            actual_bytes = sum(p.size for p, _ in queue.items)
            actual_red = sum(p.size for p, _ in queue.items if p.color == Color.RED)
            if queue.occupancy != actual_bytes:
                violations.append(
                    f"{switch.name} q{queue.port_no}: occupancy={queue.occupancy} != "
                    f"queued bytes {actual_bytes}"
                )
            if queue.red_bytes != actual_red:
                violations.append(
                    f"{switch.name} q{queue.port_no}: red_bytes={queue.red_bytes} != "
                    f"queued RED bytes {actual_red}"
                )
            if queue.red_bytes < 0:
                violations.append(
                    f"{switch.name} q{queue.port_no}: red_bytes negative "
                    f"({queue.red_bytes})"
                )
            if queue.red_bytes > queue.occupancy:
                violations.append(
                    f"{switch.name} q{queue.port_no}: red_bytes {queue.red_bytes} "
                    f"exceeds occupancy {queue.occupancy}"
                )
    return violations


def check_pfc_consistency(net) -> List[str]:
    violations = []
    now = net.engine.now
    for switch in net.switches:
        pfc = switch.pfc
        if pfc is None:
            continue
        total = 0
        for port_no, count in pfc.ingress_bytes.items():
            total += count
            if count < 0:
                violations.append(
                    f"{switch.name}: PFC ingress_bytes[{port_no}] negative ({count})"
                )
        if total != switch.buffer.used:
            violations.append(
                f"{switch.name}: sum of PFC ingress_bytes {total} != "
                f"SharedBuffer.used {switch.buffer.used}"
            )
        for port_no, asserted in pfc.asserted.items():
            count = pfc.ingress_bytes.get(port_no, 0)
            if asserted:
                if count <= pfc.xon:
                    violations.append(
                        f"{switch.name}: PFC asserted on port {port_no} with "
                        f"ingress_bytes {count} <= XON {pfc.xon}"
                    )
                refresh = pfc._refresh_events.get(port_no)
                if refresh is None or getattr(refresh, "cancelled", False):
                    violations.append(
                        f"{switch.name}: PFC asserted on port {port_no} with no "
                        f"live pause-refresh timer"
                    )
            elif count >= pfc.xoff:
                violations.append(
                    f"{switch.name}: PFC not asserted on port {port_no} with "
                    f"ingress_bytes {count} >= XOFF {pfc.xoff}"
                )
    # Paused-port sanity on every device: an active pause must have a
    # live expiry timer and a start time in the past.
    for device in list(net.switches) + list(net.hosts):
        for port in device.ports:
            if not port.paused:
                continue
            if port._pause_timer is None or port._pause_timer.cancelled:
                violations.append(
                    f"{device.name} port {port.port_no}: paused with no live "
                    f"expiry timer"
                )
            if port._pause_started > now:
                violations.append(
                    f"{device.name} port {port.port_no}: pause started at "
                    f"{port._pause_started} > now {now}"
                )
    return violations


def check_flow_ledger(net) -> List[str]:
    violations = []
    stats = net.stats
    # Retired records (service runs prune completed flows for O(1)
    # stats memory) fold their timeout counts into this aggregate.
    total_timeouts = getattr(stats, "retired_timeouts", 0)
    for record in stats.flows.values():
        total_timeouts += record.timeouts
        label = f"flow {record.flow_id}"
        if record.tx_bytes < 0 or record.retx_bytes < 0:
            violations.append(
                f"{label}: negative byte counter (tx={record.tx_bytes}, "
                f"retx={record.retx_bytes})"
            )
        if record.retx_bytes > record.tx_bytes:
            violations.append(
                f"{label}: retx_bytes {record.retx_bytes} exceeds "
                f"tx_bytes {record.tx_bytes}"
            )
        if record.tx_bytes - record.retx_bytes > record.size:
            violations.append(
                f"{label}: first-transmission bytes "
                f"{record.tx_bytes - record.retx_bytes} exceed flow size {record.size}"
            )
        if record.timeouts < 0:
            violations.append(f"{label}: negative timeout count {record.timeouts}")
        if record.end_rx_ns is not None:
            # On a sharded run the sender of a cross-shard flow lives in
            # another worker: the local record only sees the receive
            # side, so the sent-at-least-size check cannot apply here.
            if (record.tx_bytes < record.size
                    and record.flow_id not in stats.foreign_src_flows):
                violations.append(
                    f"{label}: completed with tx_bytes {record.tx_bytes} < "
                    f"size {record.size}"
                )
            if record.end_rx_ns < record.start_ns:
                violations.append(
                    f"{label}: end_rx_ns {record.end_rx_ns} before "
                    f"start_ns {record.start_ns}"
                )
        if (
            record.end_ack_ns is not None
            and record.end_rx_ns is not None
            and record.end_ack_ns < record.end_rx_ns
        ):
            violations.append(
                f"{label}: end_ack_ns {record.end_ack_ns} before "
                f"end_rx_ns {record.end_rx_ns}"
            )
    if total_timeouts != stats.timeouts:
        violations.append(
            f"flow ledger: per-flow timeouts sum {total_timeouts} != "
            f"NetStats.timeouts {stats.timeouts}"
        )
    return violations


def check_policy_state(net) -> List[str]:
    """Each switch's admission policy reports its own violated
    invariants (e.g. adaptive-K outside its clamp window, BShare with
    unresolved port budgets)."""
    violations = []
    for switch in net.switches:
        policy = getattr(switch, "policy", None)
        if policy is None:
            continue
        violations.extend(f"{switch.name}: {v}" for v in policy.invariants())
    return violations


def check_clock(net, last_now: Optional[int] = None) -> List[str]:
    violations = []
    engine = net.engine
    if last_now is not None and engine.now < last_now:
        violations.append(
            f"clock moved backwards: now={engine.now} < previously observed {last_now}"
        )
    next_time = engine.peek_time()
    if next_time is not None and next_time < engine.now:
        violations.append(
            f"event queued in the past: t={next_time} < now={engine.now}"
        )
    return violations


#: End-of-run / cadence checker suite, in report order.
ALL_CHECKERS = (
    check_buffer_conservation,
    check_color_accounting,
    check_pfc_consistency,
    check_flow_ledger,
    check_policy_state,
)
