"""Runtime invariant auditing and debug tracing (``repro.audit``).

Attach an :class:`Auditor` to a network to machine-check conservation
and consistency invariants while the simulation runs, with a structured
ring-buffer trace dumped on violation. See :mod:`repro.audit.auditor`.
"""

from repro.audit.auditor import AuditConfig, Auditor
from repro.audit.checkers import (
    ALL_CHECKERS,
    check_buffer_conservation,
    check_clock,
    check_color_accounting,
    check_flow_ledger,
    check_pfc_consistency,
)
from repro.audit.ring import AuditError, EventRing

__all__ = [
    "ALL_CHECKERS",
    "AuditConfig",
    "AuditError",
    "Auditor",
    "EventRing",
    "check_buffer_conservation",
    "check_clock",
    "check_color_accounting",
    "check_flow_ledger",
    "check_pfc_consistency",
]
