"""The runtime invariant auditor.

An :class:`Auditor` attaches to one :class:`repro.net.topology.Network`
and turns "tests pass" into "invariants machine-checked on every
simulated nanosecond":

- **hot-path hooks** — switches and the PFC engine report every packet
  enqueue/dequeue/drop and PAUSE/RESUME into a ring-buffer trace;
  transports report RTO fires. Hooks are ``None``-guarded attributes,
  so an un-audited run pays nothing;
- **drop-time faithfulness check** — the paper's §4 property: a green
  (important) packet must never be dropped by the color check, on a
  lossless (PFC) switch may only be dropped on true pool exhaustion,
  and on a lossy switch every drop must be justified by the switch's
  admission policy (re-evaluated at the instant it happened);
- **cadence checks** — a self-rescheduling engine event runs the full
  checker suite (buffer conservation, color accounting, PFC
  consistency, flow ledger, clock monotonicity) every ``interval_ns``
  of simulated time;
- **end-of-run check** — :meth:`final_check` runs the same suite once
  more after the drain.

Any violation raises :class:`~repro.audit.ring.AuditError` carrying the
violations plus the retained event trace (JSON-dumpable; written to
``AuditConfig.dump_path`` when set).

Usage::

    net = build_network(config)
    auditor = Auditor(net)
    auditor.install()
    ... run ...
    auditor.final_check()

or simply ``ScenarioConfig(audit=True)`` / ``tlt-experiment --audit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.audit.checkers import ALL_CHECKERS, check_clock
from repro.audit.ring import AuditError, EventRing
from repro.net.packet import Color
from repro.sim.units import MICROS


@dataclass
class AuditConfig:
    """Auditor knobs."""

    #: Simulated time between full checker-suite runs.
    interval_ns: int = 100 * MICROS
    #: Number of trace events retained for post-mortem dumps.
    ring_size: int = 4096
    #: When set, an AuditError also writes its JSON report here.
    dump_path: Optional[str] = None


class Auditor:
    """Runtime invariant auditing + debug tracing for one network."""

    def __init__(self, net, config: Optional[AuditConfig] = None):
        self.net = net
        self.config = config or AuditConfig()
        self.ring = EventRing(self.config.ring_size)
        self.checks_run = 0
        self._last_now: Optional[int] = None
        self._tick_event = None
        self._installed = False

    # -- attachment ------------------------------------------------------------

    def install(self) -> "Auditor":
        """Hook into the network's switches, PFC engines, transports
        (via ``NetStats.audit_ring``) and engine; idempotent."""
        if self._installed:
            return self
        self._installed = True
        for switch in self.net.switches:
            switch.set_auditor(self)
            if switch.pfc is not None:
                switch.pfc.audit_ring = self.ring
        self.net.stats.audit_ring = self.ring
        self._tick_event = self.net.engine.schedule(self.config.interval_ns, self._tick)
        return self

    def detach(self) -> None:
        """Remove every hook (the trace ring is kept for inspection)."""
        if not self._installed:
            return
        self._installed = False
        for switch in self.net.switches:
            if switch.audit is self:
                switch.set_auditor(None)
            if switch.pfc is not None and switch.pfc.audit_ring is self.ring:
                switch.pfc.audit_ring = None
        if self.net.stats.audit_ring is self.ring:
            self.net.stats.audit_ring = None
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # -- hot-path hooks (called by Switch) --------------------------------------

    def on_enqueue(self, switch, packet, egress_no: int) -> None:
        self.ring.record(
            "enqueue", time_ns=self.net.engine.now, device=switch.name,
            flow=packet.flow_id, seq=packet.seq, size=packet.size,
            color=packet.color.name, port=egress_no,
        )
        # Dead-egress invariant: the fault layer withdraws a down port
        # from the FIB at link_down time and blackholes unroutable
        # destinations, so no selector — static, flowlet or weighted —
        # may ever steer a packet onto a down port (the overlapping-flap
        # resurrection bug is exactly this violation).
        if switch.ports[egress_no].down:
            self._raise([
                f"{switch.name}: flow {packet.flow_id} (seq {packet.seq}) "
                f"enqueued on down port {egress_no}"
            ])

    def on_dequeue(self, switch, packet, port_no: int) -> None:
        self.ring.record(
            "dequeue", time_ns=self.net.engine.now, device=switch.name,
            flow=packet.flow_id, seq=packet.seq, size=packet.size,
            color=packet.color.name, port=port_no,
        )

    def on_drop(self, switch, packet, queue, reason: str,
                port_occupancy: Optional[int] = None) -> None:
        self.ring.record(
            "drop", time_ns=self.net.engine.now, device=switch.name,
            flow=packet.flow_id, seq=packet.seq, size=packet.size,
            color=packet.color.name, port=queue.port_no, info=reason,
        )
        violations = self._check_drop(switch, packet, queue, reason, port_occupancy)
        if violations:
            self._raise(violations)

    def _check_drop(self, switch, packet, queue, reason: str,
                    port_occupancy: Optional[int]) -> List[str]:
        """Green-drop faithfulness (§4, Table 1), verified in-context.

        The admission math is whatever :class:`AdmissionPolicy` the
        switch runs (Choudhury–Hahne by default), so justification is
        checked by re-evaluating ``switch.policy`` — nothing changed
        state between the decision and this hook, so the re-evaluation
        reproduces it exactly.
        """
        buffer = switch.buffer
        policy = switch.policy
        size = packet.size
        violations: List[str] = []
        if reason == "color":
            if packet.color == Color.GREEN:
                violations.append(
                    f"{switch.name}: green packet (flow {packet.flow_id}, seq "
                    f"{packet.seq}) dropped by the color-aware check"
                )
            else:
                k = policy.color_threshold(queue)
                if k is None or queue.red_bytes + size <= k:
                    violations.append(
                        f"{switch.name}: unjustified color drop of flow "
                        f"{packet.flow_id} (red {queue.red_bytes} + {size} "
                        f"within K {k})"
                    )
        if reason == "pool" and buffer.used + size <= buffer.capacity:
            violations.append(
                f"{switch.name}: pool-exhaustion drop of flow {packet.flow_id} "
                f"with {buffer.free} bytes free (size {size})"
            )
        if reason == "dynamic":
            if switch.pfc is not None:
                violations.append(
                    f"{switch.name}: dynamic-threshold drop on a lossless (PFC) "
                    f"switch — only true pool exhaustion may drop"
                )
            elif (
                port_occupancy is not None
                and policy.admit(queue, port_occupancy, size, False) is None
            ):
                violations.append(
                    f"{switch.name}: unjustified dynamic drop of flow "
                    f"{packet.flow_id} (policy {policy.name} admits "
                    f"{size} bytes at port occupancy {port_occupancy})"
                )
        return violations

    # -- checking ---------------------------------------------------------------

    def run_checkers(self) -> List[str]:
        """Run the full suite once; returns violations without raising."""
        self.checks_run += 1
        violations = check_clock(self.net, self._last_now)
        self._last_now = self.net.engine.now
        for checker in ALL_CHECKERS:
            violations.extend(checker(self.net))
        return violations

    def check_now(self) -> None:
        """Run the full suite; raise :class:`AuditError` on violation."""
        violations = self.run_checkers()
        if violations:
            self._raise(violations)

    def final_check(self) -> None:
        """End-of-run check; call after the engine drained."""
        self.ring.record("audit_final", time_ns=self.net.engine.now)
        self.check_now()

    def _tick(self) -> None:
        self._tick_event = None
        self.ring.record("audit_tick", time_ns=self.net.engine.now)
        self.check_now()
        # Keep riding along while the simulation has live events;
        # stop when it drains so the audit never keeps a run alive.
        if self.net.engine.peek_time() is not None:
            self._tick_event = self.net.engine.schedule(
                self.config.interval_ns, self._tick
            )

    def _raise(self, violations: List[str]) -> None:
        error = AuditError(violations, self.ring.to_list(), self.net.engine.now)
        if self.config.dump_path:
            try:
                error.dump(self.config.dump_path)
            except OSError:  # an unwritable dump path must not mask the violation
                pass
        raise error
