"""Structured ring-buffer trace of recent simulation events.

The ring keeps the last N events (packet enqueue/dequeue/drop, PFC
pause/resume, RTO timer fires, audit ticks) as cheap tuples; only when
a violation is raised are they expanded into dictionaries and dumped as
JSON for post-mortem analysis. Recording is a single ``deque.append``
so it is safe to leave on for whole experiment sweeps.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Trace entry layout: (time_ns, kind, device, flow, seq, size, color, port, info)
_FIELDS = ("time_ns", "kind", "device", "flow", "seq", "size", "color", "port", "info")


class EventRing:
    """Fixed-capacity ring of structured simulation events."""

    __slots__ = ("capacity", "recorded", "_events")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.recorded = 0  # total events ever recorded (ring may have dropped old ones)
        self._events: Deque[Tuple] = deque(maxlen=capacity)

    def record(
        self,
        kind: str,
        *,
        time_ns: int = 0,
        device: Optional[str] = None,
        flow: Optional[int] = None,
        seq: Optional[int] = None,
        size: Optional[int] = None,
        color: Optional[str] = None,
        port: Optional[int] = None,
        info: object = None,
    ) -> None:
        self.recorded += 1
        self._events.append((time_ns, kind, device, flow, seq, size, color, port, info))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def to_list(self) -> List[Dict]:
        """Expand the retained events into JSON-able dictionaries."""
        out = []
        for event in self._events:
            entry = {
                name: value
                for name, value in zip(("time_ns", "kind"), event[:2])
            }
            for name, value in zip(_FIELDS[2:], event[2:]):
                if value is not None:
                    entry[name] = value
            out.append(entry)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_list(), indent=indent)


class AuditError(AssertionError):
    """A machine-checked simulation invariant was violated.

    Carries the structured violations plus the ring-buffer trace of the
    last simulation events so the failure can be analysed post-mortem.
    ``to_json()`` serialises both; :meth:`dump` writes them to a file.
    """

    def __init__(self, violations: List[str], trace: List[Dict], time_ns: int = 0):
        self.violations = list(violations)
        self.trace = list(trace)
        self.time_ns = time_ns
        preview = "; ".join(self.violations[:3])
        more = f" (+{len(self.violations) - 3} more)" if len(self.violations) > 3 else ""
        super().__init__(
            f"audit failed at t={time_ns}ns: {preview}{more} "
            f"[{len(self.trace)} trace events retained]"
        )

    def to_dict(self) -> Dict:
        return {
            "time_ns": self.time_ns,
            "violations": self.violations,
            "trace": self.trace,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path: str) -> str:
        """Write the violation report + trace as JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        return path
