"""Package version, kept importable without any heavy dependencies."""

__version__ = "1.0.0"
