"""Flight recorder: bounded sample window + JSON dumps on trigger events.

Production transports keep a post-mortem ring so the interesting part
of a run — the seconds *before* something went wrong — survives the
crash. This is that, for the simulator: the recorder retains a bounded
window of the most recent telemetry samples and, when triggered, dumps
a JSON snapshot cross-linking three subsystems:

- **telemetry**: the retained sample window (what queues/flows/PFC
  looked like leading up to the event);
- **audit**: the tail of the auditor's :class:`repro.audit.EventRing`
  hot-path trace, when an auditor is attached;
- the **trigger** itself — an :class:`repro.audit.AuditError`, an RTO
  fire, or an applied fault-schedule event.

Dumps are capped (``max_dumps``) so a pathological run (RTO storm)
cannot fill the disk; suppressed triggers are counted.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional

from repro.telemetry.exporters import SCHEMA_VERSION


class FlightRecorder:
    """Bounded recent-sample window with triggered JSON snapshots."""

    def __init__(
        self,
        out_dir: str,
        run_id: str,
        engine=None,
        window: int = 2048,
        max_dumps: int = 8,
        ring_tail: int = 256,
    ):
        self.out_dir = out_dir
        self.run_id = run_id
        self.engine = engine
        self.window: deque = deque(maxlen=window)
        self.max_dumps = max_dumps
        self.ring_tail = ring_tail
        #: Callable returning the audit EventRing (or None); bound by
        #: :class:`repro.telemetry.Telemetry` so dumps see the ring the
        #: auditor actually installed, whenever it was installed.
        self.ring_provider = lambda: None
        self.dumps: List[str] = []
        self.suppressed = 0
        self.triggers: List[Dict] = []

    def on_sample(self, record: Dict) -> None:
        self.window.append(record)

    def trigger(self, kind: str, info: Optional[Dict] = None) -> Optional[str]:
        """Record a trigger and dump a snapshot; returns the dump path
        (None once ``max_dumps`` snapshots exist — still counted)."""
        now = self.engine.now if self.engine is not None else 0
        trigger = {"kind": kind, "time_ns": now}
        if info:
            trigger.update(info)
        self.triggers.append(trigger)
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        ring = self.ring_provider()
        audit_trace = ring.to_list()[-self.ring_tail:] if ring is not None else []
        payload = {
            "schema": SCHEMA_VERSION,
            "run": self.run_id,
            "trigger": trigger,
            "samples": list(self.window),
            "audit_trace": audit_trace,
        }
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(
            self.out_dir, f"flight_{self.run_id}_{len(self.dumps):03d}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.dumps.append(path)
        return path

    def summary(self) -> Dict:
        return {
            "dumps": list(self.dumps),
            "triggers": len(self.triggers),
            "suppressed": self.suppressed,
        }
