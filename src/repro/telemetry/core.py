"""Telemetry orchestration: config, sampler lifecycle, export, triggers.

:class:`TelemetryConfig` is the JSON-able spec carried on
``ScenarioConfig(telemetry=...)`` (or pointed at by the
``TLT_TELEMETRY`` environment variable, which names an output
directory); :class:`Telemetry` owns one run's registry, samplers,
exporters and flight recorder.

Determinism contract: samplers are ordinary engine events, so a run
with telemetry attached processes *more* events than one without — but
samplers only read state, so every simulation observable (counters,
timings, drops, queue dynamics, durations) is bit-identical. Telemetry
is likewise excluded from result-cache keys
(:meth:`repro.experiments.parallel.Job.cache_key`): it is an
observation, not a result — which also means a cache *hit* re-simulates
nothing and therefore emits no telemetry (use ``--no-cache`` to force
fresh streams).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, Optional

from repro.sim.units import MICROS
from repro.telemetry.exporters import JsonlWriter, export_csv
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.report import render_html, render_report
from repro.telemetry.samplers import (
    BufferOccupancySampler,
    FlowStateSampler,
    LinkLoadSampler,
    PfcStateSampler,
    PathChurnSampler,
    PolicySampler,
    QueueDepthSampler,
)


@dataclass
class TelemetryConfig:
    """What to sample, how often, and which exporters to write."""

    #: Output directory for every artifact of the run.
    out_dir: str = "telemetry"
    #: Base sampling cadence (sim time). Queue/buffer/PFC samplers use
    #: it directly; flow and link samplers default to it too but can be
    #: slowed independently (they touch more state per tick).
    interval_ns: int = 20 * MICROS
    flow_interval_ns: Optional[int] = None
    link_interval_ns: Optional[int] = None

    # Sampler toggles.
    queues: bool = True
    buffers: bool = True
    pfc: bool = True
    flows: bool = True
    links: bool = True
    policies: bool = True
    paths: bool = True

    # Exporter toggles.
    jsonl: bool = True
    csv: bool = False
    prometheus: bool = True
    report: bool = True
    html: bool = False

    #: Per-tick cap on sampled flows (see FlowStateSampler).
    max_flows: int = 64
    #: Flight-recorder retention and dump cap.
    recorder_window: int = 2048
    max_dumps: int = 8
    #: In-memory per-stream retention for CSV/report rendering.
    memory_samples: int = 200_000
    #: Stable identifier for this run's files; scenario runs derive one
    #: from (transport, seed, config hash) when unset.
    run_id: Optional[str] = None

    @classmethod
    def from_spec(cls, spec) -> "TelemetryConfig":
        """Accept a TelemetryConfig, a dict spec, an out-dir string, or
        ``True`` (all defaults)."""
        if isinstance(spec, TelemetryConfig):
            return spec
        if spec is True:
            spec = {}
        if isinstance(spec, str):
            spec = {"out_dir": spec}
        if not isinstance(spec, dict):
            raise ValueError(f"telemetry spec must be dict/str/True, got {type(spec).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown telemetry option(s): {sorted(unknown)}")
        config = cls(**spec)
        if config.interval_ns <= 0:
            raise ValueError("telemetry interval must be positive")
        return config

    def to_spec(self) -> Dict:
        """Canonical JSON-able form (round-trips through from_spec)."""
        return asdict(self)


class Telemetry:
    """One run's telemetry: registry + samplers + exporters + recorder."""

    def __init__(self, net, config=None, scenario=None, run_id: Optional[str] = None):
        self.net = net
        self.engine = net.engine
        self.config = TelemetryConfig.from_spec(config if config is not None else True)
        self.scenario = scenario
        self.run_id = (
            self.config.run_id or run_id or f"run_s{getattr(net.stats, 'seed', 0)}"
        )
        self.registry = MetricsRegistry(enabled=True)
        #: stream name -> list of retained records (bounded).
        self.samples: Dict[str, list] = {}
        self.samplers: list = []
        self.emitted = 0
        self.files: list = []
        self.recorder = FlightRecorder(
            self.config.out_dir,
            self.run_id,
            engine=self.engine,
            window=self.config.recorder_window,
            max_dumps=self.config.max_dumps,
        )
        self.recorder.ring_provider = lambda: net.stats.audit_ring
        self._jsonl: Optional[JsonlWriter] = None
        self._installed = False
        self._finalized = False
        self._summary: Optional[Dict] = None

    # -- sampling ----------------------------------------------------------------

    def emit(self, stream: str, row: Dict) -> None:
        """Stamp and fan out one sampled record (memory, recorder, JSONL)."""
        record = {
            "t": self.engine.now,
            "i": self.emitted,
            "run": self.run_id,
            "seed": getattr(self.net.stats, "seed", 0),
            "stream": stream,
        }
        record.update(row)
        self.emitted += 1
        retained = self.samples.get(stream)
        if retained is None:
            retained = self.samples[stream] = []
        if len(retained) < self.config.memory_samples:
            retained.append(record)
        self.recorder.on_sample(record)
        if self._jsonl is not None:
            self._jsonl.write(record)

    def _auto_active(self) -> bool:
        """Default keep-sampling predicate for standalone use: continue
        while the engine holds any event that is not one of ours (an
        idle engine kept alive only by samplers is a finished run)."""
        live = sum(1 for sampler in self.samplers if sampler.event_pending)
        return self.net.engine.pending > live

    def install(self, active: Optional[Callable[[], bool]] = None) -> "Telemetry":
        """Create output dir, open the stream, arm the samplers.

        ``active`` is the keep-sampling predicate; scenario runs pass
        the same "traffic window open or stragglers remain" rule as the
        Fig-11 queue sampler so telemetry never extends a run.
        """
        if self._installed:
            return self
        self._installed = True
        config = self.config
        os.makedirs(config.out_dir, exist_ok=True)
        if config.jsonl:
            self._jsonl = JsonlWriter(
                os.path.join(config.out_dir, f"run_{self.run_id}.jsonl")
            )
        act = active if active is not None else self._auto_active
        common = dict(emit=self.emit, registry=self.registry, active=act)
        if config.queues:
            self.samplers.append(
                QueueDepthSampler(self.net, config.interval_ns, **common))
        if config.buffers:
            self.samplers.append(
                BufferOccupancySampler(self.net, config.interval_ns, **common))
        if config.pfc:
            self.samplers.append(
                PfcStateSampler(self.net, config.interval_ns, **common))
        if config.flows:
            self.samplers.append(FlowStateSampler(
                self.net, config.flow_interval_ns or config.interval_ns,
                max_flows=config.max_flows, **common))
        if config.links:
            self.samplers.append(LinkLoadSampler(
                self.net, config.link_interval_ns or config.interval_ns, **common))
        if config.policies:
            self.samplers.append(
                PolicySampler(self.net, config.interval_ns, **common))
        if config.paths:
            self.samplers.append(
                PathChurnSampler(self.net, config.interval_ns, **common))
        # RTO fires dump the flight recorder (rare: off the hot path).
        self.net.stats.on_rto_fire = self._on_rto_fire
        return self

    # -- trigger plumbing --------------------------------------------------------

    def _on_rto_fire(self, flow_id: int, rto_ns: int) -> None:
        self.recorder.trigger("rto_fire", {"flow": flow_id, "rto_ns": rto_ns})

    def _on_fault(self, event) -> None:
        self.recorder.trigger("fault", {
            "fault_kind": event.kind, "target": event.target,
            "scheduled_ns": event.time_ns,
        })

    def attach_faults(self, controller) -> None:
        """Dump a snapshot whenever the fault controller applies an event."""
        controller.on_apply = self._on_fault

    def on_audit_error(self, error) -> None:
        """Dump a snapshot for a raised :class:`repro.audit.AuditError`."""
        self.recorder.trigger("audit_error", {
            "violations": list(getattr(error, "violations", []) or [str(error)]),
            "error_time_ns": getattr(error, "time_ns", 0),
        })

    # -- teardown ----------------------------------------------------------------

    def _snapshot_counters(self) -> None:
        """Mirror the run's headline NetStats totals into the registry
        so the Prometheus exposition carries end-of-run counters."""
        stats = self.net.stats
        for name, help_text, value in (
            ("tlt_timeouts_total", "RTO fires", stats.timeouts),
            ("tlt_fast_retransmits_total", "Fast retransmits", stats.fast_retransmits),
            ("tlt_ecn_marks_total", "ECN marks", stats.ecn_marks),
            ("tlt_pause_frames_total", "PFC pause frames", stats.pause_frames),
            ("tlt_drops_green_total", "Green congestion drops", stats.drops_green),
            ("tlt_drops_red_total", "Red congestion drops", stats.drops_red),
            ("tlt_drops_fault_total", "Fault-injected drops", stats.drops_fault),
        ):
            self.registry.counter(name, help_text).set(value)
        self.registry.gauge(
            "tlt_flows_incomplete", "Flows not complete at end of run",
        ).set(stats.incomplete_flows())
        self.registry.counter(
            "tlt_telemetry_samples_total", "Telemetry records emitted",
        ).set(self.emitted)

    def finalize(self) -> Dict:
        """Stop samplers, write the end-of-run artifacts, close streams."""
        if self._finalized:
            return self._summary
        self._finalized = True
        for sampler in self.samplers:
            sampler.stop()
        if self.net.stats.on_rto_fire is self._on_rto_fire:
            self.net.stats.on_rto_fire = None
        config = self.config
        if self._jsonl is not None:
            self._jsonl.close()
            self.files.append(self._jsonl.path)
        self._snapshot_counters()
        if config.prometheus:
            path = os.path.join(config.out_dir, f"run_{self.run_id}.prom")
            self.files.append(self.registry.write_prometheus(path))
        if config.csv:
            self.files.extend(export_csv(self.samples, config.out_dir, self.run_id))
        if config.report or config.html:
            text = render_report(self)
            if config.report:
                path = os.path.join(config.out_dir, f"report_{self.run_id}.txt")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
                self.files.append(path)
            if config.html:
                path = os.path.join(config.out_dir, f"report_{self.run_id}.html")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(render_html(text, title=f"TLT run {self.run_id}"))
                self.files.append(path)
        self._summary = {
            "run": self.run_id,
            "emitted": self.emitted,
            "streams": {s: len(rows) for s, rows in sorted(self.samples.items())},
            "files": list(self.files),
            "recorder": self.recorder.summary(),
        }
        return self._summary

    def summary(self) -> Dict:
        return self._summary if self._summary is not None else {
            "run": self.run_id,
            "emitted": self.emitted,
            "streams": {s: len(rows) for s, rows in sorted(self.samples.items())},
            "files": list(self.files),
            "recorder": self.recorder.summary(),
        }
