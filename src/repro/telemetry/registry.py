"""Metrics registry: counters, gauges and histograms with label tuples.

The registry follows the bind-at-construction discipline the rest of
the hot path uses (see the auditor's fast/audited ``Switch`` variants):
callers ask the registry for a metric **once**, at construction time,
and hold the returned handle. A disabled registry hands out the shared
:data:`NULL_METRIC` singleton whose methods are empty — the instrumented
code path then costs one no-op attribute call, and nothing at all when
the caller skips instrumentation entirely because telemetry is off.
Because binding happens at construction, flipping a registry between
enabled and disabled after handles were handed out has no effect; build
a new one instead.

Exposition follows the Prometheus text format
(``# HELP`` / ``# TYPE`` + ``name{label="value"} value`` lines), so any
Prometheus-compatible toolchain can scrape a run's final state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class _NullMetric:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()

    def labels(self, *values: object) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_METRIC = _NullMetric()


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Child:
    """One (metric, label-tuple) series: holds the scalar value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def labels(self, *values: object) -> "_Child":  # pragma: no cover - guard
        raise TypeError("labels() on an already-labelled series")

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram buckets: byte-ish powers of four up to 4 MB.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)


class _HistogramChild:
    """One labelled histogram series: cumulative bucket counts + sum."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class Metric:
    """A named family of series, one per label-value tuple.

    ``metric.labels("tor0", "3")`` returns the child for that label
    tuple (created on first use); unlabelled metrics proxy straight to
    the ``()`` child so ``counter.inc()`` works without ``labels()``.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self) -> object:
        return _Child()

    def labels(self, *values: object):
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    # Unlabelled convenience: operate on the () series.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        child = self._children.get(())
        return child.value if child is not None else 0.0

    def series(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())

    def _label_str(self, key: Tuple[str, ...], extra: str = "") -> str:
        pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(self.labelnames, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key, child in self.series():
            lines.append(f"{self.name}{self._label_str(key)} {_format_value(child.value)}")
        return lines


class Counter(Metric):
    kind = "counter"

    def dec(self, amount: float = 1.0) -> None:  # pragma: no cover - guard
        raise TypeError("counters only go up")

    def set(self, value: float) -> None:
        """Snapshot-set (used when mirroring end-of-run NetStats totals)."""
        self.labels().set(value)


class Gauge(Metric):
    kind = "gauge"


class Histogram(Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _new_child(self) -> object:
        return _HistogramChild(self.buckets)

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key, child in self.series():
            for le, cum in child.cumulative():
                extra = f'le="{_format_value(le)}"'
                lines.append(f"{self.name}_bucket{self._label_str(key, extra)} {cum}")
            lines.append(f"{self.name}_sum{self._label_str(key)} {_format_value(child.sum)}")
            lines.append(f"{self.name}_count{self._label_str(key)} {child.count}")
        return lines


class MetricsRegistry:
    """Create-or-get metric families; render Prometheus text exposition.

    ``MetricsRegistry(enabled=False)`` returns :data:`NULL_METRIC` from
    every factory — the zero-cost disabled path.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        if not self.enabled:
            return NULL_METRIC
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} re-registered with a different shape")
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labelnames, buckets=buckets)

    def collect(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self.collect():
            lines.extend(metric.exposition())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_prometheus())
        return path


def get_metric(registry: Optional[MetricsRegistry]):
    """``registry`` or the null registry — for optional-telemetry call sites."""
    return registry if registry is not None else MetricsRegistry(enabled=False)
