"""Run-time observability for the simulator (``repro.telemetry``).

Four pieces, wired end to end through ``ScenarioConfig(telemetry=...)``
/ ``TLT_TELEMETRY`` / ``tlt-experiment --telemetry OUTDIR``:

- a **metrics registry** (:mod:`repro.telemetry.registry`) whose
  disabled path costs zero on the hot loop (bind-at-construction null
  metrics, like the auditor's fast/audited ``Switch`` variants);
- **engine-clocked samplers** (:mod:`repro.telemetry.samplers`) on the
  timer wheel — queue depth by color vs K, shared-buffer occupancy,
  PFC pause state, per-flow cwnd/rate/in-flight/RTO-armed, link
  utilization — sampled on sim time so determinism fingerprints stay
  bit-identical with telemetry on;
- **exporters** (:mod:`repro.telemetry.exporters`,
  :mod:`repro.telemetry.report`): streaming JSONL, CSV, Prometheus text
  exposition, and an ASCII/HTML report with Fig-11-style queue
  timelines;
- a **flight recorder** (:mod:`repro.telemetry.recorder`) dumping a
  JSON snapshot of recent samples + the audit ring tail on
  ``AuditError``, RTO fires and fault-schedule events.
"""

from repro.telemetry.core import Telemetry, TelemetryConfig
from repro.telemetry.exporters import (
    SCHEMA_VERSION,
    JsonlWriter,
    encode_record,
    export_csv,
    merge_streams,
)
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.registry import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import render_html, render_report, sparkline
from repro.telemetry.samplers import (
    STREAM_FIELDS,
    BufferOccupancySampler,
    FlowStateSampler,
    LinkLoadSampler,
    LinkUtilization,
    PfcStateSampler,
    PathChurnSampler,
    PolicySampler,
    QueueDepthSampler,
    Sampler,
)

__all__ = [
    "NULL_METRIC",
    "SCHEMA_VERSION",
    "STREAM_FIELDS",
    "BufferOccupancySampler",
    "Counter",
    "FlightRecorder",
    "FlowStateSampler",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "LinkLoadSampler",
    "LinkUtilization",
    "MetricsRegistry",
    "PfcStateSampler",
    "PathChurnSampler",
    "PolicySampler",
    "QueueDepthSampler",
    "Sampler",
    "Telemetry",
    "TelemetryConfig",
    "encode_record",
    "export_csv",
    "merge_streams",
    "render_html",
    "render_report",
    "sparkline",
]
