"""ASCII/HTML run report: Fig-11-style queue timelines from telemetry.

Renders the in-memory sample window of a :class:`repro.telemetry.Telemetry`
into a plain-text report — per-queue green/red occupancy sparklines
against the color threshold K, shared-buffer timelines, FCT CDFs
(reusing :func:`repro.stats.ascii.ascii_cdf`) and the run's headline
counters. The HTML variant wraps the same text in a minimal page so CI
can publish it as an artifact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.stats.ascii import ascii_cdf

#: Density ramp for sparkline cells (space = zero).
LEVELS = " .:-=+*#%@"


def sparkline(
    points: Iterable[Tuple[int, float]],
    t0: int,
    t1: int,
    width: int = 64,
    vmax: Optional[float] = None,
) -> str:
    """Render ``(time, value)`` points as a fixed-width density strip.

    The window ``[t0, t1]`` is split into ``width`` buckets; each cell
    shows the bucket's **max** value (peaks are the signal — a mean
    would smear the incast spikes Fig 11 is about) on the
    :data:`LEVELS` ramp, scaled to ``vmax`` (default: observed max).
    Times with no sample render as empty cells.
    """
    cells = [0.0] * width
    span = max(t1 - t0, 1)
    top = 0.0
    for t, value in points:
        index = (t - t0) * width // span
        if index < 0 or value <= 0:
            continue
        if index >= width:
            index = width - 1
        if value > cells[index]:
            cells[index] = value
        if value > top:
            top = value
    scale = vmax if vmax else top
    if scale <= 0:
        return "|" + " " * width + "|"
    chars = []
    for value in cells:
        if value <= 0:
            chars.append(" ")
        else:
            level = int(value / scale * (len(LEVELS) - 1) + 0.5)
            chars.append(LEVELS[max(1, min(level, len(LEVELS) - 1))])
    return "|" + "".join(chars) + "|"


def _series(
    records: Iterable[Dict], key_fields: Tuple[str, ...], value_field: str
) -> Dict[Tuple, List[Tuple[int, float]]]:
    """Group records into per-key ``(t, value)`` series."""
    series: Dict[Tuple, List[Tuple[int, float]]] = {}
    for record in records:
        key = tuple(record.get(f) for f in key_fields)
        series.setdefault(key, []).append((record["t"], record.get(value_field) or 0))
    return series


def _fmt_bytes(n: Optional[float]) -> str:
    if n is None:
        return "-"
    if n >= 1_000_000:
        return f"{n / 1e6:.2f}MB"
    if n >= 1_000:
        return f"{n / 1e3:.0f}kB"
    return f"{int(n)}B"


def render_report(telemetry, width: int = 64, max_queues: int = 8) -> str:
    """The full plain-text run report for one :class:`Telemetry`."""
    net = telemetry.net
    stats = net.stats
    config = telemetry.scenario
    t0, t1 = 0, net.engine.now
    lines: List[str] = []
    lines.append(f"TLT telemetry report — run {telemetry.run_id}")
    if config is not None:
        lines.append(
            f"config: transport={config.transport} tlt={config.tlt} "
            f"pfc={config.pfc} scale={config.scale.name} seed={config.seed}"
        )
    counts = " ".join(
        f"{stream}={len(telemetry.samples[stream])}"
        for stream in sorted(telemetry.samples)
    )
    lines.append(f"window: [{t0}, {t1}] ns   samples: {counts or '(none)'}")
    recorder = telemetry.recorder
    lines.append(
        f"flight recorder: {len(recorder.dumps)} dump(s), "
        f"{len(recorder.triggers)} trigger(s), {recorder.suppressed} suppressed"
    )
    lines.append("")

    # -- Fig-11-style queue timelines -----------------------------------------
    queue_records = telemetry.samples.get("queue", ())
    if queue_records:
        green = _series(queue_records, ("switch", "port", "tclass"), "green")
        red = _series(queue_records, ("switch", "port", "tclass"), "red")
        occ = _series(queue_records, ("switch", "port", "tclass"), "occ")
        k_by_key = {
            tuple(r.get(f) for f in ("switch", "port", "tclass")): r.get("k")
            for r in queue_records
        }
        ranked = sorted(
            occ, key=lambda key: max(v for _, v in occ[key]), reverse=True
        )[:max_queues]
        lines.append(
            f"Queue occupancy by color vs threshold K "
            f"(top {len(ranked)} queues by peak, cell = bucket max):"
        )
        for key in ranked:
            switch, port, tclass = key
            k = k_by_key.get(key)
            peak = max(v for _, v in occ[key])
            red_peak = max((v for _, v in red.get(key, [])), default=0)
            scale = max(peak, k or 0)
            label = f"{switch}:p{port}/q{tclass}"
            lines.append(
                f"  {label:<14} K={_fmt_bytes(k):<8} peak={_fmt_bytes(peak):<9} "
                f"red_peak={_fmt_bytes(red_peak)}"
            )
            lines.append(
                f"    green {sparkline(green.get(key, []), t0, t1, width, scale)}"
            )
            lines.append(
                f"    red   {sparkline(red.get(key, []), t0, t1, width, scale)}"
                + ("  (full scale = K)" if k and k >= peak else "")
            )
        lines.append("")

    # -- shared buffer ---------------------------------------------------------
    buffer_records = telemetry.samples.get("buffer", ())
    if buffer_records:
        used = _series(buffer_records, ("switch",), "used")
        lines.append("Shared-buffer MMU occupancy:")
        for key in sorted(used):
            capacity = next(
                (r["capacity"] for r in buffer_records if r["switch"] == key[0]), None
            )
            peak = max(v for _, v in used[key])
            lines.append(
                f"  {key[0]:<14} cap={_fmt_bytes(capacity):<9} peak={_fmt_bytes(peak)}"
            )
            lines.append(f"    used  {sparkline(used[key], t0, t1, width, capacity)}")
        lines.append("")

    # -- PFC -------------------------------------------------------------------
    pfc_records = telemetry.samples.get("pfc", ())
    if pfc_records:
        paused = _series(pfc_records, ("device", "port"), "paused")
        lines.append("PFC pause state (ticks observed paused/asserted):")
        for key in sorted(paused):
            lines.append(
                f"  {key[0]}:p{key[1]}  {len(paused[key])} tick(s) "
                f"{sparkline(paused[key], t0, t1, width, 1.0)}"
            )
        lines.append("")

    # -- FCT CDFs (repro.stats.ascii) -----------------------------------------
    for group, title in (("fg", "foreground (incast)"), ("bg", "background")):
        samples = [fct / 1e6 for fct in stats.fct_list(group)]
        if samples:
            lines.append(ascii_cdf(samples, label=f"FCT CDF — {title}", unit=" ms"))
            lines.append("")

    # -- headline counters -----------------------------------------------------
    lines.append("Counters:")
    lines.append(
        f"  timeouts={stats.timeouts} fast_retx={stats.fast_retransmits} "
        f"ecn_marks={stats.ecn_marks} pause_frames={stats.pause_frames}"
    )
    lines.append(
        f"  drops: green={stats.drops_green} red={stats.drops_red} "
        f"fault={stats.drops_fault} bytes={stats.drop_bytes}"
    )
    lines.append(
        f"  flows: {stats.flow_count()} total, {stats.incomplete_flows()} incomplete"
    )
    return "\n".join(lines) + "\n"


def render_html(text: str, title: str = "TLT telemetry report") -> str:
    """Wrap the ASCII report in a minimal self-contained HTML page."""
    escaped = (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{title}</title>"
        "<style>body{background:#111;color:#ddd;}"
        "pre{font:12px/1.3 monospace;}</style></head>\n"
        f"<body><pre>{escaped}</pre></body></html>\n"
    )
