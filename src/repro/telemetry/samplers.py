"""Engine-clocked samplers: periodic reads of live simulation state.

Every sampler is an event on the engine's hierarchical timer wheel
(:mod:`repro.sim.timerwheel` via ``Engine.schedule_timer``), firing on
**sim time** — never wall-clock — so a run with telemetry attached
replays the exact event sequence of a run without it. Samplers only
read state; they never mutate queues, flows or counters, and they never
touch an RNG, so determinism fingerprints stay bit-identical with
telemetry on.

Lifecycle: a sampler re-arms itself each tick until its ``active``
predicate says the run is over (scenario runs pass "traffic window
still open or stragglers remain" — the same predicate the Fig-11 queue
sampler uses, so telemetry never extends a run), until an optional
``duration_ns`` elapses, or until :meth:`Sampler.stop`.

:class:`LinkUtilization` lives here now — it predates the framework
(as ``repro.stats.timeseries.LinkUtilization``, still importable from
there as a thin alias) and keeps its original standalone API.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine

#: ``emit(stream, row)`` — receives one flat dict per sampled series.
EmitFn = Callable[[str, Dict], None]


def _null_emit(stream: str, row: Dict) -> None:
    pass


class Sampler:
    """Base class: self-rescheduling timer-wheel sampling loop."""

    #: Stream name stamped on every emitted row.
    stream = "sampler"

    def __init__(
        self,
        engine: Engine,
        interval_ns: int,
        emit: Optional[EmitFn] = None,
        duration_ns: Optional[int] = None,
        active: Optional[Callable[[], bool]] = None,
        start: bool = True,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.interval_ns = interval_ns
        self.emit = emit if emit is not None else _null_emit
        self._stop_at = engine.now + duration_ns if duration_ns is not None else None
        self._active = active
        self._event = None
        self._stopped = False
        self.ticks = 0
        if start:
            self.start()

    @property
    def event_pending(self) -> bool:
        """True while a re-arm is outstanding on the wheel."""
        return self._event is not None

    def start(self) -> None:
        if self._event is None and not self._stopped:
            self._event = self.engine.schedule_timer(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self._event = None
        if self._stopped:
            return
        self.ticks += 1
        self.sample()
        if self._stop_at is not None and self.engine.now >= self._stop_at:
            self._stopped = True
            return
        if self._active is not None and not self._active():
            self._stopped = True
            return
        self._event = self.engine.schedule_timer(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def sample(self) -> None:
        raise NotImplementedError


class QueueDepthSampler(Sampler):
    """Per-egress-queue depth, split green vs red against threshold K.

    Emits one row per non-empty queue: the Fig-11 signal (how far red
    occupancy tracks K while green stays thin). Empty queues are elided;
    consumers treat a missing (switch, port, tclass) at a tick as zero.
    """

    stream = "queue"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._switches = list(net.switches)
        self._g_occ = registry.gauge(
            "tlt_queue_occupancy_bytes",
            "Egress queue occupancy by color",
            ("switch", "port", "tclass", "color"),
        )
        self._h_depth = registry.histogram(
            "tlt_queue_depth_bytes", "Distribution of sampled non-empty queue depths",
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        emit = self.emit
        for switch in self._switches:
            k = switch.config.color_threshold_bytes
            for port_no, port_queues in enumerate(switch._port_queues):
                for tclass, queue in enumerate(port_queues):
                    occ = queue.occupancy
                    if not occ:
                        continue
                    red = queue.red_bytes
                    emit(self.stream, {
                        "switch": switch.name, "port": port_no, "tclass": tclass,
                        "occ": occ, "red": red, "green": occ - red, "k": k,
                    })
                    self._g_occ.labels(switch.name, port_no, tclass, "green").set(occ - red)
                    self._g_occ.labels(switch.name, port_no, tclass, "red").set(red)
                    self._h_depth.observe(occ)


class BufferOccupancySampler(Sampler):
    """Shared-buffer MMU occupancy per switch."""

    stream = "buffer"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._switches = list(net.switches)
        self._g_used = registry.gauge(
            "tlt_buffer_used_bytes", "Shared buffer occupancy", ("switch",),
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        for switch in self._switches:
            buf = switch.buffer
            if not buf.used:
                continue
            self.emit(self.stream, {
                "switch": switch.name, "used": buf.used,
                "capacity": buf.capacity, "peak": buf.peak_used,
            })
            self._g_used.labels(switch.name).set(buf.used)


class PfcStateSampler(Sampler):
    """PFC pause state per port: XOFF-asserted ingresses and paused TX.

    Rows are emitted only for ports currently paused (their transmitter
    is XOFF'd by the peer) or asserting XOFF upstream — PFC is quiet in
    the common case and a dense all-ports stream would drown the signal.
    """

    stream = "pfc"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._devices = list(net.switches) + list(net.hosts)
        self._g_paused = registry.gauge(
            "tlt_pfc_paused_ports", "Ports currently paused by PFC", ("device",),
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        for device in self._devices:
            paused_count = 0
            pfc = getattr(device, "pfc", None)
            for port in device.ports:
                asserted = bool(pfc.asserted.get(port.port_no, False)) if pfc else False
                if not (port.paused or asserted):
                    continue
                paused_count += port.paused
                self.emit(self.stream, {
                    "device": device.name, "port": port.port_no,
                    "paused": int(port.paused), "asserted": int(asserted),
                })
            self._g_paused.labels(device.name).set(paused_count)


class FlowStateSampler(Sampler):
    """Per-flow sender state: cwnd/rate, in-flight bytes, TLT and RTO arming.

    Works across both families by duck-typing the sender objects
    registered in each host's endpoint demux table: the TCP byte-stream
    family exposes ``cwnd``; the RoCE family exposes ``rate_ctrl``
    (DCQCN) or ``hpcc.window``. Completed flows stop being sampled. At
    most ``max_flows`` senders are sampled per tick (deterministic
    host-then-flow order) to bound the per-tick cost at large scale.
    """

    stream = "flow"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry,
                 max_flows: int = 64, **kwargs):
        self._hosts = list(net.hosts)
        self.max_flows = max_flows
        self._g_active = registry.gauge(
            "tlt_active_flows", "Senders with unacked data in flight",
        )
        self._c_sampled = registry.counter(
            "tlt_flow_samples_total", "Per-flow telemetry rows emitted",
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    @staticmethod
    def _row(sender) -> Optional[Dict]:
        spec = getattr(sender, "spec", None)
        pipe = getattr(sender, "pipe", None)
        if spec is None or pipe is None or getattr(sender, "completed", True):
            return None
        row: Dict = {
            "flow": spec.flow_id,
            "group": getattr(sender.record, "group", "") if hasattr(sender, "record") else "",
            "inflight": pipe,
            "rto_armed": int(getattr(sender, "_rto_deadline", None) is not None),
        }
        cwnd = getattr(sender, "cwnd", None)
        if cwnd is None:
            hpcc = getattr(sender, "hpcc", None)
            if hpcc is not None:
                cwnd = int(hpcc.window)
            else:
                cwnd = getattr(sender, "window_cap_bytes", None)
        row["cwnd"] = cwnd
        rate_ctrl = getattr(sender, "rate_ctrl", None)
        row["rate_bps"] = int(rate_ctrl.rate_bps) if rate_ctrl is not None else None
        tlt = getattr(sender, "tlt", None) or getattr(sender, "tlt_rate", None)
        state = getattr(tlt, "state", None)
        if state is not None:
            # 1 while the window controller is armed to mark the next
            # transmission important (an important packet is otherwise
            # already in flight).
            row["tlt"] = int(getattr(state, "name", "") == "IMPORTANT")
        else:
            row["tlt"] = 1 if tlt is not None else None
        return row

    def sample(self) -> None:
        emitted = 0
        active = 0
        for host in self._hosts:
            for flow_id in sorted(host.endpoints):
                row = self._row(host.endpoints[flow_id])
                if row is None:
                    continue
                active += 1
                if emitted < self.max_flows:
                    emitted += 1
                    self.emit(self.stream, row)
        self._g_active.set(active)
        self._c_sampled.inc(emitted)


class PolicySampler(Sampler):
    """Per-switch admission-policy state: policy name and live K.

    Static for the default Choudhury–Hahne + static-K configuration,
    but the adaptive-K controller retunes K during the run — this
    stream is how a retuning trajectory becomes visible next to the
    Fig-11 queue timelines.
    """

    stream = "policy"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._switches = list(net.switches)
        self._g_k = registry.gauge(
            "tlt_policy_color_threshold_bytes",
            "Live color threshold K of the admission policy", ("switch",),
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        for switch in self._switches:
            policy = getattr(switch, "policy", None)
            if policy is None:
                continue
            state = policy.describe()
            row = {"switch": switch.name}
            row.update(state)
            self.emit(self.stream, row)
            k = state.get("k")
            if k is not None:
                self._g_k.labels(switch.name).set(k)


class PathChurnSampler(Sampler):
    """Per-switch multipath churn: flowlet and reroute counters.

    Rows are emitted for switches running a non-default path selector
    (``flowlet``/``wcmp``), carrying the FIB's cumulative flowlet and
    reroute counts — how often flows were re-hashed, and how often a
    re-hash actually moved a flow to a different egress. Static-hash
    fabrics emit nothing (the counters cannot move), keeping the
    stream empty instead of dense-and-zero on default runs.
    """

    stream = "path"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._switches = [
            switch for switch in net.switches
            if getattr(switch.fib, "kind", "static-hash") != "static-hash"
        ]
        self._g_flowlets = registry.gauge(
            "tlt_path_flowlets_total", "Flowlets started at this switch", ("switch",),
        )
        self._g_reroutes = registry.gauge(
            "tlt_path_reroutes_total",
            "Flowlet re-hashes that changed the egress port", ("switch",),
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        for switch in self._switches:
            fib = switch.fib
            self.emit(self.stream, {
                "switch": switch.name, "selection": fib.kind,
                "flowlets": fib.flowlets, "reroutes": fib.reroutes,
            })
            self._g_flowlets.labels(switch.name).set(fib.flowlets)
            self._g_reroutes.labels(switch.name).set(fib.reroutes)


class LinkLoadSampler(Sampler):
    """Utilization of every connected port, from tx_bytes deltas."""

    stream = "link"

    def __init__(self, net, interval_ns: int, emit: EmitFn, registry, **kwargs):
        self._ports = [
            port
            for device in list(net.switches) + list(net.hosts)
            for port in device.ports
            if port.peer is not None
        ]
        self._last: List[int] = [port.tx_bytes for port in self._ports]
        self._capacity: List[float] = [
            port.rate_bps * interval_ns / 8 / 1e9 for port in self._ports
        ]
        self._g_util = registry.gauge(
            "tlt_link_utilization", "Per-port TX utilization over the last interval",
            ("device", "port"),
        )
        super().__init__(net.engine, interval_ns, emit, **kwargs)

    def sample(self) -> None:
        for i, port in enumerate(self._ports):
            sent = port.tx_bytes - self._last[i]
            if not sent:
                continue
            self._last[i] = port.tx_bytes
            util = min(sent / self._capacity[i], 1.0)
            self.emit(self.stream, {
                "device": port.owner.name, "port": port.port_no,
                "util": round(util, 6),
            })
            self._g_util.labels(port.owner.name, port.port_no).set(util)


class LinkUtilization(Sampler):
    """Periodic utilization sampling of one port (standalone API).

    The original ``repro.stats.timeseries.LinkUtilization``, rebased on
    the sampler framework (timer wheel instead of the event heap; same
    firing order by the engine's contract). Kept for callers that want
    an in-memory series for one port rather than a telemetry stream.
    """

    stream = "link"

    def __init__(
        self,
        engine: Engine,
        port,
        interval_ns: int = 100_000,
        duration_ns: Optional[int] = None,
        emit: Optional[EmitFn] = None,
    ):
        """Sample ``port`` every ``interval_ns``.

        Without ``duration_ns`` the sampler keeps the event queue alive
        until :meth:`stop` is called — bound the engine with
        ``run(until=...)`` or pass a duration.
        """
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.port = port
        self.samples: List[float] = []
        self._last_bytes = port.tx_bytes
        self._capacity_bytes = port.rate_bps * interval_ns / 8 / 1e9
        super().__init__(engine, interval_ns, emit, duration_ns=duration_ns)

    def sample(self) -> None:
        sent = self.port.tx_bytes - self._last_bytes
        self._last_bytes = self.port.tx_bytes
        util = min(sent / self._capacity_bytes, 1.0)
        self.samples.append(util)
        self.emit(self.stream, {
            "device": self.port.owner.name, "port": self.port.port_no,
            "util": round(util, 6),
        })

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def peak(self) -> float:
        return max(self.samples, default=0.0)

    def busy_fraction(self, threshold: float = 0.9) -> float:
        """Fraction of sampling windows above ``threshold`` utilization."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s >= threshold) / len(self.samples)


class ServiceLatencySampler(Sampler):
    """Per-tier response-latency percentiles from the service emulator.

    Reads the emulator's streaming sketches (cumulative — each tick
    reports the distribution so far, not a window) and emits one row
    per backend tier plus one for the end-to-end request stream
    (``tier="request"``). Reading a sketch never perturbs it, so the
    determinism contract holds.
    """

    stream = "service"

    def __init__(self, emulator, interval_ns: int, emit: EmitFn, **kwargs):
        self.emulator = emulator
        super().__init__(emulator.engine, interval_ns, emit, **kwargs)

    def _row(self, tier: str, sketch) -> Dict:
        return {
            "tier": tier,
            "count": len(sketch),
            "p50_ns": int(sketch.percentile(50)),
            "p99_ns": int(sketch.percentile(99)),
            "p999_ns": int(sketch.percentile(99.9)),
        }

    def sample(self) -> None:
        emulator = self.emulator
        self.emit(self.stream, self._row("request", emulator.request_sketch))
        for tier, sketch in zip(emulator.spec.tiers, emulator.tier_sketches):
            self.emit(self.stream, self._row(tier.name, sketch))


#: Stream name -> required row fields, shared with tools/check_telemetry.py.
STREAM_FIELDS: Dict[str, Tuple[str, ...]] = {
    "queue": ("switch", "port", "tclass", "occ", "red", "green", "k"),
    "buffer": ("switch", "used", "capacity", "peak"),
    "pfc": ("device", "port", "paused", "asserted"),
    "flow": ("flow", "group", "inflight", "rto_armed", "cwnd", "rate_bps", "tlt"),
    "link": ("device", "port", "util"),
    "policy": ("switch", "policy", "k"),
    "path": ("switch", "selection", "flowlets", "reroutes"),
    "service": ("tier", "count", "p50_ns", "p99_ns", "p999_ns"),
}
