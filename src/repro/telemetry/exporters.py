"""Telemetry exporters: streaming JSONL, CSV, Prometheus, stream merge.

One telemetry record is one flat JSON object::

    {"t": <sim ns>, "i": <emit seq>, "run": "<run id>", "seed": <int>,
     "stream": "queue" | "buffer" | "pfc" | "flow" | "link", ...fields}

``t`` is sim time (never wall-clock) and ``i`` is the per-run emission
sequence number, so any set of per-worker streams can be merged into
one deterministic, bit-reproducible file by sorting on
``(seed, t, run, i)`` — see :func:`merge_streams`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.export import rows_to_csv

#: Schema version stamped on flight-recorder dumps and checked by
#: ``tools/check_telemetry.py``.
SCHEMA_VERSION = 1


def encode_record(record: Dict) -> str:
    """One canonical JSONL line (compact separators, sorted keys)."""
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


class JsonlWriter:
    """Streaming JSONL sink: one record per line, flushed periodically
    so the file is watchable (``tail -f``) while the run progresses."""

    def __init__(self, path: str, flush_every: int = 1024):
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self.path = path
        self.flush_every = flush_every
        self.written = 0
        self._handle = open(path, "w", encoding="utf-8")

    def write(self, record: Dict) -> None:
        self._handle.write(encode_record(record))
        self._handle.write("\n")
        self.written += 1
        if self.written % self.flush_every == 0:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def export_csv(
    samples: Dict[str, Iterable[Dict]], out_dir: str, run_id: str
) -> List[str]:
    """One CSV per stream (``telemetry_<run>_<stream>.csv``); reuses
    :func:`repro.experiments.export.rows_to_csv` column inference."""
    paths = []
    for stream in sorted(samples):
        rows = list(samples[stream])
        if not rows:
            continue
        path = os.path.join(out_dir, f"telemetry_{run_id}_{stream}.csv")
        paths.append(rows_to_csv(rows, path))
    return paths


def merge_streams(
    out_dir: str, out_name: str = "merged.jsonl"
) -> Tuple[Optional[str], int]:
    """Merge every per-run ``run_*.jsonl`` in ``out_dir`` into one file.

    Worker processes (``repro.experiments.parallel``) each write their
    own stream; the merge is deterministic — records are ordered by
    ``(seed, sim time, run id, emission seq)`` regardless of worker
    scheduling — so a parallel sweep's merged telemetry is bit-identical
    to a serial one's. Returns ``(path, record_count)``, or
    ``(None, 0)`` when there is nothing to merge.
    """
    try:
        names = sorted(os.listdir(out_dir))
    except OSError:
        return None, 0
    records: List[Tuple[int, int, str, int, str]] = []
    for name in names:
        if not (name.startswith("run_") and name.endswith(".jsonl")):
            continue
        with open(os.path.join(out_dir, name), encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                records.append((
                    record.get("seed", 0), record.get("t", 0),
                    str(record.get("run", "")), record.get("i", 0), line,
                ))
    if not records:
        return None, 0
    records.sort(key=lambda r: r[:4])
    path = os.path.join(out_dir, out_name)
    with open(path, "w", encoding="utf-8") as handle:
        for entry in records:
            handle.write(entry[4])
            handle.write("\n")
    return path, len(records)
